pub use snug_experiments as experiments;
