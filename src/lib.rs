//! Workspace facade: re-export the crates behind one name so examples
//! and integration tests can reach everything through `snug_sim`.

#![forbid(unsafe_code)]

pub use snug_experiments as experiments;
pub use snug_harness as harness;
pub use snug_metrics as metrics;
pub use snug_workloads as workloads;
