//! # snug-sim — workspace facade
//!
//! Re-exports the workspace crates behind one name so examples and
//! integration tests can reach everything through `snug_sim`. The crate
//! map, data flow and result-store key schema are documented in
//! `ARCHITECTURE.md`; the committed evaluation is `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use snug_experiments as experiments;
pub use snug_harness as harness;
pub use snug_metrics as metrics;
pub use snug_workloads as workloads;
