//! Mid-run workload shift directives.
//!
//! A phase-change scenario re-parameterises the op streams while a
//! simulation is running: at a scheduled cycle the workload's capacity
//! demand, reuse depth or reference pattern changes, and the adaptive
//! L2 organisations must re-learn their policy state. The directive
//! types live here — next to [`crate::OpStream`], whose
//! [`crate::OpStream::apply_shift`] hook concrete streams implement —
//! so the simulator can deliver shifts without depending on any
//! particular workload model. A [`StreamShift`] is plain, cloneable
//! data: session snapshots capture pending shifts and restored runs
//! apply them at the identical frontier boundaries.

use serde::{Deserialize, Serialize};

/// What changes when a shift fires. Interpreted by the concrete stream;
/// generators that do not understand a directive ignore it (see
/// [`crate::OpStream::apply_shift`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShiftDirective {
    /// Scale the per-set capacity demand to `percent` % of its current
    /// value (200 doubles every set's working set, 50 halves it) —
    /// givers become takers and vice versa.
    DemandScale {
        /// New demand as a percentage of the current demand.
        percent: u32,
    },
    /// Set the near-reuse fraction to `percent` % (0–100): how many
    /// references re-touch recently used blocks at shallow LRU depth.
    NearFraction {
        /// New near-reuse fraction in percent.
        percent: u32,
    },
    /// Switch the reference pattern to pure streaming (sequential
    /// blocks, never revisited): the stream stops rewarding any cached
    /// capacity at all.
    Streaming,
    /// Swap the stream's generator model for the named benchmark's
    /// (demand profile, reuse mixture, timing behaviour). The stream
    /// keeps its original label so results stay attributable.
    Profile {
        /// Benchmark name as the workload crate spells it ("mcf").
        name: String,
    },
}

impl std::fmt::Display for ShiftDirective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShiftDirective::DemandScale { percent } => write!(f, "demand={percent}"),
            ShiftDirective::NearFraction { percent } => write!(f, "near={percent}"),
            ShiftDirective::Streaming => write!(f, "streaming"),
            ShiftDirective::Profile { name } => write!(f, "profile={name}"),
        }
    }
}

impl std::str::FromStr for ShiftDirective {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, value) = match s.split_once('=') {
            Some((k, v)) => (k.trim(), Some(v.trim())),
            None => (s.trim(), None),
        };
        let percent = |v: Option<&str>, flag: &str, max: u32| -> Result<u32, String> {
            let v = v.ok_or_else(|| format!("`{flag}` needs a value, e.g. `{flag}=200`"))?;
            let p: u32 = v
                .parse()
                .map_err(|_| format!("`{v}` is not a percentage"))?;
            if p > max {
                return Err(format!("`{flag}={p}` is out of range (max {max})"));
            }
            Ok(p)
        };
        match kind {
            "demand" => Ok(ShiftDirective::DemandScale {
                percent: percent(value, "demand", 10_000)?,
            }),
            "near" => Ok(ShiftDirective::NearFraction {
                percent: percent(value, "near", 100)?,
            }),
            "streaming" if value.is_none() => Ok(ShiftDirective::Streaming),
            "profile" => Ok(ShiftDirective::Profile {
                name: value
                    .filter(|v| !v.is_empty())
                    .ok_or("`profile` needs a benchmark name, e.g. `profile=mcf`")?
                    .to_string(),
            }),
            other => Err(format!(
                "unknown shift directive `{other}` (expected demand=P, near=P, \
                 streaming or profile=NAME)"
            )),
        }
    }
}

/// One scheduled mid-run re-parameterisation: at frontier cycle
/// `at_cycle`, apply `directive` to the streams of `cores` (empty =
/// every core).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamShift {
    /// Absolute frontier cycle the shift fires at.
    pub at_cycle: u64,
    /// Target cores (empty = all).
    pub cores: Vec<usize>,
    /// The re-parameterisation to apply.
    pub directive: ShiftDirective,
}

impl StreamShift {
    /// A shift applying to every core.
    pub fn all_cores(at_cycle: u64, directive: ShiftDirective) -> Self {
        StreamShift {
            at_cycle,
            cores: Vec::new(),
            directive,
        }
    }

    /// Whether this shift targets `core`.
    pub fn targets(&self, core: usize) -> bool {
        self.cores.is_empty() || self.cores.contains(&core)
    }
}

impl std::fmt::Display for StreamShift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.at_cycle, self.directive)?;
        if !self.cores.is_empty() {
            let cores = self
                .cores
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",");
            write!(f, "@{cores}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for StreamShift {
    type Err = String;

    /// Parse `CYCLE:DIRECTIVE[@CORE[,CORE]...]`, e.g.
    /// `1800000:demand=200` or `1800000:profile=mcf@0,2`. Underscores in
    /// the cycle are ignored (`1_800_000`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (cycle, rest) = s
            .split_once(':')
            .ok_or_else(|| format!("shift `{s}` must be CYCLE:DIRECTIVE[@CORES]"))?;
        let at_cycle = cycle
            .trim()
            .replace('_', "")
            .parse::<u64>()
            .map_err(|_| format!("`{cycle}` is not a cycle count"))?;
        let (directive, cores) = match rest.split_once('@') {
            Some((d, cores)) => {
                let mut parsed = Vec::new();
                for part in cores.split(',') {
                    parsed.push(
                        part.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("`{part}` is not a core index"))?,
                    );
                }
                parsed.sort_unstable();
                parsed.dedup();
                (d, parsed)
            }
            None => (rest, Vec::new()),
        };
        Ok(StreamShift {
            at_cycle,
            cores,
            directive: directive.parse()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directives_round_trip_through_display() {
        for text in ["demand=200", "near=30", "streaming", "profile=mcf"] {
            let d: ShiftDirective = text.parse().unwrap();
            assert_eq!(d.to_string(), text);
        }
    }

    #[test]
    fn bad_directives_are_rejected() {
        assert!("demand".parse::<ShiftDirective>().is_err());
        assert!("near=101".parse::<ShiftDirective>().is_err());
        assert!("streaming=1".parse::<ShiftDirective>().is_err());
        assert!("profile=".parse::<ShiftDirective>().is_err());
        assert!("warp=9".parse::<ShiftDirective>().is_err());
    }

    #[test]
    fn shifts_round_trip_and_normalise_cores() {
        let s: StreamShift = "1_800_000:demand=200".parse().unwrap();
        assert_eq!(s.at_cycle, 1_800_000);
        assert!(s.cores.is_empty());
        assert!(s.targets(0) && s.targets(3));
        assert_eq!(s.to_string(), "1800000:demand=200");

        let s: StreamShift = "500:profile=mcf@2,0,2".parse().unwrap();
        assert_eq!(s.cores, vec![0, 2], "sorted, deduped");
        assert!(s.targets(0) && !s.targets(1));
        assert_eq!(s.to_string(), "500:profile=mcf@0,2");
        assert_eq!(s, s.to_string().parse().unwrap());
    }

    #[test]
    fn malformed_shifts_are_rejected() {
        assert!("demand=200".parse::<StreamShift>().is_err(), "no cycle");
        assert!("x:demand=200".parse::<StreamShift>().is_err());
        assert!("100:demand=200@a".parse::<StreamShift>().is_err());
    }
}
