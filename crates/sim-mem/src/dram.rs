//! Off-chip DRAM timing model.
//!
//! The paper (Table 4) charges a flat 300-cycle DRAM latency. On top of
//! that we model a service channel that can only begin one new request
//! every `service_interval` cycles, which creates realistic queuing when
//! several cores miss simultaneously (the precise quantity the paper's
//! schemes are trying to reduce).

use serde::{Deserialize, Serialize};

/// Configuration of the DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Latency from request issue to data return, in core cycles.
    pub latency: u64,
    /// Minimum spacing between successive request starts (channel
    /// occupancy), in core cycles. `0` disables contention modelling.
    pub service_interval: u64,
}

impl DramConfig {
    /// The paper's configuration: 300-cycle latency. The paper charges a
    /// flat DRAM latency; a small service interval keeps request ordering
    /// sane without making bandwidth the bottleneck.
    pub fn paper() -> Self {
        DramConfig {
            latency: 300,
            service_interval: 4,
        }
    }

    /// Contention-free DRAM (useful for unit tests with exact latencies).
    pub fn uncontended(latency: u64) -> Self {
        DramConfig {
            latency,
            service_interval: 0,
        }
    }
}

/// Counters exported by the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Demand reads (fills).
    pub reads: u64,
    /// Writebacks drained from L2 write buffers.
    pub writes: u64,
    /// Total cycles requests spent waiting for the channel.
    pub queue_cycles: u64,
}

/// The DRAM channel. Requests are timestamped; the channel keeps a
/// `next_free` horizon to model occupancy.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    next_free: u64,
    stats: DramStats,
}

impl Dram {
    /// Create a DRAM channel with the given configuration.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            cfg,
            next_free: 0,
            stats: DramStats::default(),
        }
    }

    /// Issue a demand read at time `now`; returns the completion time.
    pub fn read(&mut self, now: u64) -> u64 {
        self.stats.reads += 1;
        self.schedule(now)
    }

    /// Issue a writeback at time `now`; returns the completion time.
    /// Writebacks occupy the channel but nothing waits on their data.
    pub fn write(&mut self, now: u64) -> u64 {
        self.stats.writes += 1;
        self.schedule(now)
    }

    fn schedule(&mut self, now: u64) -> u64 {
        let start = now.max(self.next_free);
        self.stats.queue_cycles += start - now;
        self.next_free = start + self.cfg.service_interval;
        start + self.cfg.latency
    }

    /// When the channel next becomes free (for write-buffer drain pacing).
    pub fn next_free(&self) -> u64 {
        self.next_free
    }

    /// Statistics accessor.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Configuration accessor.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Reset statistics (e.g. after warm-up) without disturbing timing state.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_read_returns_flat_latency() {
        let mut d = Dram::new(DramConfig::uncontended(300));
        assert_eq!(d.read(1000), 1300);
        assert_eq!(d.read(1000), 1300, "no service interval, no queuing");
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().queue_cycles, 0);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = Dram::new(DramConfig {
            latency: 300,
            service_interval: 16,
        });
        assert_eq!(d.read(0), 300);
        // Second request at the same instant waits for the channel.
        assert_eq!(d.read(0), 316);
        assert_eq!(d.stats().queue_cycles, 16);
    }

    #[test]
    fn writes_counted_separately() {
        let mut d = Dram::new(DramConfig::paper());
        d.write(0);
        d.read(100);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn reset_stats_keeps_timing() {
        let mut d = Dram::new(DramConfig {
            latency: 10,
            service_interval: 8,
        });
        d.read(0);
        d.reset_stats();
        assert_eq!(d.stats().reads, 0);
        // next_free horizon survives the reset.
        assert_eq!(d.read(0), 18);
    }

    #[test]
    fn paper_config_matches_table4() {
        assert_eq!(DramConfig::paper().latency, 300);
    }
}
