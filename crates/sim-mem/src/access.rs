//! Memory reference records and core-operation streams.
//!
//! A workload presents itself to a core as a stream of [`CoreOp`]s: a run
//! of non-memory instructions followed by one memory reference. This is
//! the standard trace-driven abstraction: the timing model charges issue
//! bandwidth for the non-memory run and sends the reference down the
//! cache hierarchy.

use crate::address::Addr;
use serde::{Deserialize, Serialize};

/// The kind of a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A data load. Loads can stall the core when they miss.
    Load,
    /// A data store. Stores retire through write buffers and do not stall
    /// the core unless buffering back-pressure builds up.
    Store,
    /// An instruction fetch. Modelled with a small code footprint that
    /// nearly always hits in L1I.
    IFetch,
}

impl AccessKind {
    /// Whether the reference writes the line.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// A single memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Referenced byte address.
    pub addr: Addr,
    /// Kind of reference.
    pub kind: AccessKind,
}

impl Access {
    /// Convenience constructor for a load.
    #[inline]
    pub fn load(addr: u64) -> Self {
        Access {
            addr: Addr(addr),
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for a store.
    #[inline]
    pub fn store(addr: u64) -> Self {
        Access {
            addr: Addr(addr),
            kind: AccessKind::Store,
        }
    }

    /// Convenience constructor for an instruction fetch.
    #[inline]
    pub fn ifetch(addr: u64) -> Self {
        Access {
            addr: Addr(addr),
            kind: AccessKind::IFetch,
        }
    }
}

/// One unit of work for a core: `gap` non-memory instructions, then one
/// memory reference. The reference itself also counts as one instruction
/// for IPC purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreOp {
    /// Number of non-memory instructions preceding the reference.
    pub gap: u32,
    /// The memory reference.
    pub access: Access,
    /// Whether following instructions depend on this load (pointer
    /// chasing): a critical load miss fully exposes its latency instead
    /// of overlapping with further work.
    pub critical: bool,
}

impl CoreOp {
    /// An independent (non-critical) op.
    pub fn new(gap: u32, access: Access) -> Self {
        CoreOp {
            gap,
            access,
            critical: false,
        }
    }

    /// A dependent (critical) op: the core serialises on its completion.
    pub fn critical(gap: u32, access: Access) -> Self {
        CoreOp {
            gap,
            access,
            critical: true,
        }
    }

    /// Total instructions represented by this op (gap + the memory op).
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.gap as u64 + 1
    }
}

/// A source of [`CoreOp`]s driving one core.
///
/// Implementations must be deterministic for a fixed seed so experiments
/// are reproducible; they should be infinite (the simulator decides the
/// instruction budget).
pub trait OpStream {
    /// Produce the next operation.
    fn next_op(&mut self) -> CoreOp;

    /// A short human-readable name (benchmark name) for reports.
    fn label(&self) -> &str;

    /// Deep-copy this stream (including its generator state) for session
    /// snapshots. Streams that cannot be captured return `None`, which
    /// makes `SimSession::snapshot` fail loudly instead of silently
    /// diverging on resume.
    fn clone_dyn(&self) -> Option<Box<dyn OpStream>> {
        None
    }

    /// Re-parameterise the stream mid-run (a phase-change scenario; see
    /// [`crate::shift`]). Returns whether the directive was understood
    /// and applied; the default implementation ignores every directive —
    /// fixed traces and replay streams have no parameters to shift.
    ///
    /// Implementations must stay deterministic: applying the same
    /// directive at the same point in the op sequence must yield the
    /// same subsequent ops, and [`OpStream::clone_dyn`] must capture any
    /// state the shift mutated.
    fn apply_shift(&mut self, _directive: &crate::shift::ShiftDirective) -> bool {
        false
    }
}

/// A replayable in-memory stream, useful in tests and for trace replay.
#[derive(Debug, Clone)]
pub struct VecStream {
    ops: Vec<CoreOp>,
    pos: usize,
    label: String,
}

impl VecStream {
    /// Create a stream that cycles through `ops` forever.
    pub fn cycle(label: impl Into<String>, ops: Vec<CoreOp>) -> Self {
        assert!(!ops.is_empty(), "VecStream requires at least one op");
        VecStream {
            ops,
            pos: 0,
            label: label.into(),
        }
    }

    /// Build a pure load stream with a fixed instruction gap.
    pub fn loads(label: impl Into<String>, addrs: impl IntoIterator<Item = u64>, gap: u32) -> Self {
        let ops = addrs
            .into_iter()
            .map(|a| CoreOp::new(gap, Access::load(a)))
            .collect::<Vec<_>>();
        Self::cycle(label, ops)
    }

    /// Number of distinct ops in one replay cycle.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the cycle body is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl OpStream for VecStream {
    fn next_op(&mut self) -> CoreOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn clone_dyn(&self) -> Option<Box<dyn OpStream>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_is_write() {
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Load.is_write());
        assert!(!AccessKind::IFetch.is_write());
    }

    #[test]
    fn core_op_counts_itself() {
        let op = CoreOp::new(7, Access::load(0x40));
        assert_eq!(op.instructions(), 8);
    }

    #[test]
    fn vec_stream_cycles() {
        let mut s = VecStream::loads("t", [0u64, 64, 128], 0);
        let a: Vec<u64> = (0..7).map(|_| s.next_op().access.addr.0).collect();
        assert_eq!(a, vec![0, 64, 128, 0, 64, 128, 0]);
        assert_eq!(s.label(), "t");
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_stream_rejected() {
        VecStream::cycle("x", vec![]);
    }
}
