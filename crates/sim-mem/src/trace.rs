//! Trace recording, serialisation and interval segmentation.
//!
//! The characterisation methodology (paper §2.2) slices an L2 access
//! stream into 1000 sampling intervals of 100 K accesses each. This
//! module provides the interval bookkeeping plus a compact binary trace
//! format so expensive workload generation can be captured once and
//! replayed across schemes.

use crate::access::{Access, AccessKind, CoreOp};
use crate::address::Addr;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Parameters of an interval-sampled characterisation run (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingPlan {
    /// Number of sampling intervals (paper: 1000).
    pub intervals: usize,
    /// L2 accesses per interval (paper: 100_000).
    pub accesses_per_interval: usize,
}

impl SamplingPlan {
    /// The paper's plan: 1000 intervals × 100 K L2 accesses.
    pub fn paper() -> Self {
        SamplingPlan {
            intervals: 1000,
            accesses_per_interval: 100_000,
        }
    }

    /// A scaled-down plan preserving the structure (for tests/benches).
    pub fn scaled(intervals: usize, accesses_per_interval: usize) -> Self {
        assert!(intervals > 0 && accesses_per_interval > 0);
        SamplingPlan {
            intervals,
            accesses_per_interval,
        }
    }

    /// Total accesses covered by the plan.
    pub fn total_accesses(&self) -> usize {
        self.intervals * self.accesses_per_interval
    }
}

/// Tracks progress through a [`SamplingPlan`]: call [`IntervalClock::tick`]
/// once per L2 access; it reports when an interval boundary is crossed.
#[derive(Debug, Clone)]
pub struct IntervalClock {
    plan: SamplingPlan,
    in_interval: usize,
    current: usize,
}

impl IntervalClock {
    /// Start a clock at interval 0 of `plan`.
    pub fn new(plan: SamplingPlan) -> Self {
        IntervalClock {
            plan,
            in_interval: 0,
            current: 0,
        }
    }

    /// Record one access. Returns `Some(finished_interval_index)` when the
    /// access completed an interval (0-based), `None` otherwise.
    pub fn tick(&mut self) -> Option<usize> {
        self.in_interval += 1;
        if self.in_interval == self.plan.accesses_per_interval {
            let done = self.current;
            self.in_interval = 0;
            self.current += 1;
            Some(done)
        } else {
            None
        }
    }

    /// Index of the interval currently being filled.
    pub fn current_interval(&self) -> usize {
        self.current
    }

    /// Whether the whole plan is complete.
    pub fn finished(&self) -> bool {
        self.current >= self.plan.intervals
    }

    /// The plan being tracked.
    pub fn plan(&self) -> SamplingPlan {
        self.plan
    }
}

/// A recorded trace of core operations, serialisable to a compact binary
/// framing (8-byte address, 4-byte gap, 1-byte kind per record).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The recorded operations in program order.
    pub ops: Vec<CoreOp>,
}

const KIND_LOAD: u8 = 0;
const KIND_STORE: u8 = 1;
const KIND_IFETCH: u8 = 2;
const CRITICAL_BIT: u8 = 0x80;

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Trace { ops: Vec::new() }
    }

    /// Append one operation.
    pub fn push(&mut self, op: CoreOp) {
        self.ops.push(op);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Serialise to the compact binary framing.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.ops.len() * 13);
        buf.put_u64_le(self.ops.len() as u64);
        for op in &self.ops {
            buf.put_u64_le(op.access.addr.0);
            buf.put_u32_le(op.gap);
            let kind = match op.access.kind {
                AccessKind::Load => KIND_LOAD,
                AccessKind::Store => KIND_STORE,
                AccessKind::IFetch => KIND_IFETCH,
            };
            buf.put_u8(kind | if op.critical { CRITICAL_BIT } else { 0 });
        }
        buf.freeze()
    }

    /// Deserialise from the compact binary framing.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, TraceDecodeError> {
        if bytes.remaining() < 8 {
            return Err(TraceDecodeError::Truncated);
        }
        let n = bytes.get_u64_le() as usize;
        if bytes.remaining() < n * 13 {
            return Err(TraceDecodeError::Truncated);
        }
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            let addr = Addr(bytes.get_u64_le());
            let gap = bytes.get_u32_le();
            let raw = bytes.get_u8();
            let critical = raw & CRITICAL_BIT != 0;
            let kind = match raw & !CRITICAL_BIT {
                KIND_LOAD => AccessKind::Load,
                KIND_STORE => AccessKind::Store,
                KIND_IFETCH => AccessKind::IFetch,
                k => return Err(TraceDecodeError::BadKind(k)),
            };
            ops.push(CoreOp {
                gap,
                access: Access { addr, kind },
                critical,
            });
        }
        Ok(Trace { ops })
    }

    /// Total instruction count represented by the trace.
    pub fn instructions(&self) -> u64 {
        self.ops.iter().map(|o| o.instructions()).sum()
    }
}

/// Errors from [`Trace::from_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The byte stream ended before the declared record count.
    Truncated,
    /// An unknown access-kind discriminant was encountered.
    BadKind(u8),
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::Truncated => write!(f, "trace bytes truncated"),
            TraceDecodeError::BadKind(k) => write!(f, "unknown access kind {k}"),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;

    #[test]
    fn paper_plan_totals() {
        let p = SamplingPlan::paper();
        assert_eq!(p.total_accesses(), 100_000_000);
    }

    #[test]
    fn interval_clock_reports_boundaries() {
        let mut c = IntervalClock::new(SamplingPlan::scaled(3, 4));
        let mut boundaries = Vec::new();
        for _ in 0..12 {
            if let Some(i) = c.tick() {
                boundaries.push(i);
            }
        }
        assert_eq!(boundaries, vec![0, 1, 2]);
        assert!(c.finished());
    }

    #[test]
    fn interval_clock_counts_partial() {
        let mut c = IntervalClock::new(SamplingPlan::scaled(2, 10));
        for _ in 0..9 {
            assert_eq!(c.tick(), None);
        }
        assert_eq!(c.current_interval(), 0);
        assert_eq!(c.tick(), Some(0));
        assert_eq!(c.current_interval(), 1);
        assert!(!c.finished());
    }

    #[test]
    fn trace_round_trips_through_bytes() {
        let mut t = Trace::new();
        t.push(CoreOp::critical(3, Access::load(0x1000)));
        t.push(CoreOp::new(0, Access::store(0x2040)));
        t.push(CoreOp::new(9, Access::ifetch(0x3080)));
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(bytes).unwrap();
        assert_eq!(back, t);
        // gap + 1 instructions per op: (3+1) + (0+1) + (9+1).
        assert_eq!(back.instructions(), 15);
    }

    #[test]
    fn truncated_trace_rejected() {
        let mut t = Trace::new();
        t.push(CoreOp::new(1, Access::load(0x40)));
        let bytes = t.to_bytes();
        let cut = bytes.slice(0..bytes.len() - 1);
        assert_eq!(Trace::from_bytes(cut), Err(TraceDecodeError::Truncated));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut t = Trace::new();
        t.push(CoreOp::new(1, Access::load(0x40)));
        let mut raw = t.to_bytes().to_vec();
        let last = raw.len() - 1;
        raw[last] = 77;
        assert_eq!(
            Trace::from_bytes(Bytes::from(raw)),
            Err(TraceDecodeError::BadKind(77))
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn trace_of(ops: Vec<(u64, u32, u8, bool)>) -> Trace {
            let mut t = Trace::new();
            for (addr, gap, kind, critical) in ops {
                let access = match kind {
                    0 => Access::load(addr),
                    1 => Access::store(addr),
                    _ => Access::ifetch(addr),
                };
                t.push(CoreOp {
                    gap,
                    access,
                    critical,
                });
            }
            t
        }

        proptest! {
            /// Encode/decode is the identity on arbitrary op streams,
            /// and the framing length matches the record layout
            /// (8-byte header + 13 bytes per op).
            #[test]
            fn encode_decode_round_trips(
                ops in proptest::collection::vec(
                    (0u64..1u64 << 48, 0u32..1024, 0u8..3, proptest::bool::ANY),
                    0..300,
                )
            ) {
                let t = trace_of(ops);
                let bytes = t.to_bytes();
                prop_assert_eq!(bytes.len(), 8 + t.len() * 13);
                let back = Trace::from_bytes(bytes).map_err(|e| {
                    TestCaseError::Fail(format!("decode failed: {e}"))
                })?;
                prop_assert_eq!(back, t);
            }

            /// Any strict prefix of a valid encoding is rejected as
            /// truncated — never mis-decoded.
            #[test]
            fn prefixes_are_rejected(
                ops in proptest::collection::vec(
                    (0u64..1u64 << 48, 0u32..64, 0u8..3, proptest::bool::ANY),
                    1..40,
                ),
                cut in 0usize..100
            ) {
                let t = trace_of(ops);
                let bytes = t.to_bytes();
                prop_assume!(cut < bytes.len());
                let r = Trace::from_bytes(bytes.slice(0..cut));
                prop_assert_eq!(r, Err(TraceDecodeError::Truncated));
            }
        }
    }
}
