//! # sim-mem — memory substrate for the SNUG reproduction
//!
//! Foundation types shared by every other crate in the workspace:
//!
//! * [`address`] — physical addresses, block addresses and set/tag
//!   decomposition under a cache [`address::Geometry`];
//! * [`access`] — memory references and the [`access::OpStream`] trait
//!   that workload generators implement;
//! * [`dram`] — the off-chip DRAM timing model (flat 300-cycle latency
//!   plus channel occupancy, paper Table 4);
//! * [`shift`] — mid-run workload shift directives (phase-change
//!   scenarios) delivered through [`access::OpStream::apply_shift`];
//! * [`trace`] — trace capture/replay and the 1000 × 100 K-access
//!   interval sampling plan of the paper's characterisation (§2.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod address;
pub mod dram;
pub mod shift;
pub mod trace;

pub use access::{Access, AccessKind, CoreOp, OpStream, VecStream};
pub use address::{tag_bits, Addr, BlockAddr, Geometry};
pub use dram::{Dram, DramConfig, DramStats};
pub use shift::{ShiftDirective, StreamShift};
pub use trace::{IntervalClock, SamplingPlan, Trace, TraceDecodeError};
