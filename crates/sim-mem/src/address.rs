//! Physical addresses and cache-geometry address decomposition.
//!
//! The paper (Table 4) uses 32-bit physical addresses, 64 B cache lines,
//! 1024-set 16-way private L2 slices. Everything here is parameterised so
//! the same types serve the L1 caches, the L2 slices, the shadow tag
//! arrays and the deeper stack-distance profiler.

use serde::{Deserialize, Serialize};

/// A byte-granular physical address.
///
/// Stored as `u64` so 64-bit address experiments (paper Table 3) are
/// expressible, even though the baseline configuration is 32-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Addr(pub u64);

/// A block (cache-line) address: the byte address shifted right by the
/// block-offset bits. Two accesses with the same `BlockAddr` touch the
/// same cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr(pub u64);

impl Addr {
    /// Convert to a block address under `block_bytes`-sized lines.
    #[inline]
    pub fn block(self, block_bytes: u64) -> BlockAddr {
        debug_assert!(block_bytes.is_power_of_two());
        BlockAddr(self.0 >> block_bytes.trailing_zeros())
    }
}

impl BlockAddr {
    /// The first byte address covered by this block.
    #[inline]
    pub fn base_addr(self, block_bytes: u64) -> Addr {
        Addr(self.0 << block_bytes.trailing_zeros())
    }
}

/// Geometry of one set-associative cache structure.
///
/// `tag(block)` keeps the *full* block address rather than the truncated
/// hardware tag: the simulator compares block identities, and the
/// hardware tag width only matters for the storage-overhead analysis in
/// overhead-style arithmetic (done in `snug-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Line size in bytes (power of two).
    pub block_bytes: u64,
    /// Number of sets (power of two).
    pub num_sets: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl Geometry {
    /// Construct a geometry, validating power-of-two constraints.
    pub fn new(block_bytes: u64, num_sets: u64, assoc: usize) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(assoc >= 1, "associativity must be at least 1");
        Geometry {
            block_bytes,
            num_sets,
            assoc,
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.block_bytes * self.num_sets * self.assoc as u64
    }

    /// Number of index bits.
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.num_sets.trailing_zeros()
    }

    /// Set index for a block address (low `index_bits` of the block addr).
    #[inline]
    pub fn set_index(&self, block: BlockAddr) -> usize {
        (block.0 & (self.num_sets - 1)) as usize
    }

    /// The block-address "tag": bits above the index. Stored as the full
    /// block address in simulation structures; this helper recovers the
    /// architectural tag when needed.
    #[inline]
    pub fn arch_tag(&self, block: BlockAddr) -> u64 {
        block.0 >> self.index_bits()
    }

    /// Reconstruct a block address from a set index and architectural tag.
    #[inline]
    pub fn compose(&self, set: usize, arch_tag: u64) -> BlockAddr {
        debug_assert!((set as u64) < self.num_sets);
        BlockAddr((arch_tag << self.index_bits()) | set as u64)
    }

    /// The peer set index with the last (least-significant) index bit
    /// flipped — the SNUG index-bit flipping partner (paper §3.2).
    #[inline]
    pub fn flip_last_index_bit(&self, set: usize) -> usize {
        set ^ 1
    }

    /// Convert an access address to `(set, block)`.
    #[inline]
    pub fn locate(&self, addr: Addr) -> (usize, BlockAddr) {
        let b = addr.block(self.block_bytes);
        (self.set_index(b), b)
    }

    /// Geometry of the paper's baseline private L2 slice (Table 4):
    /// 1 MB, 16-way, 64 B lines → 1024 sets.
    pub fn paper_l2() -> Self {
        Geometry::new(64, 1024, 16)
    }

    /// Geometry of the paper's L1 I/D caches (Table 4): 32 KB, 4-way,
    /// 64 B lines → 128 sets.
    pub fn paper_l1() -> Self {
        Geometry::new(64, 128, 4)
    }
}

/// Architectural tag width in bits for a given address width, used by the
/// storage-overhead analysis (paper Tables 2–3).
pub fn tag_bits(addr_bits: u32, geo: &Geometry) -> u32 {
    let offset_bits = geo.block_bytes.trailing_zeros();
    let index_bits = geo.index_bits();
    addr_bits.saturating_sub(offset_bits + index_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_decomposition_round_trips() {
        let a = Addr(0xDEAD_BEEF);
        let b = a.block(64);
        assert_eq!(b.0, 0xDEAD_BEEF >> 6);
        assert_eq!(b.base_addr(64).0, (0xDEAD_BEEF >> 6) << 6);
    }

    #[test]
    fn paper_l2_geometry_matches_table4() {
        let g = Geometry::paper_l2();
        assert_eq!(g.capacity_bytes(), 1 << 20, "1 MB slice");
        assert_eq!(g.num_sets, 1024);
        assert_eq!(g.assoc, 16);
        assert_eq!(g.index_bits(), 10);
    }

    #[test]
    fn paper_l1_geometry_matches_table4() {
        let g = Geometry::paper_l1();
        assert_eq!(g.capacity_bytes(), 32 << 10);
        assert_eq!(g.assoc, 4);
        assert_eq!(g.num_sets, 128);
    }

    #[test]
    fn set_index_uses_low_bits() {
        let g = Geometry::paper_l2();
        let b = BlockAddr(0b1111_0000_0011);
        assert_eq!(g.set_index(b), 0b11_0000_0011);
    }

    #[test]
    fn compose_inverts_locate() {
        let g = Geometry::paper_l2();
        let b = BlockAddr(123_456_789);
        let set = g.set_index(b);
        let tag = g.arch_tag(b);
        assert_eq!(g.compose(set, tag), b);
    }

    #[test]
    fn flip_last_index_bit_is_involution() {
        let g = Geometry::paper_l2();
        for s in [0usize, 1, 2, 511, 1022, 1023] {
            assert_eq!(g.flip_last_index_bit(g.flip_last_index_bit(s)), s);
            assert_eq!(g.flip_last_index_bit(s), s ^ 1);
        }
    }

    #[test]
    fn tag_bits_match_paper_table2() {
        // 32-bit address, 64 B lines (6 offset bits), 1024 sets (10 index
        // bits) → 16 tag bits, as listed in paper Table 2.
        let g = Geometry::paper_l2();
        assert_eq!(tag_bits(32, &g), 16);
        // 44 used bits of a 64-bit address → 28 tag bits.
        assert_eq!(tag_bits(44, &g), 28);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_rejected() {
        Geometry::new(48, 1024, 16);
    }
}
