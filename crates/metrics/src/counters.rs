//! Deterministic simulation counters — the sim-side half of the
//! observability layer.
//!
//! [`SimCounters`] is one flat block of event tallies covering every
//! layer of the simulated machine: per-level cache hit/miss, the L1 LRU
//! walk-depth histogram, L2Org dispatch counts, scheme relatch events,
//! bus and DRAM traffic, and core stall attribution. `sim-cmp`'s
//! `SimSession` assembles one per run — the hot-path increments are
//! compiled out when its `obs` feature is off — and the harness renders
//! them as tables (`snug profile`) or a one-line summary (the
//! calibration examples).
//!
//! Counters are *observational by contract*: they are derived from the
//! retired op sequence and never feed back into timing, so enabling or
//! disabling them cannot perturb simulation results (the session
//! determinism suite runs with the feature both on and off).

use crate::table::Table;

/// Number of L1 LRU walk-depth histogram buckets. Depths are 1-based
/// stack positions; depth `WALK_DEPTH_BUCKETS` and deeper share the
/// last bucket, so any L1 associativity fits.
pub const WALK_DEPTH_BUCKETS: usize = 8;

/// A flat block of simulation event counters (see the module docs).
///
/// All fields are cumulative tallies over the measured window; a
/// session resets them alongside the component statistics at the
/// warm-up boundary. [`SimCounters::delta`] turns two cumulative
/// captures into an interval block (the per-sample form a probe trace
/// carries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimCounters {
    /// Operations retired (one per `OpStream::next_op` executed).
    pub retired_ops: u64,
    /// L1 instruction-cache hits (summed over cores).
    pub l1i_hits: u64,
    /// L1 instruction-cache misses (summed over cores).
    pub l1i_misses: u64,
    /// L1 data-cache hits (summed over cores).
    pub l1d_hits: u64,
    /// L1 data-cache misses (summed over cores).
    pub l1d_misses: u64,
    /// Histogram of L1 hit LRU stack depths: bucket `i` counts hits at
    /// 1-based depth `i + 1`; the last bucket absorbs deeper hits.
    pub l1_walk_depths: [u64; WALK_DEPTH_BUCKETS],
    /// Aggregate L2 hits across the organisation's slices.
    pub l2_hits: u64,
    /// Aggregate L2 misses.
    pub l2_misses: u64,
    /// Hits on cooperatively-cached (spilled-in) lines.
    pub l2_cc_hits: u64,
    /// L2 evictions.
    pub l2_evictions: u64,
    /// L2 writebacks to memory.
    pub l2_writebacks: u64,
    /// Blocks spilled out to a peer slice.
    pub spills_out: u64,
    /// Blocks received as spills from a peer slice.
    pub spills_in: u64,
    /// Blocks forwarded between slices on a remote hit.
    pub forwards: u64,
    /// Misses satisfied by retrieving a spilled block from a peer.
    pub retrieved_from_peer: u64,
    /// Shadow-tag hits (monitoring structures).
    pub shadow_hits: u64,
    /// Misses satisfied from a write buffer.
    pub write_buffer_hits: u64,
    /// Demand accesses dispatched into the `L2Org` plug-in.
    pub org_accesses: u64,
    /// Dirty-victim writebacks dispatched into the `L2Org` plug-in.
    pub org_writebacks: u64,
    /// SNUG giver/taker relatch events (`GroupedBegin` transitions).
    pub relatches: u64,
    /// Scheme identify-stage transitions (`IdentifyBegin` events).
    pub identifies: u64,
    /// Snoop-bus address transactions.
    pub bus_address_transactions: u64,
    /// Snoop-bus data transactions.
    pub bus_data_transactions: u64,
    /// Cycles requests spent queueing for the bus.
    pub bus_queue_cycles: u64,
    /// DRAM demand reads.
    pub dram_reads: u64,
    /// DRAM writebacks.
    pub dram_writes: u64,
    /// Cycles requests spent queueing for the DRAM channel.
    pub dram_queue_cycles: u64,
    /// Core cycles stalled on a full ROB (summed over cores).
    pub core_rob_stall_cycles: u64,
    /// Core cycles stalled on MSHR exhaustion.
    pub core_mshr_stall_cycles: u64,
    /// Core cycles stalled on a dependent load.
    pub core_dep_stall_cycles: u64,
}

/// Every `(label, value)` pair of a counter block, in declaration
/// order, with the walk-depth histogram flattened to one entry per
/// bucket. The single source of truth for merge/delta arithmetic and
/// codec field lists.
macro_rules! for_each_field {
    ($self:ident, $other:ident, $op:expr) => {{
        let op = $op;
        op(&mut $self.retired_ops, $other.retired_ops);
        op(&mut $self.l1i_hits, $other.l1i_hits);
        op(&mut $self.l1i_misses, $other.l1i_misses);
        op(&mut $self.l1d_hits, $other.l1d_hits);
        op(&mut $self.l1d_misses, $other.l1d_misses);
        for i in 0..WALK_DEPTH_BUCKETS {
            op(&mut $self.l1_walk_depths[i], $other.l1_walk_depths[i]);
        }
        op(&mut $self.l2_hits, $other.l2_hits);
        op(&mut $self.l2_misses, $other.l2_misses);
        op(&mut $self.l2_cc_hits, $other.l2_cc_hits);
        op(&mut $self.l2_evictions, $other.l2_evictions);
        op(&mut $self.l2_writebacks, $other.l2_writebacks);
        op(&mut $self.spills_out, $other.spills_out);
        op(&mut $self.spills_in, $other.spills_in);
        op(&mut $self.forwards, $other.forwards);
        op(&mut $self.retrieved_from_peer, $other.retrieved_from_peer);
        op(&mut $self.shadow_hits, $other.shadow_hits);
        op(&mut $self.write_buffer_hits, $other.write_buffer_hits);
        op(&mut $self.org_accesses, $other.org_accesses);
        op(&mut $self.org_writebacks, $other.org_writebacks);
        op(&mut $self.relatches, $other.relatches);
        op(&mut $self.identifies, $other.identifies);
        op(
            &mut $self.bus_address_transactions,
            $other.bus_address_transactions,
        );
        op(
            &mut $self.bus_data_transactions,
            $other.bus_data_transactions,
        );
        op(&mut $self.bus_queue_cycles, $other.bus_queue_cycles);
        op(&mut $self.dram_reads, $other.dram_reads);
        op(&mut $self.dram_writes, $other.dram_writes);
        op(&mut $self.dram_queue_cycles, $other.dram_queue_cycles);
        op(
            &mut $self.core_rob_stall_cycles,
            $other.core_rob_stall_cycles,
        );
        op(
            &mut $self.core_mshr_stall_cycles,
            $other.core_mshr_stall_cycles,
        );
        op(
            &mut $self.core_dep_stall_cycles,
            $other.core_dep_stall_cycles,
        );
    }};
}

impl SimCounters {
    /// Add every counter of `other` into `self`.
    pub fn merge(&mut self, other: &SimCounters) {
        for_each_field!(self, other, |a: &mut u64, b: u64| *a += b);
    }

    /// Field-wise saturating difference: the interval block between two
    /// cumulative captures.
    pub fn delta(&self, earlier: &SimCounters) -> SimCounters {
        let mut d = *self;
        for_each_field!(d, earlier, |a: &mut u64, b: u64| *a = a.saturating_sub(b));
        d
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SimCounters::default()
    }

    /// Total L1 hits recorded in the walk-depth histogram.
    pub fn walk_samples(&self) -> u64 {
        self.l1_walk_depths.iter().sum()
    }

    /// Mean 1-based L1 hit stack depth (deep hits clamp at the last
    /// bucket); 0 when no hits were recorded.
    pub fn mean_walk_depth(&self) -> f64 {
        let samples = self.walk_samples();
        if samples == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .l1_walk_depths
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum();
        weighted as f64 / samples as f64
    }

    /// Per-level hit/miss table (L1I, L1D, L2).
    pub fn hit_miss_table(&self) -> Table {
        let mut t = Table::new(
            "Per-level hit/miss",
            vec!["level", "hits", "misses", "accesses", "hit rate"],
        );
        for (level, hits, misses) in [
            ("L1I", self.l1i_hits, self.l1i_misses),
            ("L1D", self.l1d_hits, self.l1d_misses),
            ("L2", self.l2_hits, self.l2_misses),
        ] {
            let accesses = hits + misses;
            let rate = if accesses == 0 {
                0.0
            } else {
                hits as f64 / accesses as f64
            };
            t.push_row(vec![
                level.to_string(),
                hits.to_string(),
                misses.to_string(),
                accesses.to_string(),
                format!("{:.1} %", rate * 100.0),
            ]);
        }
        t
    }

    /// Dispatch and traffic counts, normalised per 1k cycles of the
    /// given window.
    pub fn dispatch_table(&self, window_cycles: u64) -> Table {
        let mut t = Table::new(
            "Dispatch + traffic counts",
            vec!["counter", "count", "per 1k cycles"],
        );
        for (name, count) in [
            ("retired ops", self.retired_ops),
            ("L2Org accesses", self.org_accesses),
            ("L2Org writebacks", self.org_writebacks),
            ("bus address txns", self.bus_address_transactions),
            ("bus data txns", self.bus_data_transactions),
            ("dram reads", self.dram_reads),
            ("dram writes", self.dram_writes),
            ("spills out", self.spills_out),
            ("spills in", self.spills_in),
            ("retrieved from peer", self.retrieved_from_peer),
            ("shadow hits", self.shadow_hits),
            ("write-buffer hits", self.write_buffer_hits),
            ("scheme relatches", self.relatches),
            ("scheme identifies", self.identifies),
        ] {
            t.push_row(vec![
                name.to_string(),
                count.to_string(),
                per_1k(count, window_cycles),
            ]);
        }
        t
    }

    /// L1 LRU walk-depth histogram table (1-based stack depth of every
    /// L1 hit; the last row absorbs deeper hits).
    pub fn walk_depth_table(&self) -> Table {
        let samples = self.walk_samples();
        let mut t = Table::new(
            "L1 LRU walk-depth histogram",
            vec!["depth", "hits", "share"],
        );
        for (i, &n) in self.l1_walk_depths.iter().enumerate() {
            let depth = if i + 1 == WALK_DEPTH_BUCKETS {
                format!("{}+", i + 1)
            } else {
                (i + 1).to_string()
            };
            let share = if samples == 0 {
                0.0
            } else {
                n as f64 / samples as f64
            };
            t.push_row(vec![
                depth,
                n.to_string(),
                format!("{:.1} %", share * 100.0),
            ]);
        }
        t
    }

    /// Top cost centers: the stall/queue cycle pools ranked by size,
    /// each with its share of the window (per-core cycles for core
    /// stalls, channel cycles for queues).
    pub fn cost_center_table(&self, window_cycles: u64) -> Table {
        let mut centers = [
            ("core ROB stalls", self.core_rob_stall_cycles),
            ("core MSHR stalls", self.core_mshr_stall_cycles),
            ("core dependent-load stalls", self.core_dep_stall_cycles),
            ("bus queueing", self.bus_queue_cycles),
            ("dram queueing", self.dram_queue_cycles),
        ];
        centers.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut t = Table::new(
            "Top cost centers (stall + queue cycles)",
            vec!["cost center", "cycles", "% of window"],
        );
        for (name, cycles) in centers {
            let share = if window_cycles == 0 {
                0.0
            } else {
                cycles as f64 / window_cycles as f64
            };
            t.push_row(vec![
                name.to_string(),
                cycles.to_string(),
                format!("{:.1} %", share * 100.0),
            ]);
        }
        t
    }

    /// One-line cost summary for calibration runs and footers.
    pub fn summary(&self) -> String {
        let rate = |h: u64, m: u64| {
            let a = h + m;
            if a == 0 {
                0.0
            } else {
                h as f64 / a as f64 * 100.0
            }
        };
        format!(
            "retired {} ops · L1I {:.1} % / L1D {:.1} % / L2 {:.1} % hit · \
             {} bus txns · {} dram reqs · {} spills out · {} relatches",
            self.retired_ops,
            rate(self.l1i_hits, self.l1i_misses),
            rate(self.l1d_hits, self.l1d_misses),
            rate(self.l2_hits, self.l2_misses),
            self.bus_address_transactions + self.bus_data_transactions,
            self.dram_reads + self.dram_writes,
            self.spills_out,
            self.relatches,
        )
    }
}

/// Format `count / (cycles / 1000)` with one decimal; "-" for an empty
/// window.
fn per_1k(count: u64, window_cycles: u64) -> String {
    if window_cycles == 0 {
        "-".to_string()
    } else {
        format!("{:.1}", count as f64 * 1000.0 / window_cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimCounters {
        let mut c = SimCounters {
            retired_ops: 100,
            l1i_hits: 60,
            l1i_misses: 4,
            l1d_hits: 30,
            l1d_misses: 6,
            l2_hits: 7,
            l2_misses: 3,
            org_accesses: 10,
            org_writebacks: 2,
            relatches: 1,
            bus_address_transactions: 5,
            dram_reads: 3,
            core_rob_stall_cycles: 40,
            ..SimCounters::default()
        };
        c.l1_walk_depths = [50, 20, 10, 5, 3, 1, 1, 0];
        c
    }

    #[test]
    fn merge_and_delta_are_inverse() {
        let a = sample();
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.retired_ops, 200);
        assert_eq!(b.l1_walk_depths[0], 100);
        assert_eq!(b.delta(&a), a);
        assert!(a.delta(&a).is_zero());
    }

    #[test]
    fn delta_saturates() {
        let a = SimCounters::default();
        let b = sample();
        assert!(a.delta(&b).is_zero(), "no underflow wrap");
    }

    #[test]
    fn walk_depth_stats() {
        let c = sample();
        assert_eq!(c.walk_samples(), 90);
        let mean = c.mean_walk_depth();
        assert!(mean > 1.0 && mean < 3.0, "shallow-heavy sample: {mean}");
        assert_eq!(SimCounters::default().mean_walk_depth(), 0.0);
    }

    #[test]
    fn tables_render() {
        let c = sample();
        let hm = c.hit_miss_table().to_markdown();
        assert!(hm.contains("L1D"));
        assert!(hm.contains("93.8 %"), "30/32 L1D hit rate: {hm}");
        let d = c.dispatch_table(1000);
        assert_eq!(d.rows[0][0], "retired ops");
        assert_eq!(d.rows[0][2], "100.0", "100 ops per 1k cycles");
        assert!(c.dispatch_table(0).to_csv().contains(",-"));
        let w = c.walk_depth_table();
        assert_eq!(w.len(), WALK_DEPTH_BUCKETS);
        assert!(w.to_markdown().contains("8+"));
        let cc = c.cost_center_table(100);
        assert_eq!(cc.rows[0][0], "core ROB stalls", "largest pool first");
        assert!(cc.to_markdown().contains("40.0 %"));
    }

    #[test]
    fn summary_is_compact() {
        let s = sample().summary();
        assert!(s.contains("retired 100 ops"));
        assert!(s.contains("L2 70.0 % hit"));
        assert!(s.contains("1 relatches"));
    }
}
