//! Markdown/CSV table rendering for EXPERIMENTS.md and bench output.

use serde::{Deserialize, Serialize};

/// A simple rectangular table with a header row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (rendered as a heading in Markdown).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (must match header arity).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<impl Into<String>>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics on arity mismatch.
    pub fn push_row(&mut self, row: Vec<impl Into<String>>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(row);
    }

    /// Render as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as CSV (no quoting beyond replacing commas).
    pub fn to_csv(&self) -> String {
        let clean = |s: &str| s.replace(',', ";");
        let mut out = self
            .headers
            .iter()
            .map(|h| clean(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| clean(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Render in the requested format.
    pub fn render(&self, format: TableFormat) -> String {
        match format {
            TableFormat::Markdown => self.to_markdown(),
            TableFormat::Csv => self.to_csv(),
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Output formats a [`Table`] renders to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableFormat {
    /// GitHub-flavoured Markdown with a `###` title heading.
    Markdown,
    /// Comma-separated values, no title.
    Csv,
}

impl TableFormat {
    /// Parse "md"/"markdown" or "csv" (case-insensitive).
    pub fn from_name(name: &str) -> Option<TableFormat> {
        match name.to_ascii_lowercase().as_str() {
            "md" | "markdown" => Some(TableFormat::Markdown),
            "csv" => Some(TableFormat::Csv),
            _ => None,
        }
    }
}

/// Format a ratio as a percentage delta over baseline, e.g. 1.139 →
/// "+13.9 %".
pub fn pct_delta(ratio: f64) -> String {
    format!("{:+.1} %", (ratio - 1.0) * 100.0)
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_structure() {
        let mut t = Table::new("Demo", vec!["a", "b"]);
        t.push_row(vec!["1", "2"]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_structure() {
        let mut t = Table::new("x", vec!["a", "b"]);
        t.push_row(vec!["1,5", "2"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1;5,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new("x", vec!["a", "b"]).push_row(vec!["1"]);
    }

    #[test]
    fn render_dispatches_on_format() {
        let mut t = Table::new("x", vec!["a"]);
        t.push_row(vec!["1"]);
        assert_eq!(t.render(TableFormat::Markdown), t.to_markdown());
        assert_eq!(t.render(TableFormat::Csv), t.to_csv());
    }

    #[test]
    fn format_names_parse() {
        assert_eq!(TableFormat::from_name("md"), Some(TableFormat::Markdown));
        assert_eq!(
            TableFormat::from_name("Markdown"),
            Some(TableFormat::Markdown)
        );
        assert_eq!(TableFormat::from_name("CSV"), Some(TableFormat::Csv));
        assert_eq!(TableFormat::from_name("tsv"), None);
    }

    #[test]
    fn pct_delta_formats() {
        assert_eq!(pct_delta(1.139), "+13.9 %");
        assert_eq!(pct_delta(0.985), "-1.5 %");
    }
}
