//! Statistical helpers: the paper aggregates per-class results with the
//! geometric mean (§5).

/// Geometric mean of positive values. Panics on empty input or
/// non-positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geomean requires positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn stddev(values: &[f64]) -> f64 {
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Minimum (panics on empty).
pub fn min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum (panics on empty — returns −∞ which trips the assert).
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_known_value() {
        // gm(1, 4) = 2.
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_below_arithmetic_mean() {
        let v = [0.5, 1.0, 2.0, 4.0];
        assert!(geomean(&v) < mean(&v));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn stddev_zero_for_constant() {
        assert_eq!(stddev(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn min_max_simple() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(min(&v), 1.0);
        assert_eq!(max(&v), 3.0);
    }
}
