//! The paper's three performance metrics (Table 5).
//!
//! With per-core IPCs under a scheme and under the baseline (L2P):
//!
//! * **Throughput** — `Σᵢ IPCᵢ(scheme)`;
//! * **Average Weighted Speedup** — `(1/N) Σᵢ IPCᵢ(scheme)/IPCᵢ(base)`
//!   (Tullsen & Brown);
//! * **Fair Speedup** — `N / Σᵢ IPCᵢ(base)/IPCᵢ(scheme)` — the harmonic
//!   mean of relative IPCs (Luo et al.), balancing performance and
//!   fairness.

use serde::{Deserialize, Serialize};

/// Per-core IPCs for one (workload, scheme) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpcVector {
    /// IPC of each core.
    pub ipcs: Vec<f64>,
}

impl IpcVector {
    /// Wrap a vector of per-core IPCs.
    pub fn new(ipcs: Vec<f64>) -> Self {
        assert!(!ipcs.is_empty(), "need at least one core");
        assert!(ipcs.iter().all(|&x| x > 0.0), "IPCs must be positive");
        IpcVector { ipcs }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.ipcs.len()
    }

    /// Throughput: the sum of IPCs.
    pub fn throughput(&self) -> f64 {
        self.ipcs.iter().sum()
    }
}

/// Throughput of `scheme` normalised to `baseline` (the quantity plotted
/// in Fig. 9).
pub fn normalized_throughput(scheme: &IpcVector, baseline: &IpcVector) -> f64 {
    assert_eq!(scheme.cores(), baseline.cores());
    scheme.throughput() / baseline.throughput()
}

/// Average Weighted Speedup (Fig. 10).
pub fn average_weighted_speedup(scheme: &IpcVector, baseline: &IpcVector) -> f64 {
    assert_eq!(scheme.cores(), baseline.cores());
    let n = scheme.cores() as f64;
    scheme
        .ipcs
        .iter()
        .zip(&baseline.ipcs)
        .map(|(s, b)| s / b)
        .sum::<f64>()
        / n
}

/// Fair Speedup (Fig. 11): harmonic mean of relative IPCs.
pub fn fair_speedup(scheme: &IpcVector, baseline: &IpcVector) -> f64 {
    assert_eq!(scheme.cores(), baseline.cores());
    let n = scheme.cores() as f64;
    n / scheme
        .ipcs
        .iter()
        .zip(&baseline.ipcs)
        .map(|(s, b)| b / s)
        .sum::<f64>()
}

/// All three metrics for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSet {
    /// Normalised throughput.
    pub throughput: f64,
    /// Average weighted speedup.
    pub aws: f64,
    /// Fair speedup.
    pub fair: f64,
}

impl MetricSet {
    /// Compute all three metrics against the baseline.
    pub fn compute(scheme: &IpcVector, baseline: &IpcVector) -> Self {
        MetricSet {
            throughput: normalized_throughput(scheme, baseline),
            aws: average_weighted_speedup(scheme, baseline),
            fair: fair_speedup(scheme, baseline),
        }
    }

    /// The identity metric set (baseline vs itself).
    pub fn identity() -> Self {
        MetricSet {
            throughput: 1.0,
            aws: 1.0,
            fair: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: &[f64]) -> IpcVector {
        IpcVector::new(x.to_vec())
    }

    #[test]
    fn identical_vectors_give_unity() {
        let a = v(&[1.0, 2.0, 0.5, 1.5]);
        let m = MetricSet::compute(&a, &a);
        assert!((m.throughput - 1.0).abs() < 1e-12);
        assert!((m.aws - 1.0).abs() < 1e-12);
        assert!((m.fair - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_speedup_reflected_in_all_metrics() {
        let base = v(&[1.0, 1.0, 1.0, 1.0]);
        let fast = v(&[1.2, 1.2, 1.2, 1.2]);
        let m = MetricSet::compute(&fast, &base);
        assert!((m.throughput - 1.2).abs() < 1e-12);
        assert!((m.aws - 1.2).abs() < 1e-12);
        assert!((m.fair - 1.2).abs() < 1e-12);
    }

    #[test]
    fn throughput_favours_high_absolute_ipc() {
        // One core doubles from a high base, another halves from a low
        // base: throughput rises, fairness falls.
        let base = v(&[2.0, 0.2]);
        let skew = v(&[4.0, 0.1]);
        assert!(normalized_throughput(&skew, &base) > 1.5);
        assert!(
            fair_speedup(&skew, &base) < 1.0,
            "harmonic mean punishes the slowdown"
        );
    }

    #[test]
    fn aws_is_arithmetic_mean_of_ratios() {
        let base = v(&[1.0, 2.0]);
        let s = v(&[2.0, 2.0]);
        // ratios: 2.0 and 1.0 → mean 1.5.
        assert!((average_weighted_speedup(&s, &base) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fair_speedup_is_harmonic_mean_of_ratios() {
        let base = v(&[1.0, 1.0]);
        let s = v(&[2.0, 0.5]);
        // harmonic mean of 2 and 0.5 = 2/(0.5+2) = 0.8.
        assert!((fair_speedup(&s, &base) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fair_never_exceeds_aws() {
        // Harmonic mean ≤ arithmetic mean.
        let base = v(&[1.0, 1.3, 0.7, 2.0]);
        let s = v(&[1.4, 1.1, 0.9, 2.2]);
        assert!(fair_speedup(&s, &base) <= average_weighted_speedup(&s, &base) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ipc_rejected() {
        v(&[1.0, 0.0]);
    }
}
