//! Rolling-window throughput convergence estimation.
//!
//! The run-plan layer stops a simulation once its measured throughput
//! is *stable* instead of at a guessed cycle count. Stability is judged
//! over a rolling window of interval throughputs: the estimator keeps
//! the most recent `capacity` samples and reports the window's relative
//! spread, `(max − min) / mean`. A full window whose spread is at or
//! below a policy's `rel_epsilon` means every recent interval agrees on
//! the throughput to within that tolerance — the signal
//! `sim_cmp::Converged` stop policies act on.
//!
//! The estimator is plain data (`Clone` + `PartialEq`), so session
//! snapshots capture it and restored runs resume with the identical
//! convergence state.

use std::collections::VecDeque;

/// A fixed-capacity rolling window of interval throughput samples.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingThroughput {
    capacity: usize,
    samples: VecDeque<f64>,
}

impl RollingThroughput {
    /// A window holding the `capacity` most recent samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` — spread over fewer than two samples is
    /// meaningless.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "rolling window needs at least two samples");
        RollingThroughput {
            capacity,
            samples: VecDeque::with_capacity(capacity),
        }
    }

    /// Push one interval throughput, evicting the oldest sample once
    /// the window is full.
    pub fn push(&mut self, throughput: f64) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(throughput);
    }

    /// Drop every sample, keeping the capacity — a re-convergence
    /// policy clears the window at a workload phase boundary so
    /// pre-shift plateau samples never vouch for the post-shift regime.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the window holds its full `capacity` of samples.
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// The configured window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean of the samples currently held (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Relative spread of the window: `(max − min) / mean`. Infinite
    /// until the window is full or while the mean is not positive, so a
    /// partial or degenerate window can never read as converged.
    pub fn rel_spread(&self) -> f64 {
        if !self.is_full() {
            return f64::INFINITY;
        }
        let mean = self.mean();
        if mean <= 0.0 {
            return f64::INFINITY;
        }
        let max = self
            .samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        (max - min) / mean
    }

    /// Whether a full window agrees to within `rel_epsilon`.
    pub fn converged(&self, rel_epsilon: f64) -> bool {
        self.rel_spread() <= rel_epsilon
    }
}

/// One workload phase's plateau as a re-convergence stop policy saw it:
/// the segment between two phase boundaries (or the window edges), and
/// whether/where the rolling window stabilised inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePlateau {
    /// Zero-based phase index (0 = before the first shift).
    pub phase: usize,
    /// Measured cycle the phase begins at (0 for the first).
    pub start_cycle: u64,
    /// Measured cycle the rolling window first reported convergence
    /// inside this phase, or `None` if the phase ended (shift or
    /// ceiling) while still ramping.
    pub converged_at: Option<u64>,
    /// Mean throughput of the rolling window at the end of the phase —
    /// the plateau level when `converged_at` is set, a mid-ramp reading
    /// otherwise (0 when the phase produced no full sample).
    pub mean_throughput: f64,
}

impl PhasePlateau {
    /// Whether the phase reached a stable plateau before it ended.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_window_never_converges() {
        let mut w = RollingThroughput::new(4);
        for _ in 0..3 {
            w.push(1.0);
            assert!(!w.converged(f64::INFINITY.min(1e9)), "window not full");
            assert_eq!(w.rel_spread(), f64::INFINITY);
        }
        w.push(1.0);
        assert!(w.is_full());
        assert!(w.converged(0.0), "constant window has zero spread");
    }

    #[test]
    fn spread_is_relative_to_the_mean() {
        let mut w = RollingThroughput::new(2);
        w.push(99.0);
        w.push(101.0);
        // (101 − 99) / 100 = 2 %.
        assert!((w.rel_spread() - 0.02).abs() < 1e-12);
        assert!(w.converged(0.02));
        assert!(!w.converged(0.019));
    }

    #[test]
    fn window_rolls_forward() {
        let mut w = RollingThroughput::new(3);
        for tp in [10.0, 1.0, 1.0, 1.0] {
            w.push(tp);
        }
        // The 10.0 outlier has rolled out of the window.
        assert_eq!(w.len(), 3);
        assert!(w.converged(0.0));
        assert!((w.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_mean_window_never_converges() {
        let mut w = RollingThroughput::new(2);
        w.push(0.0);
        w.push(0.0);
        assert_eq!(w.rel_spread(), f64::INFINITY);
        assert!(!w.converged(1e9));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn capacity_below_two_is_rejected() {
        RollingThroughput::new(1);
    }

    #[test]
    fn clear_resets_the_window_but_keeps_capacity() {
        let mut w = RollingThroughput::new(3);
        for _ in 0..3 {
            w.push(2.0);
        }
        assert!(w.converged(0.0));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.rel_spread(), f64::INFINITY, "cleared window is partial");
        // Refilling converges again only once full.
        w.push(1.0);
        w.push(1.0);
        assert!(!w.converged(1e9));
        w.push(1.0);
        assert!(w.converged(0.0));
    }
}
