//! # snug-metrics — performance metrics and reporting
//!
//! * [`perf`] — the paper's Table 5 metrics: throughput, average
//!   weighted speedup, fair speedup;
//! * [`stats`] — geometric means and friends (per-class aggregation);
//! * [`convergence`] — the rolling-window throughput estimator behind
//!   convergence-based early exit;
//! * [`counters`] — the [`SimCounters`] observability block the
//!   simulators fill in and `snug profile` renders;
//! * [`table`] — Markdown/CSV table rendering for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod counters;
pub mod perf;
pub mod stats;
pub mod table;

pub use convergence::{PhasePlateau, RollingThroughput};
pub use counters::{SimCounters, WALK_DEPTH_BUCKETS};
pub use perf::{
    average_weighted_speedup, fair_speedup, normalized_throughput, IpcVector, MetricSet,
};
pub use stats::{geomean, max, mean, min, stddev};
pub use table::{f3, pct_delta, Table, TableFormat};
