//! DSR — Dynamic Spill-Receive (Qureshi, HPCA'09).
//!
//! Each private cache learns, via set dueling, whether it should act as
//! a **spiller** (its clean victims are retained in peer caches) or a
//! **receiver** (it donates capacity). A few *spiller-sample* sets always
//! spill and a few *receiver-sample* sets always receive; a per-cache
//! PSEL counter compares the off-chip miss rates of the two sample
//! populations, and follower sets adopt the winning policy.
//!
//! This is the application-level state of the art the paper compares
//! against: it exploits *application-level* asymmetry in capacity demand
//! but is blind to set-level non-uniformity (the gap SNUG targets).

use crate::chassis::{PeerHit, PrivateChassis};
use sim_cache::{CacheStats, Evicted, Psel};
use sim_cmp::{ChipResources, L2Fill, L2Org, L2Outcome, SystemConfig};
use sim_mem::BlockAddr;

/// Role a set plays in the duel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetRole {
    /// Dedicated always-spill sample set.
    SpillSample,
    /// Dedicated always-receive sample set.
    ReceiveSample,
    /// Follower: adopts the PSEL-selected policy.
    Follower,
}

/// DSR configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsrConfig {
    /// One spiller-sample set every `sample_stride` sets (receiver
    /// samples are offset by half a stride). Qureshi uses 32 dueling
    /// sets per 1024-set cache → stride 32.
    pub sample_stride: usize,
    /// PSEL width in bits (Qureshi: 10).
    pub psel_bits: u32,
}

impl DsrConfig {
    /// Qureshi's published parameters.
    pub fn paper() -> Self {
        DsrConfig {
            sample_stride: 32,
            psel_bits: 10,
        }
    }

    /// Small-stride configuration for tiny test caches.
    pub fn tiny() -> Self {
        DsrConfig {
            sample_stride: 4,
            psel_bits: 6,
        }
    }
}

/// The DSR organisation.
#[derive(Clone)]
pub struct Dsr {
    chassis: PrivateChassis,
    cfg: DsrConfig,
    psel: Vec<Psel>,
    next_peer: usize,
}

impl Dsr {
    /// Build DSR.
    pub fn new(sys: SystemConfig, cfg: DsrConfig) -> Self {
        assert!(cfg.sample_stride >= 2);
        let n = sys.num_cores;
        Dsr {
            chassis: PrivateChassis::new(sys),
            cfg,
            psel: vec![Psel::new(cfg.psel_bits); n],
            next_peer: 1,
        }
    }

    /// Access to the underlying chassis (tests/diagnostics).
    pub fn chassis(&self) -> &PrivateChassis {
        &self.chassis
    }

    /// The duel role of `set` in cache `c`.
    ///
    /// Sample positions are staggered per cache (as in Qureshi's design)
    /// so one cache's spiller samples land on other caches' followers or
    /// receiver samples rather than their spiller samples.
    pub fn set_role(&self, c: usize, set: usize) -> SetRole {
        let s = self.cfg.sample_stride;
        let off = (c * s / self.chassis.num_cores()) % s;
        let r = set % s;
        if r == off {
            SetRole::SpillSample
        } else if r == (off + s / 2) % s {
            SetRole::ReceiveSample
        } else {
            SetRole::Follower
        }
    }

    /// Whether cache `c` currently acts as a spiller for its followers.
    ///
    /// Orientation: a DRAM-bound miss in a spiller-sample set increments
    /// PSEL, one in a receiver-sample set decrements it. Low PSEL ⇒
    /// spill-sample sets miss less ⇒ spilling pays for this cache.
    pub fn is_spiller(&self, c: usize) -> bool {
        !self.psel[c].high()
    }

    /// Whether set `set` of cache `c` may spill its victims.
    fn spills(&self, c: usize, set: usize) -> bool {
        match self.set_role(c, set) {
            SetRole::SpillSample => true,
            SetRole::ReceiveSample => false,
            SetRole::Follower => self.is_spiller(c),
        }
    }

    /// Whether set `set` of cache `c` accepts spilled blocks.
    fn receives(&self, c: usize, set: usize) -> bool {
        match self.set_role(c, set) {
            SetRole::SpillSample => false,
            SetRole::ReceiveSample => true,
            SetRole::Follower => !self.is_spiller(c),
        }
    }

    /// Record a DRAM-bound miss for the duel.
    fn note_dram_miss(&mut self, c: usize, set: usize) {
        match self.set_role(c, set) {
            SetRole::SpillSample => self.psel[c].inc(),
            SetRole::ReceiveSample => self.psel[c].dec(),
            SetRole::Follower => {}
        }
    }

    fn probe_peers(&self, owner: usize, block: BlockAddr) -> Option<PeerHit> {
        let set = self.chassis.cfg.l2_slice.set_index(block);
        let n = self.chassis.num_cores();
        (0..n)
            .filter(|&j| j != owner)
            .find(|&j| self.chassis.probe_cc_in_set(j, set, block))
            .map(|peer| PeerHit { peer, set })
    }

    fn handle_victim(&mut self, core: usize, ev: Evicted, now: u64, res: &mut ChipResources<'_>) {
        if ev.flags.cc {
            return;
        }
        if ev.flags.dirty {
            self.chassis.retire_victim(core, ev, now, res);
            return;
        }
        let set = self.chassis.cfg.l2_slice.set_index(ev.block);
        if !self.spills(core, set) {
            return;
        }
        // Round-robin over receiving peers.
        let n = self.chassis.num_cores();
        let start = self.next_peer;
        for k in 0..n {
            let j = (start + k) % n;
            if j != core && self.receives(j, set) {
                self.next_peer = (j + 1) % n;
                self.chassis.charge_spill_transfer(now, res);
                self.chassis
                    .receive_spill(core, j, set, ev.block, false, now, res);
                return;
            }
        }
    }
}

impl L2Org for Dsr {
    fn access(
        &mut self,
        core: usize,
        block: BlockAddr,
        is_write: bool,
        now: u64,
        res: &mut ChipResources<'_>,
    ) -> L2Outcome {
        self.chassis.drain_write_buffers(now, res);
        if self.chassis.local_access(core, block, is_write).is_some() {
            return L2Outcome {
                latency: self.chassis.cfg.l2_local_latency,
                fill: L2Fill::LocalHit,
            };
        }
        self.chassis.slices[core].stats_mut().misses += 1;
        if let Some(ev) = self.chassis.write_buffer_read(core, block, is_write) {
            if let Some(ev) = ev {
                self.handle_victim(core, ev, now, res);
            }
            return L2Outcome {
                latency: self.chassis.cfg.l2_local_latency,
                fill: L2Fill::WriteBufferHit,
            };
        }
        if let Some(hit) = self.probe_peers(core, block) {
            let latency =
                self.chassis
                    .peer_hit_latency(now, self.chassis.cfg.l2_remote_latency, res);
            self.chassis.forward_from_peer(core, hit, block);
            if let Some(ev) = self.chassis.fill_local(core, block, is_write) {
                self.handle_victim(core, ev, now, res);
            }
            return L2Outcome {
                latency,
                fill: L2Fill::RemoteHit,
            };
        }
        let set = self.chassis.cfg.l2_slice.set_index(block);
        self.note_dram_miss(core, set);
        let latency = self.chassis.dram_fill_latency(now, res);
        if let Some(ev) = self.chassis.fill_local(core, block, is_write) {
            self.handle_victim(core, ev, now, res);
        }
        L2Outcome {
            latency,
            fill: L2Fill::Dram,
        }
    }

    fn writeback(&mut self, core: usize, block: BlockAddr, now: u64, res: &mut ChipResources<'_>) {
        self.chassis.l1_writeback(core, block, now, res);
    }

    fn slice_stats(&self, core: usize) -> &CacheStats {
        self.chassis.slices[core].stats()
    }

    fn num_cores(&self) -> usize {
        self.chassis.num_cores()
    }

    fn name(&self) -> &'static str {
        "DSR"
    }

    fn reset_stats(&mut self) {
        self.chassis.reset_stats();
    }

    fn clone_dyn(&self) -> Box<dyn L2Org> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cmp::{Bus, BusConfig};
    use sim_mem::{Dram, DramConfig};

    fn mk() -> (Dsr, Bus, Dram) {
        (
            Dsr::new(SystemConfig::tiny_test(), DsrConfig::tiny()),
            Bus::new(BusConfig::paper()),
            Dram::new(DramConfig::uncontended(300)),
        )
    }

    #[test]
    fn sample_roles_follow_stride_and_stagger() {
        let (org, _, _) = mk(); // stride 4 over 16 sets, offsets 0..3
        assert_eq!(org.set_role(0, 0), SetRole::SpillSample);
        assert_eq!(org.set_role(0, 2), SetRole::ReceiveSample);
        assert_eq!(org.set_role(0, 1), SetRole::Follower);
        assert_eq!(org.set_role(0, 4), SetRole::SpillSample);
        // Cache 1 is staggered by one set.
        assert_eq!(org.set_role(1, 1), SetRole::SpillSample);
        assert_eq!(org.set_role(1, 3), SetRole::ReceiveSample);
        // Cache 2's receiver sample coincides with cache 0's spiller one.
        assert_eq!(org.set_role(2, 0), SetRole::ReceiveSample);
    }

    #[test]
    fn spill_sample_sets_always_spill() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        // Set 0 is a spiller sample; overflowing it must spill regardless
        // of PSEL.
        for tag in 0..6u64 {
            org.access(0, BlockAddr(tag << 4), false, t, &mut res);
            t += 500;
        }
        assert!(org.aggregate_stats().spills_out >= 2);
        // Set 0 is cache 2's receiver sample (stagger), so the victims
        // stayed on chip and the first one is retrievable.
        let r = org.access(0, BlockAddr(0), false, t, &mut res);
        assert_eq!(r.fill, L2Fill::RemoteHit);
        assert!(org.chassis().single_copy_invariant());
    }

    #[test]
    fn receiver_sample_sets_accept_spills() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        // Set 2 is cache 0's receiver sample; DRAM misses there
        // decrement PSEL until cache 0's followers become spillers.
        for tag in 0..20u64 {
            org.access(0, BlockAddr((tag << 4) | 2), false, t, &mut res);
            t += 500;
        }
        assert!(org.is_spiller(0), "receive-sample misses drove PSEL low");
        // Peers' PSELs are untouched → midpoint → receivers.
        assert!(!org.is_spiller(2));
        for tag in 0..6u64 {
            org.access(0, BlockAddr((tag << 4) | 1), false, t, &mut res);
            t += 500;
        }
        assert!(org.aggregate_stats().spills_in > 0);
        let r = org.access(0, BlockAddr(1), false, t, &mut res);
        assert_eq!(
            r.fill,
            L2Fill::RemoteHit,
            "victim retrieved from a receiver peer"
        );
        assert!(org.chassis().single_copy_invariant());
    }

    #[test]
    fn psel_orientation() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        assert!(!org.is_spiller(0), "midpoint defaults to receiver");
        // DRAM misses in the spill-sample set push PSEL up (spilling
        // looks bad) → stays receiver.
        let mut t = 0;
        for tag in 200..230u64 {
            org.access(0, BlockAddr(tag << 4), false, t, &mut res);
            t += 500;
        }
        assert!(!org.is_spiller(0));
    }
}
