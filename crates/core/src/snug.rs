//! SNUG — Set-level Non-Uniformity identifier and Grouper (paper §3).
//!
//! The paper's contribution. Each private L2 slice carries:
//!
//! * a **shadow tag array** — one tag-only set per L2 set, holding the
//!   tags of locally evicted owned lines (strictly exclusive with the
//!   real set);
//! * a per-set **saturating counter** (+1 per shadow hit, −1 per `p`
//!   real-or-shadow hits) whose MSB says whether doubling the set's
//!   capacity would raise its hit rate by at least `1/p`;
//! * a **G/T vector** latched from those MSBs at the end of each
//!   Identification stage.
//!
//! Operation alternates between Stage I (identification, 5 M cycles:
//! monitors sample, incoming spills are refused, retrievals proceed
//! under the previous G/T vector) and Stage II (grouped operation,
//! 100 M cycles: taker sets spill; peers respond per the index-bit
//! flipping cases of Fig. 8).

use crate::chassis::{PeerHit, PrivateChassis};
use crate::gt::{GroupCase, GtVector};
use sim_cache::{CacheStats, Evicted, ShadowArray};
use sim_cmp::{
    ChipResources, L2Fill, L2Org, L2Outcome, SchemeEvent, SchemeEventKind, SystemConfig,
};
use sim_mem::BlockAddr;

/// SNUG configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnugConfig {
    /// Saturating-counter width k in bits (paper: 4).
    pub counter_bits: u32,
    /// Hit-rate threshold denominator p (paper: 8 → threshold 1/8).
    pub p: u16,
    /// Stage I (identification) length in cycles (paper: 5 M).
    pub stage1_cycles: u64,
    /// Stage II (grouped operation) length in cycles (paper: 100 M).
    pub stage2_cycles: u64,
    /// Enable the index-bit flipping scheme (Fig. 8 case 2). Disabling
    /// reduces grouping to same-index only — the ablation of §3.2.
    pub flipping: bool,
    /// Number of low index bits eligible for flipping. The paper's
    /// scheme is 1 (one f bit per line); wider widths explore the
    /// future-work direction of more flexible grouping. Ignored when
    /// `flipping` is false.
    pub flip_width: u32,
    /// Drop shadow contents at each period boundary (off by default:
    /// the victim history stays warm, as a hardware array would).
    pub clear_shadows_each_period: bool,
    /// Keep the demand monitors counting during Stage II as well,
    /// latching the full period's accumulation at each Stage I boundary.
    /// The paper freezes counters outside the 5 M-cycle identification
    /// stage; at that scale each set is sampled hundreds of times. A
    /// scaled-down simulation starves the monitors if it also freezes
    /// them, so scaled configurations sample continuously —
    /// identification fidelity is preserved, power modelling is not.
    pub continuous_sampling: bool,
}

impl SnugConfig {
    /// The paper's parameters (§3.4): k = 4, p = 8, 5 M + 100 M cycles.
    pub fn paper() -> Self {
        SnugConfig {
            counter_bits: 4,
            p: 8,
            stage1_cycles: 5_000_000,
            stage2_cycles: 100_000_000,
            flipping: true,
            flip_width: 1,
            clear_shadows_each_period: false,
            continuous_sampling: false,
        }
    }

    /// The paper's parameters with the two stage lengths scaled down by
    /// `factor` (the reproduction runs far fewer cycles than the paper's
    /// 3 B-cycle simulations; the 1:20 stage ratio is preserved).
    /// Scaled configurations sample continuously to compensate for the
    /// shorter observation windows.
    pub fn scaled(factor: u64) -> Self {
        assert!(factor >= 1);
        let mut c = Self::paper();
        c.stage1_cycles = (c.stage1_cycles / factor).max(1);
        c.stage2_cycles = (c.stage2_cycles / factor).max(1);
        c.continuous_sampling = factor > 1;
        c
    }

    /// Length of one full sampling period.
    pub fn period(&self) -> u64 {
        self.stage1_cycles + self.stage2_cycles
    }
}

/// Which stage the SNUG period machine is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// G/T sets identification (monitors sampling, no incoming spills).
    Identify,
    /// Grouped spilling/receiving under the latched G/T vectors.
    Grouped,
}

/// SNUG-specific event counters (beyond [`CacheStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnugEvents {
    /// Completed sampling periods.
    pub periods: u64,
    /// Spills placed via Fig. 8 case 1 (same index).
    pub spills_same_index: u64,
    /// Spills placed via Fig. 8 case 2 (flipped index).
    pub spills_flipped: u64,
    /// Spill attempts that found no giver set in any peer (case 3
    /// everywhere).
    pub spills_unplaced: u64,
    /// Stranded CC copies invalidated on refetch (the G/T vector had
    /// moved on and made them unreachable for forwarding).
    pub stranded_invalidated: u64,
}

/// The SNUG organisation.
#[derive(Clone)]
pub struct Snug {
    chassis: PrivateChassis,
    cfg: SnugConfig,
    shadows: Vec<ShadowArray>,
    gt: Vec<GtVector>,
    stage: Stage,
    period_start: u64,
    next_peer: usize,
    events: SnugEvents,
    /// Buffered stage/G-T transitions for session probes (drained via
    /// [`L2Org::drain_events`]; bounded by the period count).
    event_log: Vec<SchemeEvent>,
}

impl Snug {
    /// Build SNUG for the given system and parameters.
    pub fn new(sys: SystemConfig, cfg: SnugConfig) -> Self {
        let sets = sys.l2_slice.num_sets as usize;
        let assoc = sys.l2_slice.assoc;
        let n = sys.num_cores;
        Snug {
            chassis: PrivateChassis::new(sys),
            cfg,
            shadows: (0..n)
                .map(|_| ShadowArray::new(sets, assoc, cfg.counter_bits, cfg.p))
                .collect(),
            gt: (0..n).map(|_| GtVector::all_givers(sets)).collect(),
            stage: Stage::Identify,
            period_start: 0,
            next_peer: 1,
            events: SnugEvents::default(),
            event_log: Vec::new(),
        }
    }

    /// Access to the underlying chassis (tests/diagnostics).
    pub fn chassis(&self) -> &PrivateChassis {
        &self.chassis
    }

    /// Current stage.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The latched G/T vector of one slice.
    pub fn gt(&self, core: usize) -> &GtVector {
        &self.gt[core]
    }

    /// SNUG-specific event counters.
    pub fn events(&self) -> SnugEvents {
        self.events
    }

    /// Advance the two-stage period machine to `now` (paper Fig. 5).
    fn advance_clock(&mut self, now: u64) {
        loop {
            match self.stage {
                Stage::Identify => {
                    let boundary = self.period_start + self.cfg.stage1_cycles;
                    if now < boundary {
                        return;
                    }
                    // Latch fresh G/T vectors from the monitors. In paper
                    // mode the counters freeze for Stage II; in continuous
                    // mode they reset and keep counting, so the next latch
                    // reflects a full period of observation.
                    for (gt, sh) in self.gt.iter_mut().zip(self.shadows.iter_mut()) {
                        gt.latch(sh.latch_gt());
                        if self.cfg.continuous_sampling {
                            sh.reset_monitors();
                        } else {
                            sh.set_sampling(false);
                        }
                    }
                    self.stage = Stage::Grouped;
                    self.event_log.push(SchemeEvent {
                        cycle: boundary,
                        kind: SchemeEventKind::GroupedBegin,
                        takers: self.gt.iter().map(|gt| gt.taker_count() as u32).collect(),
                    });
                }
                Stage::Grouped => {
                    let boundary = self.period_start + self.cfg.period();
                    if now < boundary {
                        return;
                    }
                    self.period_start = boundary;
                    self.stage = Stage::Identify;
                    self.events.periods += 1;
                    self.event_log.push(SchemeEvent {
                        cycle: boundary,
                        kind: SchemeEventKind::IdentifyBegin,
                        takers: Vec::new(),
                    });
                    for sh in &mut self.shadows {
                        if !self.cfg.continuous_sampling {
                            sh.reset_monitors();
                            sh.set_sampling(true);
                        }
                        if self.cfg.clear_shadows_each_period {
                            sh.clear_shadows();
                        }
                    }
                }
            }
        }
    }

    /// Retrieval probe per §3.2: each peer consults its G/T vector for
    /// the two adjacent entries; at most one unambiguous set per peer
    /// may be searched.
    fn effective_flip_width(&self) -> u32 {
        if self.cfg.flipping {
            self.cfg.flip_width.max(1)
        } else {
            0
        }
    }

    fn probe_peers(&self, owner: usize, block: BlockAddr) -> Option<PeerHit> {
        let set = self.chassis.cfg.l2_slice.set_index(block);
        let n = self.chassis.num_cores();
        let w = self.effective_flip_width();
        for j in (0..n).filter(|&j| j != owner) {
            let probe_set = match self.gt[j].group_case_wide(set, w) {
                GroupCase::SameIndex => set,
                // snug-lint: allow(panic-audit, "FlippedIndex is only returned when the flip partner exists in the group table")
                GroupCase::FlippedIndex => self.gt[j].flip_partner(set, w).expect("partner exists"),
                GroupCase::NoMatch => continue,
            };
            if self.chassis.probe_cc_in_set(j, probe_set, block) {
                return Some(PeerHit {
                    peer: j,
                    set: probe_set,
                });
            }
        }
        None
    }

    /// Handle a local victim (paper §3.2 + §3.3): owned victims always
    /// leave their tag in the shadow set; dirty ones go to the write
    /// buffer; clean ones spill if the evicting set is a taker and a
    /// peer giver set exists (Stage II only).
    fn handle_victim(&mut self, core: usize, ev: Evicted, now: u64, res: &mut ChipResources<'_>) {
        if ev.flags.cc {
            return; // one-chance: an evicted received line is dropped
        }
        let set = self.chassis.cfg.l2_slice.set_index(ev.block);
        self.shadows[core].on_owned_eviction(set, ev.block);
        if ev.flags.dirty {
            self.chassis.retire_victim(core, ev, now, res);
            return;
        }
        if self.stage != Stage::Grouped || !self.gt[core].is_taker(set) {
            return;
        }
        // First responder: round-robin over peers, Fig. 8 cases.
        let n = self.chassis.num_cores();
        let start = self.next_peer;
        let w = self.effective_flip_width();
        for k in 0..n {
            let j = (start + k) % n;
            if j == core {
                continue;
            }
            let (target_set, flipped) = match self.gt[j].group_case_wide(set, w) {
                GroupCase::SameIndex => (set, false),
                GroupCase::FlippedIndex => (
                    // snug-lint: allow(panic-audit, "FlippedIndex is only returned when the flip partner exists in the group table")
                    self.gt[j].flip_partner(set, w).expect("partner exists"),
                    true,
                ),
                GroupCase::NoMatch => continue,
            };
            self.next_peer = (j + 1) % n;
            if flipped {
                self.events.spills_flipped += 1;
            } else {
                self.events.spills_same_index += 1;
            }
            self.chassis.charge_spill_transfer(now, res);
            self.chassis
                .receive_spill(core, j, target_set, ev.block, flipped, now, res);
            return;
        }
        self.events.spills_unplaced += 1;
    }
}

impl L2Org for Snug {
    fn access(
        &mut self,
        core: usize,
        block: BlockAddr,
        is_write: bool,
        now: u64,
        res: &mut ChipResources<'_>,
    ) -> L2Outcome {
        self.advance_clock(now);
        self.chassis.drain_write_buffers(now, res);
        let set = self.chassis.cfg.l2_slice.set_index(block);
        if self.chassis.local_access(core, block, is_write).is_some() {
            self.shadows[core].on_real_hit(set);
            return L2Outcome {
                latency: self.chassis.cfg.l2_local_latency,
                fill: L2Fill::LocalHit,
            };
        }
        self.chassis.slices[core].stats_mut().misses += 1;
        // Shadow lookup: a hit means the block was recently evicted from
        // this very set — it is about to re-enter the real set, so the
        // entry is invalidated (exclusivity) and the monitor credited.
        if self.shadows[core].on_real_miss(set, block) {
            self.chassis.slices[core].stats_mut().shadow_hits += 1;
        }
        if let Some(ev) = self.chassis.write_buffer_read(core, block, is_write) {
            if let Some(ev) = ev {
                self.handle_victim(core, ev, now, res);
            }
            return L2Outcome {
                latency: self.chassis.cfg.l2_local_latency,
                fill: L2Fill::WriteBufferHit,
            };
        }
        if let Some(hit) = self.probe_peers(core, block) {
            let latency =
                self.chassis
                    .peer_hit_latency(now, self.chassis.cfg.snug_remote_latency, res);
            self.chassis.forward_from_peer(core, hit, block);
            if let Some(ev) = self.chassis.fill_local(core, block, is_write) {
                self.handle_victim(core, ev, now, res);
            }
            return L2Outcome {
                latency,
                fill: L2Fill::RemoteHit,
            };
        }
        // Off-chip. Any stranded CC copy (unreachable because the G/T
        // vector changed since it was spilled) is silently invalidated by
        // the snoop so the single-copy invariant holds after the refill.
        let stranded =
            self.chassis
                .invalidate_cc_copies_wide(core, block, self.effective_flip_width().max(1));
        self.events.stranded_invalidated += stranded as u64;
        let latency = self.chassis.dram_fill_latency(now, res);
        if let Some(ev) = self.chassis.fill_local(core, block, is_write) {
            self.handle_victim(core, ev, now, res);
        }
        L2Outcome {
            latency,
            fill: L2Fill::Dram,
        }
    }

    fn writeback(&mut self, core: usize, block: BlockAddr, now: u64, res: &mut ChipResources<'_>) {
        self.chassis.l1_writeback(core, block, now, res);
    }

    fn slice_stats(&self, core: usize) -> &CacheStats {
        self.chassis.slices[core].stats()
    }

    fn num_cores(&self) -> usize {
        self.chassis.num_cores()
    }

    fn name(&self) -> &'static str {
        "SNUG"
    }

    fn reset_stats(&mut self) {
        self.chassis.reset_stats();
        self.events = SnugEvents::default();
        // `event_log` deliberately survives: it is a transition log for
        // probes, not a statistic — clearing it here would drop any
        // stage/G-T event that fired between the last probe drain and
        // the warm-up boundary from recorded traces.
    }

    fn clone_dyn(&self) -> Box<dyn L2Org> {
        Box::new(self.clone())
    }

    fn drain_events(&mut self) -> Vec<SchemeEvent> {
        std::mem::take(&mut self.event_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cmp::{Bus, BusConfig};
    use sim_mem::{Dram, DramConfig};

    fn tiny_cfg() -> SnugConfig {
        SnugConfig {
            counter_bits: 4,
            p: 8,
            stage1_cycles: 10_000,
            stage2_cycles: 200_000,
            flipping: true,
            flip_width: 1,
            clear_shadows_each_period: false,
            continuous_sampling: false,
        }
    }

    fn mk() -> (Snug, Bus, Dram) {
        (
            Snug::new(SystemConfig::tiny_test(), tiny_cfg()),
            Bus::new(BusConfig::paper()),
            Dram::new(DramConfig::uncontended(300)),
        )
    }

    /// Cyclic references over `d` tags in `set` from `core`. Tags are
    /// offset per core: multiprogrammed address spaces are disjoint.
    fn cycle_set(
        org: &mut Snug,
        core: usize,
        set: u64,
        d: u64,
        rounds: u64,
        t: &mut u64,
        res: &mut ChipResources<'_>,
    ) {
        for _ in 0..rounds {
            for tag in 0..d {
                let tag = tag + 1000 * core as u64;
                org.access(core, BlockAddr((tag << 4) | set), false, *t, res);
                *t += 50;
            }
        }
    }

    #[test]
    fn starts_in_identify_with_all_givers() {
        let (org, _, _) = mk();
        assert_eq!(org.stage(), Stage::Identify);
        assert_eq!(org.gt(0).taker_count(), 0);
    }

    #[test]
    fn no_spilling_during_identify() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        // Thrash within Stage I (t stays < 10_000).
        for tag in 0..8u64 {
            org.access(0, BlockAddr((tag << 4) | 3), false, t, &mut res);
            t += 100;
        }
        assert_eq!(org.stage(), Stage::Identify);
        assert_eq!(org.aggregate_stats().spills_out, 0);
    }

    #[test]
    fn thrashing_set_becomes_taker_after_stage1() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        // d=6 > assoc=4: every re-reference is a shadow hit.
        cycle_set(&mut org, 0, 5, 6, 20, &mut t, &mut res);
        // Quiet set 2 gets real hits only.
        cycle_set(&mut org, 0, 2, 2, 30, &mut t, &mut res);
        assert!(t < 10_000, "still inside stage I budget");
        // Cross the stage boundary.
        org.access(0, BlockAddr(0x9999 << 4), false, 10_001, &mut res);
        assert_eq!(org.stage(), Stage::Grouped);
        assert!(org.gt(0).is_taker(5), "thrashing set latched as taker");
        assert!(org.gt(0).is_giver(2), "satisfied set latched as giver");
    }

    #[test]
    fn taker_spills_to_giver_after_identification() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        // All cores: set 5 thrashes (→ taker), set 2 quiet (→ giver).
        for c in 0..4 {
            let mut tc = t;
            cycle_set(&mut org, c, 5, 6, 20, &mut tc, &mut res);
        }
        // Enter stage II.
        org.access(0, BlockAddr(0xAAAA << 4), false, 10_100, &mut res);
        assert_eq!(org.stage(), Stage::Grouped);
        t = 10_200;
        // Set 5 is taker in all caches; set 4 (= 5^1) was never touched →
        // giver → flipped-index spills must carry the traffic.
        cycle_set(&mut org, 0, 5, 6, 10, &mut t, &mut res);
        let ev = org.events();
        assert!(
            ev.spills_flipped > 0,
            "index-bit flipping found the giver neighbour"
        );
        assert_eq!(
            ev.spills_same_index, 0,
            "same-index sets are takers everywhere"
        );
        assert!(
            org.aggregate_stats().retrieved_from_peer > 0,
            "spilled victims got retrieved"
        );
        assert!(org.chassis().single_copy_invariant());
    }

    #[test]
    fn flipping_disabled_blocks_case2() {
        let mut cfg = tiny_cfg();
        cfg.flipping = false;
        let mut org = Snug::new(SystemConfig::tiny_test(), cfg);
        let mut bus = Bus::new(BusConfig::paper());
        let mut dram = Dram::new(DramConfig::uncontended(300));
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        for c in 0..4 {
            let mut tc = t;
            cycle_set(&mut org, c, 5, 6, 20, &mut tc, &mut res);
        }
        t = 10_100;
        org.access(0, BlockAddr(0xAAAA << 4), false, t, &mut res);
        t += 100;
        cycle_set(&mut org, 0, 5, 6, 10, &mut t, &mut res);
        let ev = org.events();
        assert_eq!(ev.spills_flipped, 0);
        assert!(ev.spills_unplaced > 0, "case 3 everywhere without flipping");
    }

    #[test]
    fn period_machine_cycles() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        org.access(0, BlockAddr(16), false, 5, &mut res);
        assert_eq!(org.stage(), Stage::Identify);
        org.access(0, BlockAddr(32), false, 15_000, &mut res);
        assert_eq!(org.stage(), Stage::Grouped);
        org.access(0, BlockAddr(48), false, 211_000, &mut res);
        assert_eq!(org.stage(), Stage::Identify, "next period began");
        assert_eq!(org.events().periods, 1);
    }

    #[test]
    fn shadow_hits_counted_in_stats() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        cycle_set(&mut org, 0, 7, 6, 5, &mut t, &mut res);
        assert!(org.slice_stats(0).shadow_hits > 0);
    }

    #[test]
    fn giver_sets_do_not_spill() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        // Streaming through set 1: all-distinct tags → no shadow hits →
        // giver. Evictions must never spill even in stage II.
        for tag in 0..20u64 {
            org.access(0, BlockAddr((tag << 4) | 1), false, t, &mut res);
            t += 100;
        }
        org.access(0, BlockAddr(0xBBBB << 4), false, 10_100, &mut res);
        t = 10_200;
        for tag in 20..60u64 {
            org.access(0, BlockAddr((tag << 4) | 1), false, t, &mut res);
            t += 100;
        }
        assert_eq!(org.aggregate_stats().spills_out, 0);
    }

    #[test]
    fn scaled_config_preserves_ratio() {
        let c = SnugConfig::scaled(100);
        assert_eq!(c.stage1_cycles, 50_000);
        assert_eq!(c.stage2_cycles, 1_000_000);
        assert_eq!(SnugConfig::paper().period(), 105_000_000);
    }
}
