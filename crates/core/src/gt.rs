//! The G/T (giver/taker) bit vector (paper §3.1.3).
//!
//! One bit per L2 set, latched from the per-set saturating-counter MSBs
//! at the end of each Identification stage. Addressable independently of
//! the cache arrays so peers can consult it during snoops.

use serde::{Deserialize, Serialize};

/// A per-slice G/T vector. `true` = taker, `false` = giver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GtVector {
    bits: Vec<bool>,
}

impl GtVector {
    /// All-giver vector (the state before the first identification
    /// stage completes: nothing has demonstrated extra demand yet).
    pub fn all_givers(num_sets: usize) -> Self {
        GtVector {
            bits: vec![false; num_sets],
        }
    }

    /// Latch a fresh verdict vector.
    pub fn latch(&mut self, verdicts: Vec<bool>) {
        assert_eq!(verdicts.len(), self.bits.len());
        self.bits = verdicts;
    }

    /// Whether `set` is a taker.
    #[inline]
    pub fn is_taker(&self, set: usize) -> bool {
        self.bits[set]
    }

    /// Whether `set` is a giver.
    #[inline]
    pub fn is_giver(&self, set: usize) -> bool {
        !self.bits[set]
    }

    /// Number of taker sets.
    pub fn taker_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Number of sets.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector is empty (never in practice).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }
}

/// Outcome of consulting a peer's G/T vector for a spilled block's home
/// index — the three cases of paper Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupCase {
    /// Case 1: the same-index set is a giver → receive there, f = 0.
    SameIndex,
    /// Case 2: same-index set is a taker but the last-bit-flipped set is
    /// a giver → receive there, f = 1.
    FlippedIndex,
    /// Case 3: both adjacent sets are takers → this cache cannot help.
    NoMatch,
}

impl GtVector {
    /// Evaluate the Fig. 8 grouping decision for home set `set`.
    /// When `flipping` is disabled (ablation), case 2 degrades to
    /// [`GroupCase::NoMatch`].
    pub fn group_case(&self, set: usize, flipping: bool) -> GroupCase {
        self.group_case_wide(set, if flipping { 1 } else { 0 })
    }

    /// Generalised grouping with `flip_width` low index bits eligible
    /// for flipping (the paper's scheme is `flip_width = 1`; wider
    /// widths explore the paper's future-work direction of more flexible
    /// grouping at the cost of `flip_width` f bits per line and up to
    /// `2^w − 1` extra G/T lookups). Neighbours are probed in Gray-ish
    /// nearest-first order: s^1, s^2, s^3, …
    pub fn group_case_wide(&self, set: usize, flip_width: u32) -> GroupCase {
        if self.is_giver(set) {
            return GroupCase::SameIndex;
        }
        for mask in 1..(1usize << flip_width) {
            let partner = set ^ mask;
            if partner < self.len() && self.is_giver(partner) {
                return GroupCase::FlippedIndex;
            }
        }
        GroupCase::NoMatch
    }

    /// The partner set selected by [`GtVector::group_case_wide`] when it
    /// returns [`GroupCase::FlippedIndex`].
    pub fn flip_partner(&self, set: usize, flip_width: u32) -> Option<usize> {
        if self.is_giver(set) {
            return None;
        }
        (1..(1usize << flip_width))
            .map(|mask| set ^ mask)
            .find(|&p| p < self.len() && self.is_giver(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_givers() {
        let v = GtVector::all_givers(8);
        assert_eq!(v.taker_count(), 0);
        assert!(v.is_giver(3));
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn latch_replaces_bits() {
        let mut v = GtVector::all_givers(4);
        v.latch(vec![true, false, true, true]);
        assert!(v.is_taker(0));
        assert!(v.is_giver(1));
        assert_eq!(v.taker_count(), 3);
    }

    #[test]
    fn group_case_same_index() {
        let mut v = GtVector::all_givers(4);
        v.latch(vec![false, true, true, true]);
        assert_eq!(v.group_case(0, true), GroupCase::SameIndex);
    }

    #[test]
    fn group_case_flipped() {
        let mut v = GtVector::all_givers(4);
        // set 2 taker, set 3 giver.
        v.latch(vec![true, true, true, false]);
        assert_eq!(v.group_case(2, true), GroupCase::FlippedIndex);
        assert_eq!(
            v.group_case(2, false),
            GroupCase::NoMatch,
            "ablation disables case 2"
        );
    }

    #[test]
    fn group_case_no_match() {
        let mut v = GtVector::all_givers(4);
        v.latch(vec![true, true, true, true]);
        assert_eq!(v.group_case(1, true), GroupCase::NoMatch);
    }

    #[test]
    #[should_panic]
    fn latch_length_mismatch_panics() {
        GtVector::all_givers(4).latch(vec![true]);
    }

    #[test]
    fn wide_flipping_reaches_further_neighbours() {
        let mut v = GtVector::all_givers(8);
        // Sets 0..3 takers; set 6 is the only giver.
        v.latch(vec![true, true, true, true, true, true, false, true]);
        // Width 1 from set 4: partner 5 is a taker → no match.
        assert_eq!(v.group_case_wide(4, 1), GroupCase::NoMatch);
        // Width 2 reaches 4^2 = 6 → giver found.
        assert_eq!(v.group_case_wide(4, 2), GroupCase::FlippedIndex);
        assert_eq!(v.flip_partner(4, 2), Some(6));
    }

    #[test]
    fn wide_flipping_width_zero_is_same_index_only() {
        let mut v = GtVector::all_givers(2);
        v.latch(vec![true, false]);
        assert_eq!(v.group_case_wide(0, 0), GroupCase::NoMatch);
        assert_eq!(v.group_case_wide(1, 0), GroupCase::SameIndex);
    }
}
