//! Scheme specification and construction — the five L2 organisations of
//! the paper's §4.1 behind one factory.
//!
//! [`SchemeSpec`] is the single parse/print path for scheme names:
//! `Display` renders the paper's figure labels (`L2P`, `CC(50%)`, …) and
//! [`FromStr`] parses both those labels and the store's compact job
//! labels (`l2p`, `cc@50%`, …), so CLI arguments, report headers and
//! store audits all agree on one vocabulary.

use crate::{Cc, Dsr, DsrConfig, L2p, L2s, Snug, SnugConfig};
use sim_cache::CacheStats;
use sim_cmp::{ChipResources, L2Org, L2Outcome, SchemeEvent, SystemConfig};
use sim_mem::BlockAddr;
use std::fmt;
use std::str::FromStr;

/// Which organisation to build, with its policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeSpec {
    /// Private baseline.
    L2p,
    /// Shared, address-interleaved.
    L2s,
    /// Cooperative Caching with a spill probability in [0, 1].
    Cc {
        /// Probability of spilling a clean owned victim.
        spill_probability: f64,
    },
    /// Dynamic Spill-Receive.
    Dsr(DsrConfig),
    /// Set-level Non-Uniformity identifier and Grouper.
    Snug(SnugConfig),
}

/// The display name used in the paper's figures, e.g. `CC(50%)`.
impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeSpec::L2p => write!(f, "L2P"),
            SchemeSpec::L2s => write!(f, "L2S"),
            SchemeSpec::Cc { spill_probability } => {
                write!(f, "CC({:.0}%)", spill_probability * 100.0)
            }
            SchemeSpec::Dsr(_) => write!(f, "DSR"),
            SchemeSpec::Snug(_) => write!(f, "SNUG"),
        }
    }
}

/// Parse a scheme name: the figure labels (`L2P`, `CC(50%)`) and the
/// store job labels (`l2p`, `cc@50%`) both round-trip, case-insensitive.
/// DSR and SNUG parse to their paper parameters (a parsed spec names the
/// *scheme*; run configurations supply tuned parameters separately).
impl FromStr for SchemeSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "l2p" => return Ok(SchemeSpec::L2p),
            "l2s" => return Ok(SchemeSpec::L2s),
            "dsr" => return Ok(SchemeSpec::Dsr(DsrConfig::paper())),
            "snug" => return Ok(SchemeSpec::Snug(SnugConfig::paper())),
            _ => {}
        }
        // `cc@50%` (store label) or `cc(50%)` (figure label).
        let percent = lower
            .strip_prefix("cc@")
            .or_else(|| lower.strip_prefix("cc(").and_then(|r| r.strip_suffix(')')));
        if let Some(percent) = percent {
            let digits = percent.strip_suffix('%').unwrap_or(percent);
            let value: f64 = digits
                .parse()
                .map_err(|_| format!("bad CC spill probability `{digits}` in `{s}`"))?;
            if !(0.0..=100.0).contains(&value) {
                return Err(format!("CC spill probability `{digits}%` outside 0–100%"));
            }
            return Ok(SchemeSpec::Cc {
                spill_probability: value / 100.0,
            });
        }
        Err(format!(
            "unknown scheme `{s}` (expected L2P, L2S, CC(<p>%), cc@<p>%, DSR or SNUG)"
        ))
    }
}

impl SchemeSpec {
    /// Construct the organisation.
    pub fn build(&self, cfg: SystemConfig) -> Box<dyn L2Org> {
        match *self {
            SchemeSpec::L2p => Box::new(L2p::new(cfg)),
            SchemeSpec::L2s => Box::new(L2s::new(cfg)),
            SchemeSpec::Cc { spill_probability } => Box::new(Cc::new(cfg, spill_probability)),
            SchemeSpec::Dsr(d) => Box::new(Dsr::new(cfg, d)),
            SchemeSpec::Snug(s) => Box::new(Snug::new(cfg, s)),
        }
    }

    /// Construct the organisation without type erasure: the returned
    /// [`AnyOrg`] dispatches by `match` instead of vtable, which lets
    /// the compiler inline the per-access scheme code into the session
    /// hot loop. Prefer this for simulation sessions; `build` remains
    /// for contexts that need an open-ended `dyn` object.
    pub fn build_any(&self, cfg: SystemConfig) -> AnyOrg {
        match *self {
            SchemeSpec::L2p => AnyOrg::L2p(L2p::new(cfg)),
            SchemeSpec::L2s => AnyOrg::L2s(L2s::new(cfg)),
            SchemeSpec::Cc { spill_probability } => AnyOrg::Cc(Cc::new(cfg, spill_probability)),
            SchemeSpec::Dsr(d) => AnyOrg::Dsr(Dsr::new(cfg, d)),
            SchemeSpec::Snug(s) => AnyOrg::Snug(Snug::new(cfg, s)),
        }
    }

    /// The spill probabilities the paper sweeps for CC(Best) (§4.1).
    pub const CC_SPILL_SWEEP: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
}

/// The five paper schemes behind one concrete, `match`-dispatched type.
///
/// [`SchemeSpec::build`] erases the scheme behind `Box<dyn L2Org>`,
/// which costs an indirect call per L1 miss on the session hot path —
/// measurable once everything around it is lean. `AnyOrg` is the closed
/// enum over the same five organisations: dispatch compiles to a jump
/// table and each scheme's access path can inline. The `dyn` route
/// stays available for downstream extension; everything first-party
/// runs on this enum.
#[derive(Clone)]
pub enum AnyOrg {
    /// Private baseline.
    L2p(L2p),
    /// Shared, address-interleaved.
    L2s(L2s),
    /// Cooperative Caching.
    Cc(Cc),
    /// Dynamic Spill-Receive.
    Dsr(Dsr),
    /// Set-level Non-Uniformity identifier and Grouper.
    Snug(Snug),
}

impl AnyOrg {
    /// The inner [`Cc`], if this is the CC scheme (the shared-warm-up
    /// sweep retunes its spill probability in place).
    pub fn as_cc_mut(&mut self) -> Option<&mut Cc> {
        match self {
            AnyOrg::Cc(cc) => Some(cc),
            _ => None,
        }
    }
}

impl L2Org for AnyOrg {
    fn access(
        &mut self,
        core: usize,
        block: BlockAddr,
        is_write: bool,
        now: u64,
        res: &mut ChipResources<'_>,
    ) -> L2Outcome {
        match self {
            AnyOrg::L2p(o) => o.access(core, block, is_write, now, res),
            AnyOrg::L2s(o) => o.access(core, block, is_write, now, res),
            AnyOrg::Cc(o) => o.access(core, block, is_write, now, res),
            AnyOrg::Dsr(o) => o.access(core, block, is_write, now, res),
            AnyOrg::Snug(o) => o.access(core, block, is_write, now, res),
        }
    }

    fn writeback(&mut self, core: usize, block: BlockAddr, now: u64, res: &mut ChipResources<'_>) {
        match self {
            AnyOrg::L2p(o) => o.writeback(core, block, now, res),
            AnyOrg::L2s(o) => o.writeback(core, block, now, res),
            AnyOrg::Cc(o) => o.writeback(core, block, now, res),
            AnyOrg::Dsr(o) => o.writeback(core, block, now, res),
            AnyOrg::Snug(o) => o.writeback(core, block, now, res),
        }
    }

    fn slice_stats(&self, core: usize) -> &CacheStats {
        match self {
            AnyOrg::L2p(o) => o.slice_stats(core),
            AnyOrg::L2s(o) => o.slice_stats(core),
            AnyOrg::Cc(o) => o.slice_stats(core),
            AnyOrg::Dsr(o) => o.slice_stats(core),
            AnyOrg::Snug(o) => o.slice_stats(core),
        }
    }

    fn num_cores(&self) -> usize {
        match self {
            AnyOrg::L2p(o) => o.num_cores(),
            AnyOrg::L2s(o) => o.num_cores(),
            AnyOrg::Cc(o) => o.num_cores(),
            AnyOrg::Dsr(o) => o.num_cores(),
            AnyOrg::Snug(o) => o.num_cores(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyOrg::L2p(o) => o.name(),
            AnyOrg::L2s(o) => o.name(),
            AnyOrg::Cc(o) => o.name(),
            AnyOrg::Dsr(o) => o.name(),
            AnyOrg::Snug(o) => o.name(),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            AnyOrg::L2p(o) => o.reset_stats(),
            AnyOrg::L2s(o) => o.reset_stats(),
            AnyOrg::Cc(o) => o.reset_stats(),
            AnyOrg::Dsr(o) => o.reset_stats(),
            AnyOrg::Snug(o) => o.reset_stats(),
        }
    }

    fn clone_dyn(&self) -> Box<dyn L2Org> {
        match self {
            AnyOrg::L2p(o) => o.clone_dyn(),
            AnyOrg::L2s(o) => o.clone_dyn(),
            AnyOrg::Cc(o) => o.clone_dyn(),
            AnyOrg::Dsr(o) => o.clone_dyn(),
            AnyOrg::Snug(o) => o.clone_dyn(),
        }
    }

    fn drain_events(&mut self) -> Vec<SchemeEvent> {
        match self {
            AnyOrg::L2p(o) => o.drain_events(),
            AnyOrg::L2s(o) => o.drain_events(),
            AnyOrg::Cc(o) => o.drain_events(),
            AnyOrg::Dsr(o) => o.drain_events(),
            AnyOrg::Snug(o) => o.drain_events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(SchemeSpec::L2p.to_string(), "L2P");
        assert_eq!(SchemeSpec::L2s.to_string(), "L2S");
        assert_eq!(
            SchemeSpec::Cc {
                spill_probability: 0.5
            }
            .to_string(),
            "CC(50%)"
        );
        assert_eq!(SchemeSpec::Dsr(DsrConfig::paper()).to_string(), "DSR");
        assert_eq!(SchemeSpec::Snug(SnugConfig::paper()).to_string(), "SNUG");
    }

    #[test]
    fn parse_accepts_figure_and_store_labels() {
        for (text, expected) in [
            ("L2P", SchemeSpec::L2p),
            ("l2p", SchemeSpec::L2p),
            ("L2S", SchemeSpec::L2s),
            ("DSR", SchemeSpec::Dsr(DsrConfig::paper())),
            ("snug", SchemeSpec::Snug(SnugConfig::paper())),
            (
                "CC(50%)",
                SchemeSpec::Cc {
                    spill_probability: 0.5,
                },
            ),
            (
                "cc@25%",
                SchemeSpec::Cc {
                    spill_probability: 0.25,
                },
            ),
            (
                "cc@100",
                SchemeSpec::Cc {
                    spill_probability: 1.0,
                },
            ),
        ] {
            assert_eq!(text.parse::<SchemeSpec>().unwrap(), expected, "{text}");
        }
    }

    #[test]
    fn parse_round_trips_display() {
        for spec in [
            SchemeSpec::L2p,
            SchemeSpec::L2s,
            SchemeSpec::Cc {
                spill_probability: 0.75,
            },
            SchemeSpec::Dsr(DsrConfig::paper()),
            SchemeSpec::Snug(SnugConfig::paper()),
        ] {
            assert_eq!(spec.to_string().parse::<SchemeSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!("l3".parse::<SchemeSpec>().is_err());
        assert!("cc@".parse::<SchemeSpec>().is_err());
        assert!("cc@150%".parse::<SchemeSpec>().is_err());
        assert!("cc(half)".parse::<SchemeSpec>().is_err());
    }

    #[test]
    fn build_produces_working_orgs() {
        let cfg = SystemConfig::tiny_test();
        for spec in [
            SchemeSpec::L2p,
            SchemeSpec::L2s,
            SchemeSpec::Cc {
                spill_probability: 1.0,
            },
            SchemeSpec::Dsr(DsrConfig::tiny()),
            SchemeSpec::Snug(SnugConfig::scaled(1000)),
        ] {
            let org = spec.build(cfg);
            assert_eq!(org.num_cores(), 4);
        }
    }

    #[test]
    fn sweep_covers_paper_probabilities() {
        assert_eq!(SchemeSpec::CC_SPILL_SWEEP.len(), 5);
        assert_eq!(SchemeSpec::CC_SPILL_SWEEP[0], 0.0);
        assert_eq!(SchemeSpec::CC_SPILL_SWEEP[4], 1.0);
    }
}
