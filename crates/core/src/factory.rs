//! Scheme specification and construction — the five L2 organisations of
//! the paper's §4.1 behind one factory.
//!
//! [`SchemeSpec`] is the single parse/print path for scheme names:
//! `Display` renders the paper's figure labels (`L2P`, `CC(50%)`, …) and
//! [`FromStr`] parses both those labels and the store's compact job
//! labels (`l2p`, `cc@50%`, …), so CLI arguments, report headers and
//! store audits all agree on one vocabulary.

use crate::{Cc, Dsr, DsrConfig, L2p, L2s, Snug, SnugConfig};
use sim_cmp::{L2Org, SystemConfig};
use std::fmt;
use std::str::FromStr;

/// Which organisation to build, with its policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeSpec {
    /// Private baseline.
    L2p,
    /// Shared, address-interleaved.
    L2s,
    /// Cooperative Caching with a spill probability in [0, 1].
    Cc {
        /// Probability of spilling a clean owned victim.
        spill_probability: f64,
    },
    /// Dynamic Spill-Receive.
    Dsr(DsrConfig),
    /// Set-level Non-Uniformity identifier and Grouper.
    Snug(SnugConfig),
}

/// The display name used in the paper's figures, e.g. `CC(50%)`.
impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeSpec::L2p => write!(f, "L2P"),
            SchemeSpec::L2s => write!(f, "L2S"),
            SchemeSpec::Cc { spill_probability } => {
                write!(f, "CC({:.0}%)", spill_probability * 100.0)
            }
            SchemeSpec::Dsr(_) => write!(f, "DSR"),
            SchemeSpec::Snug(_) => write!(f, "SNUG"),
        }
    }
}

/// Parse a scheme name: the figure labels (`L2P`, `CC(50%)`) and the
/// store job labels (`l2p`, `cc@50%`) both round-trip, case-insensitive.
/// DSR and SNUG parse to their paper parameters (a parsed spec names the
/// *scheme*; run configurations supply tuned parameters separately).
impl FromStr for SchemeSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "l2p" => return Ok(SchemeSpec::L2p),
            "l2s" => return Ok(SchemeSpec::L2s),
            "dsr" => return Ok(SchemeSpec::Dsr(DsrConfig::paper())),
            "snug" => return Ok(SchemeSpec::Snug(SnugConfig::paper())),
            _ => {}
        }
        // `cc@50%` (store label) or `cc(50%)` (figure label).
        let percent = lower
            .strip_prefix("cc@")
            .or_else(|| lower.strip_prefix("cc(").and_then(|r| r.strip_suffix(')')));
        if let Some(percent) = percent {
            let digits = percent.strip_suffix('%').unwrap_or(percent);
            let value: f64 = digits
                .parse()
                .map_err(|_| format!("bad CC spill probability `{digits}` in `{s}`"))?;
            if !(0.0..=100.0).contains(&value) {
                return Err(format!("CC spill probability `{digits}%` outside 0–100%"));
            }
            return Ok(SchemeSpec::Cc {
                spill_probability: value / 100.0,
            });
        }
        Err(format!(
            "unknown scheme `{s}` (expected L2P, L2S, CC(<p>%), cc@<p>%, DSR or SNUG)"
        ))
    }
}

impl SchemeSpec {
    /// Construct the organisation.
    pub fn build(&self, cfg: SystemConfig) -> Box<dyn L2Org> {
        match *self {
            SchemeSpec::L2p => Box::new(L2p::new(cfg)),
            SchemeSpec::L2s => Box::new(L2s::new(cfg)),
            SchemeSpec::Cc { spill_probability } => Box::new(Cc::new(cfg, spill_probability)),
            SchemeSpec::Dsr(d) => Box::new(Dsr::new(cfg, d)),
            SchemeSpec::Snug(s) => Box::new(Snug::new(cfg, s)),
        }
    }

    /// The spill probabilities the paper sweeps for CC(Best) (§4.1).
    pub const CC_SPILL_SWEEP: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(SchemeSpec::L2p.to_string(), "L2P");
        assert_eq!(SchemeSpec::L2s.to_string(), "L2S");
        assert_eq!(
            SchemeSpec::Cc {
                spill_probability: 0.5
            }
            .to_string(),
            "CC(50%)"
        );
        assert_eq!(SchemeSpec::Dsr(DsrConfig::paper()).to_string(), "DSR");
        assert_eq!(SchemeSpec::Snug(SnugConfig::paper()).to_string(), "SNUG");
    }

    #[test]
    fn parse_accepts_figure_and_store_labels() {
        for (text, expected) in [
            ("L2P", SchemeSpec::L2p),
            ("l2p", SchemeSpec::L2p),
            ("L2S", SchemeSpec::L2s),
            ("DSR", SchemeSpec::Dsr(DsrConfig::paper())),
            ("snug", SchemeSpec::Snug(SnugConfig::paper())),
            (
                "CC(50%)",
                SchemeSpec::Cc {
                    spill_probability: 0.5,
                },
            ),
            (
                "cc@25%",
                SchemeSpec::Cc {
                    spill_probability: 0.25,
                },
            ),
            (
                "cc@100",
                SchemeSpec::Cc {
                    spill_probability: 1.0,
                },
            ),
        ] {
            assert_eq!(text.parse::<SchemeSpec>().unwrap(), expected, "{text}");
        }
    }

    #[test]
    fn parse_round_trips_display() {
        for spec in [
            SchemeSpec::L2p,
            SchemeSpec::L2s,
            SchemeSpec::Cc {
                spill_probability: 0.75,
            },
            SchemeSpec::Dsr(DsrConfig::paper()),
            SchemeSpec::Snug(SnugConfig::paper()),
        ] {
            assert_eq!(spec.to_string().parse::<SchemeSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!("l3".parse::<SchemeSpec>().is_err());
        assert!("cc@".parse::<SchemeSpec>().is_err());
        assert!("cc@150%".parse::<SchemeSpec>().is_err());
        assert!("cc(half)".parse::<SchemeSpec>().is_err());
    }

    #[test]
    fn build_produces_working_orgs() {
        let cfg = SystemConfig::tiny_test();
        for spec in [
            SchemeSpec::L2p,
            SchemeSpec::L2s,
            SchemeSpec::Cc {
                spill_probability: 1.0,
            },
            SchemeSpec::Dsr(DsrConfig::tiny()),
            SchemeSpec::Snug(SnugConfig::scaled(1000)),
        ] {
            let org = spec.build(cfg);
            assert_eq!(org.num_cores(), 4);
        }
    }

    #[test]
    fn sweep_covers_paper_probabilities() {
        assert_eq!(SchemeSpec::CC_SPILL_SWEEP.len(), 5);
        assert_eq!(SchemeSpec::CC_SPILL_SWEEP[0], 0.0);
        assert_eq!(SchemeSpec::CC_SPILL_SWEEP[4], 1.0);
    }
}
