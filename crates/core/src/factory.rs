//! Scheme specification and construction — the five L2 organisations of
//! the paper's §4.1 behind one factory.

use crate::{Cc, Dsr, DsrConfig, L2p, L2s, Snug, SnugConfig};
use sim_cmp::{L2Org, SystemConfig};

/// Which organisation to build, with its policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeSpec {
    /// Private baseline.
    L2p,
    /// Shared, address-interleaved.
    L2s,
    /// Cooperative Caching with a spill probability in [0, 1].
    Cc {
        /// Probability of spilling a clean owned victim.
        spill_probability: f64,
    },
    /// Dynamic Spill-Receive.
    Dsr(DsrConfig),
    /// Set-level Non-Uniformity identifier and Grouper.
    Snug(SnugConfig),
}

impl SchemeSpec {
    /// The display name used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            SchemeSpec::L2p => "L2P".into(),
            SchemeSpec::L2s => "L2S".into(),
            SchemeSpec::Cc { spill_probability } => {
                format!("CC({:.0}%)", spill_probability * 100.0)
            }
            SchemeSpec::Dsr(_) => "DSR".into(),
            SchemeSpec::Snug(_) => "SNUG".into(),
        }
    }

    /// Construct the organisation.
    pub fn build(&self, cfg: SystemConfig) -> Box<dyn L2Org> {
        match *self {
            SchemeSpec::L2p => Box::new(L2p::new(cfg)),
            SchemeSpec::L2s => Box::new(L2s::new(cfg)),
            SchemeSpec::Cc { spill_probability } => Box::new(Cc::new(cfg, spill_probability)),
            SchemeSpec::Dsr(d) => Box::new(Dsr::new(cfg, d)),
            SchemeSpec::Snug(s) => Box::new(Snug::new(cfg, s)),
        }
    }

    /// The spill probabilities the paper sweeps for CC(Best) (§4.1).
    pub const CC_SPILL_SWEEP: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(SchemeSpec::L2p.name(), "L2P");
        assert_eq!(SchemeSpec::L2s.name(), "L2S");
        assert_eq!(
            SchemeSpec::Cc {
                spill_probability: 0.5
            }
            .name(),
            "CC(50%)"
        );
        assert_eq!(SchemeSpec::Dsr(DsrConfig::paper()).name(), "DSR");
        assert_eq!(SchemeSpec::Snug(SnugConfig::paper()).name(), "SNUG");
    }

    #[test]
    fn build_produces_working_orgs() {
        let cfg = SystemConfig::tiny_test();
        for spec in [
            SchemeSpec::L2p,
            SchemeSpec::L2s,
            SchemeSpec::Cc {
                spill_probability: 1.0,
            },
            SchemeSpec::Dsr(DsrConfig::tiny()),
            SchemeSpec::Snug(SnugConfig::scaled(1000)),
        ] {
            let org = spec.build(cfg);
            assert_eq!(org.num_cores(), 4);
        }
    }

    #[test]
    fn sweep_covers_paper_probabilities() {
        assert_eq!(SchemeSpec::CC_SPILL_SWEEP.len(), 5);
        assert_eq!(SchemeSpec::CC_SPILL_SWEEP[0], 0.0);
        assert_eq!(SchemeSpec::CC_SPILL_SWEEP[4], 1.0);
    }
}
