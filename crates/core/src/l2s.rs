//! L2S — the shared L2 organisation (address-interleaved banks).
//!
//! The whole 4 MB L2 is one shared cache, banked by low block-address
//! bits. Capacity sharing is implicit, but a request whose bank is not
//! the requester's local slice pays the NUCA remote latency plus
//! interconnect occupancy (paper §1, §4.1).
//!
//! Interconnect: a shared-L2 NUCA design uses a switched fabric with a
//! port per bank, not the coherence snoop bus (which L2S does not need —
//! there is a single copy of every line). We model one link per bank
//! with a per-transfer occupancy; contention arises only among requests
//! to the *same* bank.

use sim_cache::{CacheStats, LineFlags, SetAssocCache, WriteBuffer};
use sim_cmp::{ChipResources, L2Fill, L2Org, L2Outcome, SystemConfig};
use sim_mem::BlockAddr;

/// The shared-L2 organisation.
#[derive(Clone)]
pub struct L2s {
    cfg: SystemConfig,
    banks: Vec<SetAssocCache>,
    wbs: Vec<WriteBuffer>,
    /// Demand-access stats attributed to the requesting core.
    core_stats: Vec<CacheStats>,
    bank_bits: u32,
    /// Per-bank link availability horizon (crossbar port).
    link_free: Vec<u64>,
}

/// Cycles one block transfer occupies a bank port (the fabric is wider
/// and more parallel than the 16 B snoop bus).
const LINK_OCCUPANCY: u64 = 4;

impl L2s {
    /// Build the shared organisation: one bank per core, each with the
    /// private-slice geometry (same total capacity as L2P).
    pub fn new(cfg: SystemConfig) -> Self {
        let n = cfg.num_cores;
        assert!(
            n.is_power_of_two(),
            "bank interleaving requires a power-of-two bank count"
        );
        L2s {
            banks: (0..n).map(|_| SetAssocCache::new(cfg.l2_slice)).collect(),
            wbs: (0..n)
                .map(|_| WriteBuffer::new(cfg.write_buffer_entries))
                .collect(),
            core_stats: vec![CacheStats::default(); n],
            bank_bits: n.trailing_zeros(),
            link_free: vec![0; n],
            cfg,
        }
    }

    /// Acquire `bank`'s link at `now`: returns the queuing delay.
    fn link_delay(&mut self, bank: usize, now: u64) -> u64 {
        let start = now.max(self.link_free[bank]);
        self.link_free[bank] = start + LINK_OCCUPANCY;
        start - now
    }

    /// The bank a block maps to (low block-address bits).
    #[inline]
    pub fn bank_of(&self, block: BlockAddr) -> usize {
        (block.0 & ((1 << self.bank_bits) - 1)) as usize
    }

    /// The set within the bank (bits above the bank-select bits).
    #[inline]
    pub fn set_of(&self, block: BlockAddr) -> usize {
        ((block.0 >> self.bank_bits) & (self.cfg.l2_slice.num_sets - 1)) as usize
    }

    fn drain_write_buffers(&mut self, now: u64, res: &mut ChipResources<'_>) {
        let n = self.banks.len();
        let mut progressed = true;
        while progressed && res.dram.next_free() <= now {
            progressed = false;
            for b in 0..n {
                if res.dram.next_free() > now {
                    break;
                }
                if self.wbs[b].drain_one().is_some() {
                    res.dram.write(now);
                    progressed = true;
                }
            }
        }
    }

    /// Latency to reach `bank` from `core` with data transfer: local
    /// banks cost the local L2 latency, remote banks the NUCA remote
    /// latency plus any queuing on the bank's link.
    fn bank_latency(&mut self, core: usize, bank: usize, now: u64) -> u64 {
        if core == bank {
            self.cfg.l2_local_latency
        } else {
            let queue = self.link_delay(bank, now);
            self.cfg.l2_remote_latency + queue
        }
    }
}

impl L2Org for L2s {
    fn access(
        &mut self,
        core: usize,
        block: BlockAddr,
        is_write: bool,
        now: u64,
        res: &mut ChipResources<'_>,
    ) -> L2Outcome {
        self.drain_write_buffers(now, res);
        let bank = self.bank_of(block);
        let set = self.set_of(block);
        if self.banks[bank]
            .touch_in_set(set, block, is_write)
            .is_some()
        {
            self.core_stats[core].hits += 1;
            let latency = self.bank_latency(core, bank, now);
            let fill = if core == bank {
                L2Fill::LocalHit
            } else {
                L2Fill::RemoteHit
            };
            return L2Outcome { latency, fill };
        }
        self.core_stats[core].misses += 1;
        if self.wbs[bank].direct_read(block) {
            self.wbs[bank].remove(block);
            self.core_stats[core].write_buffer_hits += 1;
            let ev = self.banks[bank].fill_in_set(set, block, LineFlags::owned(true));
            if let Some(ev) = ev {
                if ev.flags.dirty {
                    self.wbs[bank].push(ev.block);
                }
            }
            let latency = self.bank_latency(core, bank, now);
            return L2Outcome {
                latency,
                fill: L2Fill::WriteBufferHit,
            };
        }
        // Miss: fetch from DRAM; data returns to the bank then crosses to
        // the core if remote.
        let reach = if core == bank {
            0
        } else {
            self.link_delay(bank, now) + LINK_OCCUPANCY
        };
        let done = res.dram.read(now + reach);
        let latency = (done - now)
            + if core == bank {
                0
            } else {
                self.link_delay(bank, done) + LINK_OCCUPANCY
            };
        let ev = self.banks[bank].fill_in_set(set, block, LineFlags::owned(is_write));
        if let Some(ev) = ev {
            if ev.flags.dirty {
                self.core_stats[core].writebacks += 1;
                if self.wbs[bank].push(ev.block) == sim_cache::PushOutcome::Full {
                    self.wbs[bank].drain_one();
                    res.dram.write(now);
                    let _ = self.wbs[bank].push(ev.block);
                }
            }
        }
        L2Outcome {
            latency,
            fill: L2Fill::Dram,
        }
    }

    fn writeback(&mut self, core: usize, block: BlockAddr, now: u64, res: &mut ChipResources<'_>) {
        let bank = self.bank_of(block);
        let set = self.set_of(block);
        if core != bank {
            let _ = self.link_delay(bank, now);
        }
        if self.banks[bank].touch_in_set(set, block, true).is_none()
            && self.wbs[bank].push(block) == sim_cache::PushOutcome::Full
        {
            self.wbs[bank].drain_one();
            res.dram.write(now);
            let _ = self.wbs[bank].push(block);
        }
    }

    fn slice_stats(&self, core: usize) -> &CacheStats {
        &self.core_stats[core]
    }

    fn num_cores(&self) -> usize {
        self.banks.len()
    }

    fn name(&self) -> &'static str {
        "L2S"
    }

    fn clone_dyn(&self) -> Box<dyn L2Org> {
        Box::new(self.clone())
    }

    fn reset_stats(&mut self) {
        for s in &mut self.core_stats {
            s.reset();
        }
        for b in &mut self.banks {
            b.reset_stats();
        }
        for w in &mut self.wbs {
            w.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cmp::{Bus, BusConfig};
    use sim_mem::{Dram, DramConfig};

    fn mk() -> (L2s, Bus, Dram) {
        (
            L2s::new(SystemConfig::tiny_test()),
            Bus::new(BusConfig::paper()),
            Dram::new(DramConfig::uncontended(300)),
        )
    }

    #[test]
    fn blocks_interleave_across_banks() {
        let (org, _, _) = mk();
        assert_eq!(org.bank_of(BlockAddr(0)), 0);
        assert_eq!(org.bank_of(BlockAddr(1)), 1);
        assert_eq!(org.bank_of(BlockAddr(2)), 2);
        assert_eq!(org.bank_of(BlockAddr(3)), 3);
        assert_eq!(org.bank_of(BlockAddr(4)), 0);
        assert_eq!(org.set_of(BlockAddr(4)), 1);
    }

    #[test]
    fn capacity_shared_between_cores() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let b = BlockAddr(5);
        org.access(0, b, false, 0, &mut res);
        // Another core hits the same shared line.
        let r = org.access(2, b, false, 500, &mut res);
        assert!(matches!(r.fill, L2Fill::LocalHit | L2Fill::RemoteHit));
        assert_eq!(org.slice_stats(2).hits, 1);
    }

    #[test]
    fn local_bank_cheaper_than_remote() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let local = BlockAddr(0); // bank 0
        let remote = BlockAddr(1); // bank 1
        org.access(0, local, false, 0, &mut res);
        org.access(0, remote, false, 1000, &mut res);
        let l = org.access(0, local, false, 2000, &mut res);
        let r = org.access(0, remote, false, 3000, &mut res);
        assert_eq!(l.latency, 10);
        assert!(r.latency >= 30, "NUCA penalty, got {}", r.latency);
    }

    #[test]
    fn remote_miss_costs_more_than_local_miss() {
        let (mut org, mut bus, mut dram) = mk();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let l = org.access(0, BlockAddr(0), false, 0, &mut res);
        let r = org.access(0, BlockAddr(1), false, 5000, &mut res);
        assert!(r.latency > l.latency);
    }

    #[test]
    fn dirty_eviction_buffered_per_bank() {
        let cfg = SystemConfig::tiny_test(); // 16 sets/bank, 4 ways
        let mut org = L2s::new(cfg);
        let mut bus = Bus::new(BusConfig::paper());
        // Slow drain channel so the buffered victim persists.
        let mut dram = Dram::new(DramConfig {
            latency: 300,
            service_interval: 1_000_000,
        });
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        // 5 blocks in bank 0, set 0: block = tag << (4 bank-ish bits)...
        // set_of = (block >> 2) & 15 → block = tag << 6 keeps set 0, bank 0.
        let mut t = 0;
        for tag in 0..5u64 {
            org.access(0, BlockAddr(tag << 6), true, t, &mut res);
            t += 500;
        }
        // First block's dirty eviction is in the bank write buffer; a
        // re-read is a write-buffer hit.
        let r = org.access(0, BlockAddr(0), false, t, &mut res);
        assert_eq!(r.fill, L2Fill::WriteBufferHit);
    }
}
