//! L2P — the private-L2 baseline (no capacity sharing).
//!
//! Each core owns a 1 MB slice; misses go straight to DRAM. All three
//! evaluation figures are normalised to this organisation.

use crate::chassis::PrivateChassis;
use sim_cache::CacheStats;
use sim_cmp::{ChipResources, L2Fill, L2Org, L2Outcome, SystemConfig};
use sim_mem::BlockAddr;

/// The private baseline.
#[derive(Clone)]
pub struct L2p {
    chassis: PrivateChassis,
}

impl L2p {
    /// Build the baseline for `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        L2p {
            chassis: PrivateChassis::new(cfg),
        }
    }

    /// Access to the underlying chassis (tests/diagnostics).
    pub fn chassis(&self) -> &PrivateChassis {
        &self.chassis
    }
}

impl L2Org for L2p {
    fn access(
        &mut self,
        core: usize,
        block: BlockAddr,
        is_write: bool,
        now: u64,
        res: &mut ChipResources<'_>,
    ) -> L2Outcome {
        let ch = &mut self.chassis;
        ch.drain_write_buffers(now, res);
        if ch.local_access(core, block, is_write).is_some() {
            return L2Outcome {
                latency: ch.cfg.l2_local_latency,
                fill: L2Fill::LocalHit,
            };
        }
        ch.slices[core].stats_mut().misses += 1;
        if let Some(ev) = ch.write_buffer_read(core, block, is_write) {
            if let Some(ev) = ev {
                ch.retire_victim(core, ev, now, res);
            }
            return L2Outcome {
                latency: ch.cfg.l2_local_latency,
                fill: L2Fill::WriteBufferHit,
            };
        }
        // Private baseline: no snoop broadcast; straight to DRAM.
        let done = res.dram.read(now);
        let latency = done - now;
        if let Some(ev) = ch.fill_local(core, block, is_write) {
            ch.retire_victim(core, ev, now, res);
        }
        L2Outcome {
            latency,
            fill: L2Fill::Dram,
        }
    }

    fn writeback(&mut self, core: usize, block: BlockAddr, now: u64, res: &mut ChipResources<'_>) {
        self.chassis.l1_writeback(core, block, now, res);
    }

    fn slice_stats(&self, core: usize) -> &CacheStats {
        self.chassis.slices[core].stats()
    }

    fn num_cores(&self) -> usize {
        self.chassis.num_cores()
    }

    fn name(&self) -> &'static str {
        "L2P"
    }

    fn reset_stats(&mut self) {
        self.chassis.reset_stats();
    }

    fn clone_dyn(&self) -> Box<dyn L2Org> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cmp::{Bus, BusConfig};
    use sim_mem::{Dram, DramConfig};

    fn res_pair() -> (Bus, Dram) {
        (
            Bus::new(BusConfig::paper()),
            Dram::new(DramConfig::uncontended(300)),
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut org = L2p::new(SystemConfig::tiny_test());
        let (mut bus, mut dram) = res_pair();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let b = BlockAddr(0x123);
        let m = org.access(0, b, false, 0, &mut res);
        assert_eq!(m.fill, L2Fill::Dram);
        assert_eq!(m.latency, 300);
        let h = org.access(0, b, false, 400, &mut res);
        assert_eq!(h.fill, L2Fill::LocalHit);
        assert_eq!(h.latency, 10);
        assert_eq!(org.slice_stats(0).hits, 1);
        assert_eq!(org.slice_stats(0).misses, 1);
    }

    #[test]
    fn slices_are_isolated() {
        let mut org = L2p::new(SystemConfig::tiny_test());
        let (mut bus, mut dram) = res_pair();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let b = BlockAddr(0x42);
        org.access(0, b, false, 0, &mut res);
        // Same block from core 1 must miss: no sharing in L2P.
        let m = org.access(1, b, false, 500, &mut res);
        assert_eq!(m.fill, L2Fill::Dram);
    }

    #[test]
    fn dirty_eviction_feeds_write_buffer_then_direct_read() {
        let cfg = SystemConfig::tiny_test(); // 16 sets, 4 ways
        let mut org = L2p::new(cfg);
        // Slow drain channel so buffered victims persist long enough to
        // be read back.
        let mut bus = Bus::new(BusConfig::paper());
        let mut dram = Dram::new(DramConfig {
            latency: 300,
            service_interval: 1_000_000,
        });
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let set = 7u64;
        let mk = |t: u64| BlockAddr((t << 4) | set);
        // Fill set 7 with dirty lines, then overflow it.
        let mut t_now = 0;
        for t in 0..4 {
            org.access(0, mk(t), true, t_now, &mut res);
            t_now += 400;
        }
        org.access(0, mk(4), false, t_now, &mut res); // evicts dirty mk(0)
        t_now += 400;
        let r = org.access(0, mk(0), false, t_now, &mut res);
        assert_eq!(
            r.fill,
            L2Fill::WriteBufferHit,
            "victim served from write buffer"
        );
        assert_eq!(r.latency, 10);
    }

    #[test]
    fn never_spills() {
        let mut org = L2p::new(SystemConfig::tiny_test());
        let (mut bus, mut dram) = res_pair();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        for i in 0..200 {
            org.access(0, BlockAddr(i * 16), false, t, &mut res);
            t += 400;
        }
        assert_eq!(org.aggregate_stats().spills_out, 0);
        assert_eq!(org.aggregate_stats().spills_in, 0);
    }
}
