//! Shared machinery for the private-L2 organisations (L2P, CC, DSR,
//! SNUG): per-core slices, write-back buffers, latency composition and
//! victim handling.
//!
//! Latency model (uncontended values recover the paper's §4.1 numbers;
//! bus/DRAM queuing adds on top):
//!
//! * local hit — `l2_local_latency` (10 cycles);
//! * write-buffer direct read — local latency;
//! * peer hit — snoop address transaction → peer lookup → data
//!   transaction, floored at the configured flat remote latency
//!   (30 cycles; 40 for SNUG);
//! * off-chip — snoop address transaction → DRAM (300 cycles).

use sim_cache::{Evicted, LineFlags, PushOutcome, SetAssocCache, WriteBuffer};
use sim_cmp::{ChipResources, SystemConfig};
use sim_mem::BlockAddr;

/// Per-core private slices plus write buffers.
#[derive(Clone)]
pub struct PrivateChassis {
    /// The system configuration.
    pub cfg: SystemConfig,
    /// One L2 slice per core.
    pub slices: Vec<SetAssocCache>,
    /// One write-back buffer per core.
    pub wbs: Vec<WriteBuffer>,
}

/// Where a retrieval found the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerHit {
    /// Which peer cache held it.
    pub peer: usize,
    /// Which set of that cache (may be the flipped index).
    pub set: usize,
}

impl PrivateChassis {
    /// Build empty slices and buffers.
    pub fn new(cfg: SystemConfig) -> Self {
        PrivateChassis {
            slices: (0..cfg.num_cores)
                .map(|_| SetAssocCache::new(cfg.l2_slice))
                .collect(),
            wbs: (0..cfg.num_cores)
                .map(|_| WriteBuffer::new(cfg.write_buffer_entries))
                .collect(),
            cfg,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.slices.len()
    }

    /// Opportunistically drain write buffers while the DRAM channel is
    /// free in the past of `now`. Called at the top of every access.
    pub fn drain_write_buffers(&mut self, now: u64, res: &mut ChipResources<'_>) {
        // Common case: every buffer is empty — skip the DRAM-port query
        // and the round-robin scan entirely.
        if self.wbs.iter().all(|w| w.is_empty()) {
            return;
        }
        // Round-robin so no core's buffer starves.
        let n = self.num_cores();
        let mut progressed = true;
        while progressed && res.dram.next_free() <= now {
            progressed = false;
            for c in 0..n {
                if res.dram.next_free() > now {
                    break;
                }
                if let Some(_block) = self.wbs[c].drain_one() {
                    res.dram.write(now);
                    progressed = true;
                }
            }
        }
    }

    /// Push a dirty victim into core `c`'s write buffer, force-draining
    /// the oldest entry first if full.
    pub fn push_writeback(
        &mut self,
        c: usize,
        block: BlockAddr,
        now: u64,
        res: &mut ChipResources<'_>,
    ) {
        match self.wbs[c].push(block) {
            PushOutcome::Stored | PushOutcome::Merged => {}
            PushOutcome::Full => {
                if self.wbs[c].drain_one().is_some() {
                    res.dram.write(now);
                }
                let second = self.wbs[c].push(block);
                debug_assert!(!matches!(second, PushOutcome::Full));
            }
        }
    }

    /// Local-hit path: probe core `c`'s home set; on hit touch LRU and
    /// update the dirty bit. Returns whether the hit line was a CC line.
    pub fn local_access(&mut self, c: usize, block: BlockAddr, is_write: bool) -> Option<bool> {
        let slice = &mut self.slices[c];
        let set = slice.home_set(block);
        let way = slice.probe_in_set(set, block)?;
        let (_, was_cc) = slice.touch_way_in_set(set, way, is_write);
        let st = slice.stats_mut();
        st.hits += 1;
        if was_cc {
            st.cc_hits += 1;
        }
        Some(was_cc)
    }

    /// Direct read from core `c`'s write buffer: if the block is
    /// buffered, remove it and re-install it (dirty) into the home set.
    /// The displaced victim is returned for scheme-specific handling.
    pub fn write_buffer_read(
        &mut self,
        c: usize,
        block: BlockAddr,
        is_write: bool,
    ) -> Option<Option<Evicted>> {
        if !self.wbs[c].direct_read(block) {
            return None;
        }
        self.wbs[c].remove(block);
        self.slices[c].stats_mut().write_buffer_hits += 1;
        let set = self.slices[c].home_set(block);
        let _ = is_write; // the refill is dirty regardless: the buffered copy was dirty
        let ev = self.slices[c].fill_in_set(set, block, LineFlags::owned(true));
        Some(ev)
    }

    /// Fill `block` into core `c`'s home set as an owned line. Returns
    /// the displaced victim for scheme-specific handling.
    pub fn fill_local(&mut self, c: usize, block: BlockAddr, dirty: bool) -> Option<Evicted> {
        let set = self.slices[c].home_set(block);
        self.slices[c].fill_in_set(set, block, LineFlags::owned(dirty))
    }

    /// Dispose of a victim that will *not* be spilled: dirty owned lines
    /// go to the write buffer, everything else is dropped.
    pub fn retire_victim(&mut self, c: usize, ev: Evicted, now: u64, res: &mut ChipResources<'_>) {
        if ev.flags.dirty && !ev.flags.cc {
            self.push_writeback(c, ev.block, now, res);
        }
    }

    /// Latency of a peer hit: snoop address phase, peer array lookup,
    /// data transfer back — floored at `remote_flat`.
    pub fn peer_hit_latency(&self, now: u64, remote_flat: u64, res: &mut ChipResources<'_>) -> u64 {
        let addr = res.bus.address_transaction(now);
        let lookup_done = addr.done_at + self.cfg.l2_local_latency;
        let data = res
            .bus
            .data_transaction(lookup_done, self.cfg.l2_slice.block_bytes);
        (data.done_at - now).max(remote_flat)
    }

    /// Latency of an off-chip fill. The memory request launches in
    /// parallel with the snoop broadcast (standard speculative fetch);
    /// the fill completes when both the DRAM data and the snoop result
    /// are in.
    pub fn dram_fill_latency(&self, now: u64, res: &mut ChipResources<'_>) -> u64 {
        let addr = res.bus.address_transaction(now);
        let done = res.dram.read(now).max(addr.done_at);
        done - now
    }

    /// Charge the bus for a spill transfer (the core does not wait).
    pub fn charge_spill_transfer(&self, now: u64, res: &mut ChipResources<'_>) {
        let _ = res.bus.data_transaction(now, self.cfg.l2_slice.block_bytes);
    }

    /// Insert a spilled block into `peer`'s `set` as a received line.
    /// Handles the receiving set's victim: a dirty owned victim goes to
    /// the *peer's* write buffer; clean or CC victims are dropped
    /// (one-chance forwarding). Updates spill counters.
    #[allow(clippy::too_many_arguments)] // mirrors the bus transaction's fields
    pub fn receive_spill(
        &mut self,
        from: usize,
        peer: usize,
        set: usize,
        block: BlockAddr,
        flipped: bool,
        now: u64,
        res: &mut ChipResources<'_>,
    ) {
        debug_assert_ne!(from, peer);
        let ev = self.slices[peer].fill_in_set(set, block, LineFlags::received(flipped));
        self.slices[from].stats_mut().spills_out += 1;
        self.slices[peer].stats_mut().spills_in += 1;
        if let Some(ev) = ev {
            self.retire_victim(peer, ev, now, res);
        }
    }

    /// Probe one peer's set for a *cooperatively cached* copy of
    /// `block`. Owned lines never match: with multiprogrammed workloads
    /// a peer's own line is a different program's data, and retrieval
    /// semantics (forward + invalidate) only apply to CC lines.
    pub fn probe_cc_in_set(&self, peer: usize, set: usize, block: BlockAddr) -> bool {
        // A slice with no CC lines at all cannot answer a retrieval
        // snoop; skip the tag probe (the common case whenever spills are
        // rare — homogeneous workloads group poorly, and Stage I refuses
        // spills entirely).
        if self.slices[peer].cc_lines() == 0 {
            return false;
        }
        self.slices[peer]
            .probe_in_set(set, block)
            .map(|way| self.slices[peer].set(set).line(way).flags.cc)
            .unwrap_or(false)
    }

    /// Forward a block found at `hit` to its owner: invalidate the peer
    /// copy and bump counters. The caller fills the owner's slice.
    pub fn forward_from_peer(&mut self, owner: usize, hit: PeerHit, block: BlockAddr) {
        let removed = self.slices[hit.peer].invalidate_in_set(hit.set, block);
        debug_assert!(removed.is_some(), "forwarded block must be resident");
        debug_assert!(
            removed.map(|f| f.cc).unwrap_or(false),
            "forwarded line must be CC"
        );
        self.slices[hit.peer].stats_mut().forwards += 1;
        self.slices[owner].stats_mut().retrieved_from_peer += 1;
    }

    /// Invalidate any cooperatively cached copies of `block` held
    /// anywhere on behalf of `owner` (coherence sweep used on L1
    /// writebacks and on refetch-after-unreachable; the snoop broadcast
    /// sees matching tags even when the G/T vector forbids forwarding).
    pub fn invalidate_cc_copies(&mut self, owner: usize, block: BlockAddr) -> usize {
        self.invalidate_cc_copies_wide(owner, block, 1)
    }

    /// Like [`PrivateChassis::invalidate_cc_copies`], sweeping all
    /// `flip_width`-neighbourhood sets (for wide-flipping SNUG variants).
    pub fn invalidate_cc_copies_wide(
        &mut self,
        owner: usize,
        block: BlockAddr,
        flip_width: u32,
    ) -> usize {
        let mut removed = 0;
        let home = self.cfg.l2_slice.set_index(block);
        for peer in 0..self.num_cores() {
            if peer == owner || self.slices[peer].cc_lines() == 0 {
                continue;
            }
            for mask in 0..(1usize << flip_width) {
                let s = home ^ mask;
                if s >= self.cfg.l2_slice.num_sets as usize {
                    continue;
                }
                if let Some(way) = self.slices[peer].probe_in_set(s, block) {
                    if self.slices[peer].set(s).line(way).flags.cc {
                        self.slices[peer].set_mut(s).invalidate_way(way);
                        removed += 1;
                    }
                }
            }
        }
        removed
    }

    /// Handle an L1 dirty writeback: mark the local copy dirty if
    /// resident; otherwise invalidate any stale CC copies and buffer the
    /// data for DRAM.
    pub fn l1_writeback(
        &mut self,
        c: usize,
        block: BlockAddr,
        now: u64,
        res: &mut ChipResources<'_>,
    ) {
        let set = self.slices[c].home_set(block);
        if self.slices[c].touch_in_set(set, block, true).is_some() {
            return;
        }
        if self.invalidate_cc_copies(c, block) > 0 {
            let _ = res.bus.address_transaction(now);
        }
        self.push_writeback(c, block, now, res);
    }

    /// Reset all statistics (warm-up boundary).
    pub fn reset_stats(&mut self) {
        for s in &mut self.slices {
            s.reset_stats();
        }
        for w in &mut self.wbs {
            w.reset_stats();
        }
    }

    /// Check the chip-wide single-copy invariant for diagnostics/tests:
    /// no block address appears in more than one slice (own or CC copy).
    pub fn single_copy_invariant(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        for slice in &self.slices {
            for set in 0..slice.geometry().num_sets as usize {
                for line in slice.set(set).valid_lines() {
                    if !seen.insert(line.block) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cmp::{Bus, BusConfig};
    use sim_mem::{Dram, DramConfig};

    fn setup() -> (PrivateChassis, Bus, Dram) {
        let cfg = SystemConfig::tiny_test();
        (
            PrivateChassis::new(cfg),
            Bus::new(BusConfig::paper()),
            Dram::new(DramConfig::uncontended(300)),
        )
    }

    fn blk(set: u64, tag: u64) -> BlockAddr {
        BlockAddr((tag << 4) | set) // tiny_test L2 has 16 sets
    }

    #[test]
    fn local_access_hits_after_fill() {
        let (mut ch, _, _) = setup();
        let b = blk(3, 9);
        assert!(ch.local_access(0, b, false).is_none());
        ch.fill_local(0, b, false);
        assert_eq!(ch.local_access(0, b, false), Some(false));
        assert_eq!(ch.slices[0].stats().hits, 1);
    }

    #[test]
    fn write_buffer_direct_read_reinstalls_dirty() {
        let (mut ch, mut bus, mut dram) = setup();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let b = blk(1, 2);
        ch.push_writeback(0, b, 0, &mut res);
        let got = ch.write_buffer_read(0, b, false);
        assert!(got.is_some());
        let (s, w) = ch.slices[0].probe(b).expect("reinstalled");
        assert!(ch.slices[0].set(s).line(w).flags.dirty);
        assert_eq!(ch.wbs[0].len(), 0, "entry consumed");
    }

    #[test]
    fn peer_hit_latency_floored_at_flat_remote() {
        let (ch, mut bus, mut dram) = setup();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let lat = ch.peer_hit_latency(1000, 30, &mut res);
        assert!(lat >= 30, "flat floor, got {lat}");
        assert!(lat <= 60, "uncontended should be near the floor, got {lat}");
    }

    #[test]
    fn dram_fill_overlaps_snoop_with_memory() {
        let (ch, mut bus, mut dram) = setup();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let lat = ch.dram_fill_latency(0, &mut res);
        assert_eq!(lat, 300, "speculative fetch: snoop hidden under DRAM");
        assert_eq!(
            res.bus.stats().address_transactions,
            1,
            "snoop still issued"
        );
    }

    #[test]
    fn receive_spill_and_forward_round_trip() {
        let (mut ch, mut bus, mut dram) = setup();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let b = blk(5, 77);
        ch.receive_spill(0, 2, 5, b, false, 0, &mut res);
        assert_eq!(ch.slices[2].cc_lines(), 1);
        assert_eq!(ch.slices[0].stats().spills_out, 1);
        assert_eq!(ch.slices[2].stats().spills_in, 1);
        ch.forward_from_peer(0, PeerHit { peer: 2, set: 5 }, b);
        assert_eq!(ch.slices[2].cc_lines(), 0);
        assert_eq!(ch.slices[2].stats().forwards, 1);
        assert_eq!(ch.slices[0].stats().retrieved_from_peer, 1);
    }

    #[test]
    fn receive_spill_dirty_victim_goes_to_peer_wb() {
        let (mut ch, mut bus, mut dram) = setup();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        // Fill peer 1 set 5 with dirty owned lines.
        for t in 0..4 {
            let ev = ch.slices[1].fill_in_set(5, blk(5, t), LineFlags::owned(true));
            assert!(ev.is_none());
        }
        ch.receive_spill(0, 1, 5, blk(5, 100), false, 0, &mut res);
        assert_eq!(ch.wbs[1].len(), 1, "displaced dirty owned line buffered");
    }

    #[test]
    fn l1_writeback_marks_dirty_when_resident() {
        let (mut ch, mut bus, mut dram) = setup();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let b = blk(2, 3);
        ch.fill_local(0, b, false);
        ch.l1_writeback(0, b, 0, &mut res);
        let (s, w) = ch.slices[0].probe(b).unwrap();
        assert!(ch.slices[0].set(s).line(w).flags.dirty);
        assert_eq!(ch.wbs[0].len(), 0);
    }

    #[test]
    fn l1_writeback_invalidates_stale_cc_copy() {
        let (mut ch, mut bus, mut dram) = setup();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let b = blk(2, 3);
        // Peer 3 holds a stale CC copy at the flipped index.
        ch.slices[3].fill_in_set(3, b, LineFlags::received(true));
        ch.l1_writeback(0, b, 0, &mut res);
        assert_eq!(ch.slices[3].cc_lines(), 0, "stale copy invalidated");
        assert_eq!(ch.wbs[0].len(), 1, "data buffered for DRAM");
    }

    #[test]
    fn drain_empties_buffers_when_channel_free() {
        let (mut ch, mut bus, mut dram) = setup();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        ch.push_writeback(0, blk(0, 1), 0, &mut res);
        ch.push_writeback(1, blk(1, 1), 0, &mut res);
        ch.drain_write_buffers(10_000, &mut res);
        assert_eq!(ch.wbs[0].len() + ch.wbs[1].len(), 0);
        assert_eq!(res.dram.stats().writes, 2);
    }

    #[test]
    fn single_copy_invariant_detects_duplicates() {
        let (mut ch, _, _) = setup();
        let b = blk(1, 1);
        ch.fill_local(0, b, false);
        assert!(ch.single_copy_invariant());
        ch.slices[1].fill_in_set(1, b, LineFlags::received(false));
        assert!(!ch.single_copy_invariant());
    }
}
