//! # snug-core — SNUG and the compared L2 organisations
//!
//! The paper's primary contribution and every organisation it is
//! evaluated against (§4.1):
//!
//! * [`l2p`] — the private baseline all figures normalise to;
//! * [`l2s`] — the shared, address-interleaved organisation (NUCA);
//! * [`cc`] — Cooperative Caching (Chang & Sohi) with a spill
//!   probability; the CC(Best) sweep lives in `snug-experiments`;
//! * [`dsr`] — Dynamic Spill-Receive (Qureshi), application-level set
//!   dueling;
//! * [`snug`] — the paper's Set-level Non-Uniformity identifier and
//!   Grouper: per-set shadow monitors, G/T vectors, two-stage sampling
//!   periods and the index-bit flipping grouping scheme;
//! * [`gt`] — G/T vectors and the Fig. 8 grouping cases;
//! * [`chassis`] — shared private-slice machinery (write buffers,
//!   latency composition, victim handling, coherence sweeps);
//! * [`overhead`] — the §3.4 storage-overhead arithmetic (Tables 2–3);
//! * [`factory`] — one constructor for all five schemes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod chassis;
pub mod dsr;
pub mod factory;
pub mod gt;
pub mod l2p;
pub mod l2s;
pub mod overhead;
pub mod snug;

pub use cc::Cc;
pub use chassis::{PeerHit, PrivateChassis};
pub use dsr::{Dsr, DsrConfig, SetRole};
pub use factory::{AnyOrg, SchemeSpec};
pub use gt::{GroupCase, GtVector};
pub use l2p::L2p;
pub use l2s::L2s;
pub use overhead::{table3, OverheadParams};
pub use snug::{Snug, SnugConfig, SnugEvents, Stage};
