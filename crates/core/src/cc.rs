//! CC — Cooperative Caching (Chang & Sohi, ISCA'06), spill-probability
//! variant.
//!
//! Eviction-driven capacity sharing: whenever a clean owned line is
//! evicted, it is spilled with probability `p_spill` to a peer slice's
//! same-index set. The paper evaluates `p_spill ∈ {0, 25, 50, 75,
//! 100 %}` and reports the best as **CC(Best)** (§4.1); the sweep lives
//! in `snug-experiments`.
//!
//! Chang & Sohi's design recirculates a spilled block up to N times
//! (N-chance forwarding) before it leaves the chip; the SNUG paper's
//! baseline behaves as 1-chance. Both are supported via
//! [`Cc::with_chances`] — recirculation is tracked with a small per-line
//! hop budget held outside the cache arrays (hardware would reuse the
//! spilled block's message header).

use crate::chassis::{PeerHit, PrivateChassis};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_cache::{CacheStats, Evicted};
use sim_cmp::{ChipResources, L2Fill, L2Org, L2Outcome, SystemConfig};
use sim_mem::BlockAddr;

/// The CC organisation.
#[derive(Clone)]
pub struct Cc {
    chassis: PrivateChassis,
    /// Probability of spilling a clean owned victim.
    p_spill: f64,
    /// Round-robin receiver cursor (the "first responder" on a real bus
    /// is timing-dependent; round-robin is its deterministic stand-in).
    next_peer: usize,
    /// Maximum times one block may be re-spilled (N-chance forwarding).
    chances: u32,
    /// Remaining hop budget of blocks currently cooperatively cached
    /// (only tracked for blocks with more than zero hops left).
    /// BTreeMap: keyed access only today, but kernel state must stay
    /// iteration-order-safe if a future change walks it.
    hops_left: std::collections::BTreeMap<sim_mem::BlockAddr, u32>,
    rng: SmallRng,
}

impl Cc {
    /// Build CC with the given spill probability in [0, 1] and 1-chance
    /// forwarding (the SNUG paper's baseline).
    pub fn new(cfg: SystemConfig, p_spill: f64) -> Self {
        Self::with_chances(cfg, p_spill, 1)
    }

    /// Build CC with N-chance forwarding: a spilled block may be
    /// re-spilled on eviction until its hop budget is exhausted.
    pub fn with_chances(cfg: SystemConfig, p_spill: f64, chances: u32) -> Self {
        assert!((0.0..=1.0).contains(&p_spill));
        assert!(chances >= 1);
        Cc {
            chassis: PrivateChassis::new(cfg),
            p_spill,
            next_peer: 1,
            chances,
            hops_left: std::collections::BTreeMap::new(),
            rng: SmallRng::seed_from_u64(0xCC_5EED),
        }
    }

    /// The configured spill probability.
    pub fn spill_probability(&self) -> f64 {
        self.p_spill
    }

    /// Retune the spill probability mid-flight (used by the shared
    /// warm-up sweep mode: one warmed snapshot is measured once per §4.1
    /// sweep point). Cache contents, RNG and round-robin state are
    /// untouched.
    pub fn set_spill_probability(&mut self, p_spill: f64) {
        assert!((0.0..=1.0).contains(&p_spill));
        self.p_spill = p_spill;
    }

    /// Access to the underlying chassis (tests/diagnostics).
    pub fn chassis(&self) -> &PrivateChassis {
        &self.chassis
    }

    /// Probe all peers' same-index sets for `block`.
    fn probe_peers(&self, owner: usize, block: BlockAddr) -> Option<PeerHit> {
        let set = self.chassis.cfg.l2_slice.set_index(block);
        let n = self.chassis.num_cores();
        (0..n)
            .filter(|&j| j != owner)
            .find(|&j| self.chassis.probe_cc_in_set(j, set, block))
            .map(|peer| PeerHit { peer, set })
    }

    /// Handle a local victim: dirty → write buffer; clean owned →
    /// probabilistic spill to the next peer; evicted CC lines re-spill
    /// while their N-chance hop budget lasts, then drop.
    fn handle_victim(&mut self, core: usize, ev: Evicted, now: u64, res: &mut ChipResources<'_>) {
        if ev.flags.cc {
            // Re-spill while the block has hops left (N-chance).
            match self.hops_left.remove(&ev.block) {
                Some(hops) if hops > 0 => self.spill(core, ev.block, hops - 1, now, res),
                _ => {}
            }
            return;
        }
        if ev.flags.dirty {
            self.chassis.retire_victim(core, ev, now, res);
            return;
        }
        if self.p_spill > 0.0 && self.rng.gen::<f64>() < self.p_spill {
            self.spill(core, ev.block, self.chances - 1, now, res);
        }
    }

    /// Place `block` in the next receiving peer with `hops` re-spills
    /// remaining.
    fn spill(
        &mut self,
        from: usize,
        block: sim_mem::BlockAddr,
        hops: u32,
        now: u64,
        res: &mut ChipResources<'_>,
    ) {
        let n = self.chassis.num_cores();
        let peer = if self.next_peer == from {
            (self.next_peer + 1) % n
        } else {
            self.next_peer
        };
        self.next_peer = (peer + 1) % n;
        let set = self.chassis.cfg.l2_slice.set_index(block);
        self.chassis.charge_spill_transfer(now, res);
        self.chassis
            .receive_spill(from, peer, set, block, false, now, res);
        if hops > 0 {
            self.hops_left.insert(block, hops);
        }
    }
}

impl L2Org for Cc {
    fn access(
        &mut self,
        core: usize,
        block: BlockAddr,
        is_write: bool,
        now: u64,
        res: &mut ChipResources<'_>,
    ) -> L2Outcome {
        self.chassis.drain_write_buffers(now, res);
        if self.chassis.local_access(core, block, is_write).is_some() {
            return L2Outcome {
                latency: self.chassis.cfg.l2_local_latency,
                fill: L2Fill::LocalHit,
            };
        }
        self.chassis.slices[core].stats_mut().misses += 1;
        if let Some(ev) = self.chassis.write_buffer_read(core, block, is_write) {
            if let Some(ev) = ev {
                self.handle_victim(core, ev, now, res);
            }
            return L2Outcome {
                latency: self.chassis.cfg.l2_local_latency,
                fill: L2Fill::WriteBufferHit,
            };
        }
        if let Some(hit) = self.probe_peers(core, block) {
            let latency =
                self.chassis
                    .peer_hit_latency(now, self.chassis.cfg.l2_remote_latency, res);
            self.chassis.forward_from_peer(core, hit, block);
            self.hops_left.remove(&block);
            if let Some(ev) = self.chassis.fill_local(core, block, is_write) {
                self.handle_victim(core, ev, now, res);
            }
            return L2Outcome {
                latency,
                fill: L2Fill::RemoteHit,
            };
        }
        let latency = self.chassis.dram_fill_latency(now, res);
        if let Some(ev) = self.chassis.fill_local(core, block, is_write) {
            self.handle_victim(core, ev, now, res);
        }
        L2Outcome {
            latency,
            fill: L2Fill::Dram,
        }
    }

    fn writeback(&mut self, core: usize, block: BlockAddr, now: u64, res: &mut ChipResources<'_>) {
        self.chassis.l1_writeback(core, block, now, res);
    }

    fn slice_stats(&self, core: usize) -> &CacheStats {
        self.chassis.slices[core].stats()
    }

    fn num_cores(&self) -> usize {
        self.chassis.num_cores()
    }

    fn name(&self) -> &'static str {
        "CC"
    }

    fn reset_stats(&mut self) {
        self.chassis.reset_stats();
    }

    fn clone_dyn(&self) -> Box<dyn L2Org> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cmp::{Bus, BusConfig};
    use sim_mem::{Dram, DramConfig};

    fn res_pair() -> (Bus, Dram) {
        (
            Bus::new(BusConfig::paper()),
            Dram::new(DramConfig::uncontended(300)),
        )
    }

    /// Drive enough conflicting fills through core 0's set `set` to force
    /// clean evictions (tiny_test slice: 16 sets, 4 ways).
    fn thrash_set(org: &mut Cc, set: u64, tags: u64, t: &mut u64, res: &mut ChipResources<'_>) {
        for tag in 0..tags {
            org.access(0, BlockAddr((tag << 4) | set), false, *t, res);
            *t += 500;
        }
    }

    #[test]
    fn full_spill_retains_victims_on_chip() {
        let mut org = Cc::new(SystemConfig::tiny_test(), 1.0);
        let (mut bus, mut dram) = res_pair();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        thrash_set(&mut org, 3, 6, &mut t, &mut res); // 4-way: 2 clean spills
        assert_eq!(org.aggregate_stats().spills_out, 2);
        // The first victim (tag 0) should now be retrievable from a peer.
        let r = org.access(0, BlockAddr(3), false, t, &mut res);
        assert_eq!(r.fill, L2Fill::RemoteHit);
        assert_eq!(org.aggregate_stats().forwards, 1);
        assert!(org.chassis().single_copy_invariant());
    }

    #[test]
    fn zero_spill_is_private() {
        let mut org = Cc::new(SystemConfig::tiny_test(), 0.0);
        let (mut bus, mut dram) = res_pair();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        thrash_set(&mut org, 3, 12, &mut t, &mut res);
        assert_eq!(org.aggregate_stats().spills_out, 0);
        let r = org.access(0, BlockAddr(3), false, t, &mut res);
        assert_eq!(r.fill, L2Fill::Dram, "victim went off-chip");
    }

    #[test]
    fn forward_invalidates_peer_copy() {
        let mut org = Cc::new(SystemConfig::tiny_test(), 1.0);
        let (mut bus, mut dram) = res_pair();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        thrash_set(&mut org, 1, 5, &mut t, &mut res);
        let spilled = BlockAddr(1); // tag 0, set 1 — first victim
        let r = org.access(0, spilled, false, t, &mut res);
        assert_eq!(r.fill, L2Fill::RemoteHit);
        t += 500;
        // Immediately accessing again: the block is now local.
        let r2 = org.access(0, spilled, false, t, &mut res);
        assert_eq!(r2.fill, L2Fill::LocalHit);
        assert!(org.chassis().single_copy_invariant());
    }

    #[test]
    fn spilled_line_evicted_again_is_dropped() {
        let mut org = Cc::new(SystemConfig::tiny_test(), 1.0);
        let (mut bus, mut dram) = res_pair();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        // Spill tag0/set3 into a peer, then thrash that peer set with the
        // peer's own fills so the CC line is displaced.
        thrash_set(&mut org, 3, 5, &mut t, &mut res);
        let peers_with_cc: Vec<usize> = (0..4)
            .filter(|&j| org.chassis().slices[j].cc_lines() > 0)
            .collect();
        assert_eq!(peers_with_cc.len(), 1);
        let p = peers_with_cc[0];
        for tag in 100..105 {
            org.access(p, BlockAddr((tag << 4) | 3), false, t, &mut res);
            t += 500;
        }
        // CC copy displaced: block count on chip for tag0/set3 is zero.
        assert_eq!(org.chassis().slices[p].cc_lines(), 0);
        let r = org.access(0, BlockAddr(3), false, t, &mut res);
        assert_eq!(r.fill, L2Fill::Dram);
    }

    #[test]
    fn two_chance_respills_once_then_drops() {
        let mut org = Cc::with_chances(SystemConfig::tiny_test(), 1.0, 2);
        let (mut bus, mut dram) = res_pair();
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let mut t = 0;
        // Spill tag0/set3 into peer 1, then displace it from peer 1 with
        // the peer's own traffic: with 2-chance it must hop onward and
        // remain retrievable.
        thrash_set(&mut org, 3, 5, &mut t, &mut res);
        let holder = (0..4)
            .find(|&j| org.chassis().slices[j].cc_lines() > 0)
            .unwrap();
        for tag in 200..205u64 {
            org.access(holder, BlockAddr((tag << 4) | 3), false, t, &mut res);
            t += 500;
        }
        // The displaced CC block hopped to another cache.
        let still_cached: usize = (0..4).map(|j| org.chassis().slices[j].cc_lines()).sum();
        assert!(still_cached >= 1, "2-chance kept the victim on chip");
        let r = org.access(0, BlockAddr(3), false, t, &mut res);
        assert_eq!(
            r.fill,
            L2Fill::RemoteHit,
            "block survived its second chance"
        );
        assert!(org.chassis().single_copy_invariant());
    }

    #[test]
    fn one_chance_is_default() {
        let org = Cc::new(SystemConfig::tiny_test(), 1.0);
        assert_eq!(org.chances, 1);
    }

    #[test]
    fn spill_probability_scales_spill_count() {
        let (mut bus, mut dram) = res_pair();
        let mut counts = Vec::new();
        for &p in &[0.25, 0.75] {
            let mut org = Cc::new(SystemConfig::tiny_test(), p);
            let mut res = ChipResources {
                bus: &mut bus,
                dram: &mut dram,
            };
            let mut t = 0;
            for _round in 0..50u64 {
                thrash_set(&mut org, 2, 8, &mut t, &mut res);
            }
            counts.push(org.aggregate_stats().spills_out as f64);
        }
        assert!(counts[1] > counts[0] * 2.0, "spill counts {:?}", counts);
    }
}
