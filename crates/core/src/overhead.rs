//! Storage-overhead analysis — paper §3.4, Formula (6), Tables 2–3.
//!
//! `overhead = shadow_set_bits / (shadow_set_bits + l2_set_bits)`,
//! where a shadow entry holds {tag, valid, LRU} plus the per-set
//! saturating counter (k bits) and the modulo-p counter (log₂ p bits),
//! and an L2 line holds {tag, valid, dirty, CC, f, LRU, data} plus the
//! per-set G/T bit.

use serde::{Deserialize, Serialize};

/// Parameters of the overhead computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadParams {
    /// Usable physical address bits (paper Table 2: 32; Table 3 also
    /// evaluates 44 used bits of a 64-bit address).
    pub address_bits: u32,
    /// Cache capacity in bytes (1 MB).
    pub capacity_bytes: u64,
    /// Line size in bytes (64 or 128).
    pub block_bytes: u64,
    /// Associativity (16).
    pub assoc: u64,
    /// Saturating-counter width k (4).
    pub counter_bits: u32,
    /// Modulo-p counter width log₂ p (3 for p = 8).
    pub mod_p_bits: u32,
}

impl OverheadParams {
    /// Paper Table 2 baseline: 32-bit addresses, 1 MB, 64 B lines,
    /// 16-way, k = 4, p = 8.
    pub fn paper() -> Self {
        OverheadParams {
            address_bits: 32,
            capacity_bytes: 1 << 20,
            block_bytes: 64,
            assoc: 16,
            counter_bits: 4,
            mod_p_bits: 3,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.capacity_bytes / (self.block_bytes * self.assoc)
    }

    /// Architectural tag width.
    pub fn tag_bits(&self) -> u32 {
        let offset = self.block_bytes.trailing_zeros();
        let index = self.num_sets().trailing_zeros();
        self.address_bits - offset - index
    }

    /// LRU field width per line (paper Table 2: 4 bits for 16 ways).
    pub fn lru_bits(&self) -> u32 {
        (self.assoc as f64).log2().ceil() as u32
    }

    /// Bits in one shadow set: assoc × {tag, valid, LRU} + saturating
    /// counter + modulo-p counter.
    pub fn shadow_set_bits(&self) -> u64 {
        self.assoc * (self.tag_bits() as u64 + 1 + self.lru_bits() as u64)
            + self.counter_bits as u64
            + self.mod_p_bits as u64
    }

    /// Bits in one L2 set: assoc × {tag, v, d, CC, f, LRU, data} + the
    /// per-set G/T bit.
    pub fn l2_set_bits(&self) -> u64 {
        self.assoc * (self.tag_bits() as u64 + 4 + self.lru_bits() as u64 + self.block_bytes * 8)
            + 1
    }

    /// Formula (6): the SNUG storage overhead in [0, 1].
    pub fn storage_overhead(&self) -> f64 {
        let s = self.shadow_set_bits() as f64;
        let l = self.l2_set_bits() as f64;
        s / (s + l)
    }
}

/// Reproduce Table 3: overhead for {32-bit, 64-bit(44 used)} addresses ×
/// {64 B, 128 B} lines at fixed 1 MB capacity. Rows are
/// `(address_bits, block_bytes, overhead)`.
pub fn table3() -> Vec<(u32, u64, f64)> {
    let mut rows = Vec::new();
    for &block in &[64u64, 128] {
        for &addr in &[32u32, 44] {
            let p = OverheadParams {
                address_bits: addr,
                block_bytes: block,
                ..OverheadParams::paper()
            };
            rows.push((addr, block, p.storage_overhead()));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_fields_match_table2() {
        let p = OverheadParams::paper();
        assert_eq!(p.num_sets(), 1024);
        assert_eq!(p.tag_bits(), 16);
        assert_eq!(p.lru_bits(), 4);
    }

    #[test]
    fn baseline_overhead_is_3_9_percent() {
        let p = OverheadParams::paper();
        let o = p.storage_overhead() * 100.0;
        assert!(
            (o - 3.9).abs() < 0.15,
            "paper §3.4 reports 3.9 %, got {o:.2} %"
        );
    }

    #[test]
    fn table3_matches_paper() {
        // Paper Table 3: 64 B/32-bit → 3.9 %; 64 B/44-bit → 5.8 %;
        // 128 B/32-bit → 2.1 %; 128 B/44-bit → 3.1 %.
        let expect = [
            (32u32, 64u64, 3.9),
            (44, 64, 5.8),
            (32, 128, 2.1),
            (44, 128, 3.1),
        ];
        let rows = table3();
        for (addr, block, pct) in expect {
            let got = rows
                .iter()
                .find(|(a, b, _)| *a == addr && *b == block)
                .map(|(_, _, o)| o * 100.0)
                .expect("row present");
            assert!(
                (got - pct).abs() < 0.25,
                "addr {addr}, block {block}: paper {pct} %, got {got:.2} %"
            );
        }
    }

    #[test]
    fn longer_addresses_increase_overhead() {
        let p32 = OverheadParams::paper();
        let p44 = OverheadParams {
            address_bits: 44,
            ..p32
        };
        assert!(p44.storage_overhead() > p32.storage_overhead());
    }

    #[test]
    fn larger_blocks_decrease_overhead() {
        let p64 = OverheadParams::paper();
        let p128 = OverheadParams {
            block_bytes: 128,
            ..p64
        };
        assert!(p128.storage_overhead() < p64.storage_overhead());
    }
}
