//! Steppable simulation sessions.
//!
//! [`SimSession`] owns every piece of run state — cores, split L1 I/D
//! caches, snoop bus, DRAM, the L2 organisation and the per-core op
//! streams — and exposes the paper's fixed-window methodology as an
//! *incremental* API:
//!
//! * [`SimSession::step`] executes one operation on the core with the
//!   smallest local clock (globally time-ordered, exactly as the old
//!   one-shot driver did);
//! * [`SimSession::run_until`] advances the frontier to a cycle;
//! * [`SimSession::run_to_completion`] runs the whole warm-up + measure
//!   window — or, under a [`RunPlan`] with a convergence stop policy,
//!   until the policy ends the run early — and returns the
//!   [`SystemResult`];
//! * [`Probe`]s fire on a configurable cycle stride and receive
//!   [`PeriodSample`]s — per-core IPC, the L2 event mix and any
//!   scheme-side [`SchemeEvent`]s (SNUG stage/G-T transitions) for that
//!   interval;
//! * [`SimSession::snapshot`] / [`SessionSnapshot::to_session`] capture
//!   and replay the full deterministic state, so a post-warm-up snapshot
//!   can be measured under several policy variants without re-running
//!   the warm-up.
//!
//! Determinism contract: a session driven by any interleaving of
//! `step`/`run_until` calls — including one that snapshots, restores and
//! resumes — retires exactly the same operation sequence as a single
//! `run_to_completion`, because every step picks the globally minimal
//! core clock and phase transitions are functions of the frontier alone.
//! Stop policies keep the contract: they observe only at fixed
//! frontier-derived boundaries, their state is part of the snapshot,
//! and the early-exit decision latches after the exact same operation
//! in every interleaving. The property tests in
//! `tests/session_determinism.rs` pin this down for all five schemes,
//! fixed and converged plans alike.

use crate::config::SystemConfig;
use crate::core::CoreModel;
use crate::plan::{RunPlan, StopObservation, StopPolicy};
use crate::scheme::{ChipResources, CloneOrg, L2Org, SchemeEvent, SchemeEventKind};
use crate::system::{CoreResult, SystemResult};
use crate::Bus;
use sim_cache::{CacheStats, SetAssocCache};
use sim_mem::{AccessKind, Dram, OpStream, StreamShift};
use snug_metrics::{PhasePlateau, SimCounters, WALK_DEPTH_BUCKETS};

/// One probe-stride sample of the running system — the row type of the
/// time series `snug trace` records.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodSample {
    /// The stride boundary this sample covers (the first boundary the
    /// frontier crossed since the previous sample).
    pub cycle: u64,
    /// Whether the interval ended inside the warm-up phase.
    pub during_warmup: bool,
    /// Per-core instructions retired during the interval.
    pub instructions: Vec<u64>,
    /// Per-core local-clock advance during the interval.
    pub cycles: Vec<u64>,
    /// Aggregate L2 statistics delta over the interval (hits, misses,
    /// spills, forwards, shadow hits — the fill mix).
    pub l2: CacheStats,
    /// Scheme-side events that fired during the interval.
    pub events: Vec<SchemeEvent>,
    /// Workload phase shifts applied during the interval (phase-change
    /// scenarios; empty for stationary runs).
    pub shifts: Vec<StreamShift>,
    /// Observability counter delta over the interval. Populated only
    /// when the `obs` feature is on; `None` otherwise, so recorded
    /// series serialise exactly as they did before counters existed.
    pub counters: Option<SimCounters>,
}

impl PeriodSample {
    /// Per-core IPC over the interval (0 where the clock did not move).
    pub fn ipcs(&self) -> Vec<f64> {
        self.instructions
            .iter()
            .zip(&self.cycles)
            .map(|(&i, &c)| if c == 0 { 0.0 } else { i as f64 / c as f64 })
            .collect()
    }

    /// Sum of per-core IPCs over the interval.
    pub fn throughput(&self) -> f64 {
        self.ipcs().iter().sum()
    }
}

/// An observer invoked at every probe stride boundary.
pub trait Probe {
    /// Called once per crossed stride boundary with that interval's
    /// sample.
    fn on_sample(&mut self, sample: &PeriodSample);
}

impl<F: FnMut(&PeriodSample)> Probe for F {
    fn on_sample(&mut self, sample: &PeriodSample) {
        self(sample)
    }
}

/// Why a snapshot could not be taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The stream driving this core does not support deep-copying.
    StreamNotCloneable(usize),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::StreamNotCloneable(core) => {
                write!(f, "stream for core {core} does not support snapshotting")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A deterministic capture of a session's full state. Cheap to replay:
/// [`SessionSnapshot::to_session`] clones the snapshot, so one capture
/// can seed any number of sessions (the warm-up-reuse pattern).
pub struct SessionSnapshot<O> {
    cfg: SystemConfig,
    cores: Vec<CoreModel>,
    l1d: Vec<SetAssocCache>,
    l1i: Vec<SetAssocCache>,
    bus: Bus,
    dram: Dram,
    org: O,
    streams: Vec<Box<dyn OpStream>>,
    labels: Vec<String>,
    warmup_cycles: u64,
    policy: Box<dyn StopPolicy>,
    stopped_at: Option<u64>,
    policy_next_at: u64,
    policy_origin: u64,
    policy_prev_cycle: u64,
    policy_cores: Vec<(u64, u64)>,
    measuring: bool,
    baseline: Vec<(u64, u64)>,
    shifts: Vec<StreamShift>,
    next_shift: usize,
    tally: SimCounters,
}

impl<O: CloneOrg> SessionSnapshot<O> {
    /// Materialise a new session from this snapshot. The snapshot stays
    /// intact, so the call can be repeated; probes are not part of the
    /// captured state and start disabled.
    pub fn to_session(&self) -> Result<SimSession<O>, SnapshotError> {
        let streams = clone_streams(&self.streams)?;
        Ok(SimSession {
            cfg: self.cfg,
            cores: self.cores.clone(),
            l1d: self.l1d.clone(),
            l1i: self.l1i.clone(),
            bus: self.bus.clone(),
            dram: self.dram.clone(),
            org: self.org.clone_org(),
            streams,
            labels: self.labels.clone(),
            warmup_cycles: self.warmup_cycles,
            policy: self.policy.clone_policy(),
            stopped_at: self.stopped_at,
            policy_next_at: self.policy_next_at,
            policy_origin: self.policy_origin,
            policy_prev_cycle: self.policy_prev_cycle,
            policy_cores: self.policy_cores.clone(),
            measuring: self.measuring,
            baseline: self.baseline.clone(),
            shifts: self.shifts.clone(),
            next_shift: self.next_shift,
            fired_shifts: Vec::new(),
            probe_stride: 0,
            next_probe_at: 0,
            probe_cores: Vec::new(),
            probe_l2: CacheStats::default(),
            probes: Vec::new(),
            series: None,
            tally: self.tally,
            probe_counters: SimCounters::default(),
        })
    }

    /// The organisation as captured (e.g. to tweak a policy parameter
    /// before [`SessionSnapshot::to_session`] — note the tweak applies
    /// to *future* sessions only after `org_mut` on the built session).
    pub fn org(&self) -> &O {
        &self.org
    }
}

fn clone_streams(streams: &[Box<dyn OpStream>]) -> Result<Vec<Box<dyn OpStream>>, SnapshotError> {
    streams
        .iter()
        .enumerate()
        .map(|(i, s)| s.clone_dyn().ok_or(SnapshotError::StreamNotCloneable(i)))
        .collect()
}

/// Builder for [`SimSession`]: platform + organisation + streams + the
/// run plan, with optional probing.
pub struct SessionBuilder<O: L2Org> {
    cfg: SystemConfig,
    org: O,
    streams: Vec<Box<dyn OpStream>>,
    plan: RunPlan,
    shifts: Vec<StreamShift>,
    probe_stride: u64,
    record: bool,
    probes: Vec<Box<dyn Probe>>,
}

impl<O: L2Org> SessionBuilder<O> {
    /// Start a builder for `cfg` around an organisation.
    pub fn new(cfg: SystemConfig, org: O) -> Self {
        assert_eq!(
            org.num_cores(),
            cfg.num_cores,
            "organisation must match core count"
        );
        SessionBuilder {
            cfg,
            org,
            streams: Vec::new(),
            plan: RunPlan::fixed(0, 0),
            shifts: Vec::new(),
            probe_stride: 0,
            record: false,
            probes: Vec::new(),
        }
    }

    /// Attach one op stream per core (replaces any previous streams).
    pub fn streams(mut self, streams: Vec<Box<dyn OpStream>>) -> Self {
        self.streams = streams;
        self
    }

    /// Set a fixed-window run plan (absolute cycles: measurement begins
    /// at `warmup` and the horizon is `warmup + measure`). Sugar for
    /// [`SessionBuilder::plan`] with [`RunPlan::fixed`].
    pub fn budget(self, warmup_cycles: u64, measure_cycles: u64) -> Self {
        self.plan(RunPlan::fixed(warmup_cycles, measure_cycles))
    }

    /// Set the run plan (replaces any previous plan or budget).
    pub fn plan(mut self, plan: RunPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Schedule deterministic mid-run workload shifts (a phase-change
    /// scenario): each shift is applied to its target cores' streams at
    /// the first frontier boundary at or past its cycle, so shifted
    /// runs stay deterministic across stepping interleavings and
    /// snapshot/restore. Replaces any previous schedule. Under a
    /// [`crate::StopSpec::Reconverged`] plan the shift cycles inside
    /// the measured window also become the policy's phase boundaries.
    pub fn phase_shifts(mut self, mut shifts: Vec<StreamShift>) -> Self {
        shifts.sort_by_key(|s| s.at_cycle);
        self.shifts = shifts;
        self
    }

    /// Fire probes every `stride` cycles of frontier progress (0
    /// disables probing).
    pub fn probe_stride(mut self, stride: u64) -> Self {
        self.probe_stride = stride;
        self
    }

    /// Record every probe sample into an internal time series,
    /// retrievable with [`SimSession::take_series`]. Implies probing at
    /// the configured stride.
    pub fn record_series(mut self, stride: u64) -> Self {
        self.probe_stride = stride;
        self.record = true;
        self
    }

    /// Attach an external probe.
    pub fn probe(mut self, probe: Box<dyn Probe>) -> Self {
        self.probes.push(probe);
        self
    }

    /// Build the session.
    pub fn build(self) -> SimSession<O> {
        assert_eq!(
            self.streams.len(),
            self.cfg.num_cores,
            "one stream per core"
        );
        let labels = self.streams.iter().map(|s| s.label().to_string()).collect();
        // A reconverged policy segments the measured window at the
        // schedule's shift cycles; shifts during warm-up or past the
        // ceiling never segment it.
        let warmup = self.plan.warmup_cycles;
        let horizon = warmup + self.plan.measure_cycles();
        let mut boundaries: Vec<u64> = self
            .shifts
            .iter()
            .filter(|s| s.at_cycle > warmup && s.at_cycle < horizon)
            .map(|s| s.at_cycle - warmup)
            .collect();
        boundaries.dedup();
        SimSession {
            cores: (0..self.cfg.num_cores)
                .map(|_| CoreModel::new(self.cfg.core))
                .collect(),
            l1d: (0..self.cfg.num_cores)
                .map(|_| SetAssocCache::new(self.cfg.l1))
                .collect(),
            l1i: (0..self.cfg.num_cores)
                .map(|_| SetAssocCache::new(self.cfg.l1))
                .collect(),
            bus: Bus::new(self.cfg.bus),
            dram: Dram::new(self.cfg.dram),
            org: self.org,
            streams: self.streams,
            labels,
            warmup_cycles: self.plan.warmup_cycles,
            policy: self.plan.policy_with_boundaries(&boundaries),
            stopped_at: None,
            policy_next_at: 0,
            policy_origin: 0,
            policy_prev_cycle: 0,
            policy_cores: Vec::new(),
            measuring: false,
            baseline: Vec::new(),
            shifts: self.shifts,
            next_shift: 0,
            fired_shifts: Vec::new(),
            probe_stride: self.probe_stride,
            next_probe_at: if self.probe_stride > 0 {
                self.probe_stride
            } else {
                0
            },
            probe_cores: Vec::new(),
            probe_l2: CacheStats::default(),
            probes: self.probes,
            series: if self.record { Some(Vec::new()) } else { None },
            tally: SimCounters::default(),
            probe_counters: SimCounters::default(),
            cfg: self.cfg,
        }
    }
}

/// A steppable simulation session (see the module docs).
pub struct SimSession<O: L2Org> {
    cfg: SystemConfig,
    cores: Vec<CoreModel>,
    l1d: Vec<SetAssocCache>,
    l1i: Vec<SetAssocCache>,
    bus: Bus,
    dram: Dram,
    org: O,
    streams: Vec<Box<dyn OpStream>>,
    labels: Vec<String>,
    warmup_cycles: u64,
    /// The stop policy governing the measured window (state included —
    /// cloned into snapshots).
    policy: Box<dyn StopPolicy>,
    /// The frontier cycle at which the policy ended the run early
    /// (`None`: still running, or the run reaches the horizon).
    stopped_at: Option<u64>,
    /// The next measured-window boundary the policy observes at
    /// (`origin + k * stride`; 0 before measurement).
    policy_next_at: u64,
    /// The frontier cycle measurement began at: the anchor of the
    /// policy's observation grid. Anchoring at the *actual* start
    /// (rather than the nominal warm-up boundary the frontier may have
    /// jumped past) keeps every observation interval a full stride —
    /// a partial first interval would feed the estimator a sample that
    /// integrates fewer operations than its peers.
    policy_origin: u64,
    /// Frontier cycle of the previous policy observation (interval
    /// lengths for partial-stride rejection).
    policy_prev_cycle: u64,
    /// Per-core (instructions, cycle) at the previous policy
    /// observation.
    policy_cores: Vec<(u64, u64)>,
    /// Whether the measurement phase has begun (stats reset done).
    measuring: bool,
    /// Per-core (instructions, cycle) at measurement start.
    baseline: Vec<(u64, u64)>,
    /// The phase-change schedule, sorted by cycle.
    shifts: Vec<StreamShift>,
    /// Index of the next unapplied shift.
    next_shift: usize,
    /// Shifts applied since the last probe sample (drained into
    /// [`PeriodSample::shifts`]; not part of snapshots, like probes).
    fired_shifts: Vec<StreamShift>, // snug-lint: allow(snapshot-completeness, "probe-period drain buffer; restored sessions start a fresh period")
    probe_stride: u64, // snug-lint: allow(snapshot-completeness, "probe config, not simulation state; to_session re-installs probes explicitly")
    next_probe_at: u64, // snug-lint: allow(snapshot-completeness, "probe latch; restored sessions restart probing from install_probe")
    /// Per-core (instructions, cycle) at the previous probe tick.
    probe_cores: Vec<(u64, u64)>, // snug-lint: allow(snapshot-completeness, "probe latch, re-seeded when probing restarts")
    /// Aggregate L2 stats at the previous probe tick.
    probe_l2: CacheStats, // snug-lint: allow(snapshot-completeness, "probe latch, re-seeded when probing restarts")
    probes: Vec<Box<dyn Probe>>, // snug-lint: allow(snapshot-completeness, "trait objects are observers, not state; snapshots restore with no probes attached")
    series: Option<Vec<PeriodSample>>, // snug-lint: allow(snapshot-completeness, "recorded samples belong to the recording session; restore starts a fresh series")
    /// Observability tallies the session itself increments on the hot
    /// path (retired ops, L1 walk depths, L2Org dispatches, scheme
    /// relatch events); zero-cost when the `obs` feature is off. The
    /// remaining [`SimCounters`] fields are harvested from component
    /// statistics at assembly time. Part of snapshots.
    tally: SimCounters,
    /// Assembled counters at the previous probe tick (interval deltas;
    /// not part of snapshots, like the other probe latches).
    probe_counters: SimCounters, // snug-lint: allow(snapshot-completeness, "probe latch, re-seeded when probing restarts")
}

impl<O: L2Org> SimSession<O> {
    /// Start building a session.
    pub fn builder(cfg: SystemConfig, org: O) -> SessionBuilder<O> {
        SessionBuilder::new(cfg, org)
    }

    /// The simulation frontier: the minimum core-local clock. All state
    /// at cycles below the frontier is final.
    pub fn frontier(&self) -> u64 {
        self.cores.iter().map(|c| c.cycle()).min().unwrap_or(0)
    }

    /// The end of the run window (`warmup` + the policy's measured
    /// ceiling). A convergence policy may end the run earlier — see
    /// [`SimSession::stopped_at`].
    pub fn horizon(&self) -> u64 {
        self.warmup_cycles + self.policy.max_measure_cycles()
    }

    /// The frontier cycle at which the stop policy ended the run early,
    /// or `None` while the session is running or when it reached the
    /// horizon.
    pub fn stopped_at(&self) -> Option<u64> {
        self.stopped_at
    }

    /// Measured cycles completed so far (0 before the warm-up
    /// boundary).
    pub fn measured_cycles(&self) -> u64 {
        self.frontier().saturating_sub(self.warmup_cycles)
    }

    /// Whether the measurement phase has begun.
    pub fn measuring(&self) -> bool {
        self.measuring
    }

    /// Begin measurement when the frontier has crossed the warm-up
    /// boundary: reset statistics (cache contents retained) and latch
    /// the per-core baseline. Frontier-driven, so it happens at the
    /// same point in the op sequence however the session is stepped.
    fn sync_phase(&mut self) {
        if self.measuring || self.frontier() < self.warmup_cycles {
            return;
        }
        self.begin_measurement();
    }

    /// The warm-up boundary actions (see [`SimSession::sync_phase`]).
    fn begin_measurement(&mut self) {
        self.org.reset_stats();
        for l1 in self.l1d.iter_mut().chain(self.l1i.iter_mut()) {
            l1.reset_stats();
        }
        self.bus.reset_stats();
        self.dram.reset_stats();
        self.baseline = self
            .cores
            .iter()
            .map(|c| (c.instructions(), c.cycle()))
            .collect();
        // The probe delta baselines restart with the reset counters.
        self.probe_l2 = CacheStats::default();
        self.probe_cores = self.baseline.clone();
        // Observability counters cover the measured window, like the
        // component statistics they extend.
        self.tally = SimCounters::default();
        self.probe_counters = SimCounters::default();
        // The stop policy observes from the measurement-start frontier
        // on. The anchor is frontier-derived (and the frontier at the
        // warm-up transition is the same in every interleaving), so the
        // observation grid — and therefore the early-exit decision —
        // latches at the same point in the op sequence however the
        // session is driven.
        let stride = self.policy.observe_stride();
        if stride > 0 {
            self.policy_cores = self.baseline.clone();
            self.policy_origin = self.frontier();
            self.policy_prev_cycle = self.policy_origin;
            self.policy_next_at = self.policy_origin + stride;
        }
        self.measuring = true;
    }

    /// Execute one operation on the core with the smallest local clock.
    /// Returns `false` once every core has reached the horizon or the
    /// stop policy has ended the run (the session is complete).
    pub fn step(&mut self) -> bool {
        if self.stopped_at.is_some() {
            return false;
        }
        // One scan serves three purposes: the global minimum clock IS
        // the frontier, decides the phase transition, and names the next
        // core to step (first index on ties, as the one-shot driver
        // did).
        let mut min_cycle = u64::MAX;
        let mut min_core = 0;
        for (i, core) in self.cores.iter().enumerate() {
            if core.cycle() < min_cycle {
                min_cycle = core.cycle();
                min_core = i;
            }
        }
        if !self.measuring && min_cycle >= self.warmup_cycles {
            self.begin_measurement();
        }
        if min_cycle >= self.horizon() {
            return false;
        }
        // Apply scheduled workload shifts at frontier boundaries:
        // frontier-derived like the phase transition above, so a shift
        // lands before the exact same operation in every interleaving
        // and in every snapshot → restore → resume replay.
        if self.next_shift < self.shifts.len() {
            self.sync_shifts(min_cycle);
        }
        self.exec_op(min_core);
        if self.probe_stride > 0 {
            self.fire_probes();
        }
        self.observe_policy();
        true
    }

    /// Advance until the frontier reaches `cycle` (clamped to the
    /// horizon) — every core's local clock ends at or beyond the target.
    pub fn run_until(&mut self, cycle: u64) {
        let target = cycle.min(self.horizon());
        self.run_batched(target);
        self.sync_phase();
    }

    /// The batched drive loop: byte-identical op interleaving to
    /// repeated [`SimSession::step`] calls, but the per-op work drops to
    /// one `exec_op` plus two compares in the common case.
    ///
    /// `step()` pays an O(num_cores) min-clock scan and re-checks every
    /// boundary (warm-up, horizon, shift, probe, policy) per op. The
    /// scan's winner only changes when the running core's clock passes
    /// the *second*-smallest clock, and every boundary is a fixed cycle
    /// known up front — so one scan pins `min_core`, a second pins the
    /// runner-up `(second_cycle, second_idx)`, and `min_core` then
    /// executes ops back-to-back until either
    ///
    /// * its clock passes the runner-up (strictly, or equal with a
    ///   smaller index elsewhere — the tie order of `step`'s first-index
    ///   scan), or
    /// * the frontier reaches the next *pre-exec* boundary (target,
    ///   horizon, warm-up edge, pending shift cycle), which `step`
    ///   handles before executing an op, or
    /// * the frontier reaches the next *post-exec* boundary (probe
    ///   stride, policy observation), which `step` fires after an op —
    ///   handled inline without ending the batch.
    ///
    /// While the batch runs, the frontier is `min(running core's clock,
    /// second_cycle)` by construction, so no boundary can be crossed
    /// unnoticed; `fire_probes`/`observe_policy` are invoked at exactly
    /// the ops where stepping would have invoked them non-trivially.
    fn run_batched(&mut self, target: u64) {
        loop {
            if self.stopped_at.is_some() {
                return;
            }
            // Pre-exec boundary checks, in `step`'s order (first index
            // wins clock ties, as the one-shot driver did). One pass
            // pins both the minimum clock (the frontier / next core to
            // run) and the runner-up (the batch-ending boundary): with
            // strict `<` compares and in-order iteration, the two-track
            // update keeps exactly the first-index tie winners that
            // `step`'s separate scans would pick.
            let mut min_cycle = u64::MAX;
            let mut min_core = 0;
            let mut second_cycle = u64::MAX;
            let mut second_idx = usize::MAX;
            for (i, core) in self.cores.iter().enumerate() {
                let cyc = core.cycle();
                if cyc < min_cycle {
                    second_cycle = min_cycle;
                    second_idx = min_core;
                    min_cycle = cyc;
                    min_core = i;
                } else if cyc < second_cycle {
                    second_cycle = cyc;
                    second_idx = i;
                }
            }
            if self.cores.len() == 1 {
                second_idx = usize::MAX;
            }
            if min_cycle >= target {
                return;
            }
            if !self.measuring && min_cycle >= self.warmup_cycles {
                self.begin_measurement();
            }
            let horizon = self.horizon();
            if min_cycle >= horizon {
                return;
            }
            if self.next_shift < self.shifts.len() {
                self.sync_shifts(min_cycle);
            }
            // Boundaries `step` honours *before* executing an op. The
            // warm-up edge only matters until measurement begins; a
            // pending shift must land before the first op at/past its
            // cycle.
            let mut pre_limit = target.min(horizon);
            if !self.measuring {
                pre_limit = pre_limit.min(self.warmup_cycles);
            }
            if self.next_shift < self.shifts.len() {
                pre_limit = pre_limit.min(self.shifts[self.next_shift].at_cycle);
            }
            let mut post_limit = self.post_exec_limit();
            loop {
                self.exec_op(min_core);
                let cyc = self.cores[min_core].cycle();
                let frontier = cyc.min(second_cycle);
                if frontier >= post_limit {
                    // `step` calls these after every op; they only act
                    // when the frontier has reached their boundary,
                    // which is exactly now.
                    if self.probe_stride > 0 {
                        self.fire_probes();
                    }
                    self.observe_policy();
                    if self.stopped_at.is_some() {
                        return;
                    }
                    post_limit = self.post_exec_limit();
                }
                if cyc > second_cycle || (cyc == second_cycle && second_idx < min_core) {
                    break;
                }
                if frontier >= pre_limit {
                    break;
                }
            }
        }
    }

    /// The next cycle at which a post-exec boundary (probe sample or
    /// policy observation) fires, or `u64::MAX` when neither is armed.
    #[inline]
    fn post_exec_limit(&self) -> u64 {
        let mut limit = u64::MAX;
        if self.probe_stride > 0 {
            limit = limit.min(self.next_probe_at);
        }
        if self.measuring && self.stopped_at.is_none() && self.policy.observe_stride() > 0 {
            limit = limit.min(self.policy_next_at);
        }
        limit
    }

    /// Apply every scheduled shift whose cycle the frontier has
    /// reached, in schedule order. A shift no targeted stream
    /// understands (streams signal via [`OpStream::apply_shift`]'s
    /// return — e.g. a demand directive after the pattern went
    /// streaming, or a core filter matching no stream) is *not*
    /// recorded into the probe samples: a phantom phase-boundary event
    /// for a workload that never changed would be worse than silence.
    fn sync_shifts(&mut self, frontier: u64) {
        while self.next_shift < self.shifts.len() {
            if frontier < self.shifts[self.next_shift].at_cycle {
                break;
            }
            let shift = self.shifts[self.next_shift].clone();
            let mut applied = false;
            for (core, stream) in self.streams.iter_mut().enumerate() {
                if shift.targets(core) {
                    applied |= stream.apply_shift(&shift.directive);
                }
            }
            if applied {
                self.fired_shifts.push(shift);
            }
            self.next_shift += 1;
        }
    }

    /// Run the whole window and return the measured result.
    pub fn run_to_completion(&mut self) -> SystemResult {
        self.run_batched(u64::MAX);
        self.sync_phase();
        self.result()
    }

    /// The measured result so far: per-core IPC over the measured
    /// window, exactly as the one-shot driver reported it.
    ///
    /// # Panics
    ///
    /// Panics if measurement has not begun (frontier below warm-up).
    pub fn result(&self) -> SystemResult {
        assert!(
            self.measuring,
            "result() before the warm-up boundary; drive the session past \
             warmup_cycles first"
        );
        let cores = (0..self.cfg.num_cores)
            .map(|i| {
                let (i0, c0) = self.baseline[i];
                let instructions = self.cores[i].instructions() - i0;
                let cycles = self.cores[i].cycle().saturating_sub(c0).max(1);
                CoreResult {
                    label: self.labels[i].clone(),
                    instructions,
                    cycles,
                    ipc: instructions as f64 / cycles as f64,
                    stalls: self.cores[i].stats(),
                    l1d: *self.l1d[i].stats(),
                }
            })
            .collect();
        SystemResult {
            scheme: self.org.name().to_string(),
            cores,
            l2: self.org.aggregate_stats(),
        }
    }

    /// Execute one operation on core `c` (the old driver's inner step,
    /// verbatim).
    fn exec_op(&mut self, c: usize) {
        let op = self.streams[c].next_op();
        self.cores[c].issue(op.instructions());
        let now = self.cores[c].cycle();
        let block = op.access.addr.block(self.cfg.l1.block_bytes);
        let (l1, stalls_core) = match op.access.kind {
            AccessKind::IFetch => (&mut self.l1i[c], true),
            AccessKind::Load => (&mut self.l1d[c], true),
            AccessKind::Store => (&mut self.l1d[c], false),
        };
        let r = l1.access(block, op.access.kind.is_write());
        if cfg!(feature = "obs") {
            self.tally.retired_ops += 1;
            if let Some(d) = r.distance {
                self.tally.l1_walk_depths[d.min(WALK_DEPTH_BUCKETS) - 1] += 1;
            }
        }
        if r.hit {
            // 1-cycle pipelined L1 hit: covered by the issue slot.
            return;
        }
        let mut res = ChipResources {
            bus: &mut self.bus,
            dram: &mut self.dram,
        };
        // L1 fill displaced a dirty victim: write it back to L2 (off the
        // critical path, no demand-access accounting).
        if let Some(ev) = r.evicted {
            if ev.flags.dirty {
                if cfg!(feature = "obs") {
                    self.tally.org_writebacks += 1;
                }
                self.org.writeback(c, ev.block, now, &mut res);
            }
        }
        if cfg!(feature = "obs") {
            self.tally.org_accesses += 1;
        }
        let outcome = self
            .org
            .access(c, block, op.access.kind.is_write(), now, &mut res);
        if stalls_core {
            // L1 hit latency is charged on top of the L2 path.
            let completes = now + self.cfg.l1_latency + outcome.latency;
            if op.critical {
                self.cores[c].stall_until(completes);
            } else {
                self.cores[c].track_load(completes);
            }
        }
    }

    /// Emit probe samples for every stride boundary the frontier has
    /// crossed. When one step jumps several boundaries at once, a single
    /// sample (labelled with the first crossed boundary) covers them —
    /// interval deltas stay conservative either way.
    fn fire_probes(&mut self) {
        if self.probe_stride == 0 || self.frontier() < self.next_probe_at {
            return;
        }
        let frontier = self.frontier();
        let boundary = self.next_probe_at;
        self.next_probe_at = frontier - frontier % self.probe_stride + self.probe_stride;

        let now_cores: Vec<(u64, u64)> = self
            .cores
            .iter()
            .map(|c| (c.instructions(), c.cycle()))
            .collect();
        if self.probe_cores.is_empty() {
            self.probe_cores = vec![(0, 0); now_cores.len()];
        }
        let l2_now = self.org.aggregate_stats();
        let events = self.org.drain_events();
        let counters = if cfg!(feature = "obs") {
            self.note_events(&events);
            let now = self.assemble_counters();
            let delta = now.delta(&self.probe_counters);
            self.probe_counters = now;
            Some(delta)
        } else {
            None
        };
        let sample = PeriodSample {
            cycle: boundary,
            during_warmup: !self.measuring,
            instructions: now_cores
                .iter()
                .zip(&self.probe_cores)
                .map(|(n, p)| n.0.saturating_sub(p.0))
                .collect(),
            cycles: now_cores
                .iter()
                .zip(&self.probe_cores)
                .map(|(n, p)| n.1.saturating_sub(p.1))
                .collect(),
            l2: stats_delta(&l2_now, &self.probe_l2),
            events,
            shifts: std::mem::take(&mut self.fired_shifts),
            counters,
        };
        self.probe_cores = now_cores;
        self.probe_l2 = l2_now;
        for p in &mut self.probes {
            p.on_sample(&sample);
        }
        if let Some(series) = &mut self.series {
            series.push(sample);
        }
    }

    /// Deliver the interval throughput to the stop policy at every
    /// crossed policy boundary (`policy_origin + k * stride`, anchored
    /// at the measurement-start frontier so every interval spans full
    /// strides). Like `fire_probes`, a step that jumps several
    /// boundaries delivers one combined observation — boundaries are
    /// frontier-derived, so the observation sequence (and therefore the
    /// early-exit decision) is identical in every interleaving.
    fn observe_policy(&mut self) {
        if self.stopped_at.is_some() || !self.measuring {
            return;
        }
        let stride = self.policy.observe_stride();
        if stride == 0 {
            return;
        }
        let frontier = self.frontier();
        if frontier < self.policy_next_at {
            return;
        }
        let rel = frontier - self.warmup_cycles;
        // An observation at or past the ceiling cannot stop anything
        // early — the run is ending anyway — and must never latch a
        // stop cycle beyond the horizon (a run that reaches the
        // ceiling reports the full window, not an "early" stop there).
        if rel >= self.policy.max_measure_cycles() {
            return;
        }
        // The boundary grid is anchored at the measurement-start
        // frontier (`policy_origin`), so every interval spans full
        // strides.
        self.policy_next_at =
            self.policy_origin + ((frontier - self.policy_origin) / stride + 1) * stride;
        let now: Vec<(u64, u64)> = self
            .cores
            .iter()
            .map(|c| (c.instructions(), c.cycle()))
            .collect();
        let throughput = now
            .iter()
            .zip(&self.policy_cores)
            .map(|(n, p)| {
                let cycles = n.1.saturating_sub(p.1);
                if cycles == 0 {
                    0.0
                } else {
                    n.0.saturating_sub(p.0) as f64 / cycles as f64
                }
            })
            .sum();
        self.policy_cores = now;
        let obs = StopObservation {
            cycle: frontier,
            measured_cycles: rel,
            interval_cycles: frontier - self.policy_prev_cycle,
            throughput,
        };
        self.policy_prev_cycle = frontier;
        if self.policy.observe(&obs) {
            self.stopped_at = Some(frontier);
        }
    }

    /// Take the recorded time series (empty if recording was not
    /// enabled).
    pub fn take_series(&mut self) -> Vec<PeriodSample> {
        self.series.take().unwrap_or_default()
    }

    /// Enable (or retune) series recording on a built session: probes
    /// fire every `stride` cycles from the next boundary past the
    /// current frontier.
    pub fn enable_recording(&mut self, stride: u64) {
        assert!(stride > 0, "stride must be positive");
        self.probe_stride = stride;
        let frontier = self.frontier();
        self.next_probe_at = frontier - frontier % stride + stride;
        if self.series.is_none() {
            self.series = Some(Vec::new());
        }
    }

    /// The L2 organisation.
    pub fn org(&self) -> &O {
        &self.org
    }

    /// Mutable access to the organisation (e.g. to retune a policy
    /// parameter after restoring a shared warm-up snapshot).
    pub fn org_mut(&mut self) -> &mut O {
        &mut self.org
    }

    /// Per-phase plateau records from the stop policy (non-empty only
    /// under a re-convergence policy; the last entry covers the phase
    /// in progress when the run ended).
    pub fn phase_plateaus(&self) -> Vec<PhasePlateau> {
        self.policy.plateaus()
    }

    /// System configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Bus statistics.
    pub fn bus_stats(&self) -> crate::bus::BusStats {
        self.bus.stats()
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> sim_mem::DramStats {
        self.dram.stats()
    }

    /// L1D statistics for one core.
    pub fn l1d_stats(&self, core: usize) -> &CacheStats {
        self.l1d[core].stats()
    }

    /// Tally scheme events into the observability counters (called as
    /// events are drained, so each event is counted exactly once).
    /// Counters cover the measured window, but warm-up-era events can
    /// surface in *any* later drain — probe recording makes drain
    /// timing arbitrary — so membership is decided by the event's own
    /// cycle, not by when the boundary reset happened.
    fn note_events(&mut self, events: &[SchemeEvent]) {
        if !cfg!(feature = "obs") {
            return;
        }
        for e in events {
            if e.cycle < self.warmup_cycles {
                continue;
            }
            match e.kind {
                SchemeEventKind::IdentifyBegin => self.tally.identifies += 1,
                SchemeEventKind::GroupedBegin => self.tally.relatches += 1,
            }
        }
    }

    /// Assemble the full counter block: the session's hot-path tallies
    /// plus the component statistics (L1s, L2 organisation, bus, DRAM,
    /// core stall attribution) harvested at call time.
    fn assemble_counters(&self) -> SimCounters {
        let mut c = self.tally;
        for l1 in &self.l1i {
            c.l1i_hits += l1.stats().hits;
            c.l1i_misses += l1.stats().misses;
        }
        for l1 in &self.l1d {
            c.l1d_hits += l1.stats().hits;
            c.l1d_misses += l1.stats().misses;
        }
        let l2 = self.org.aggregate_stats();
        c.l2_hits = l2.hits;
        c.l2_misses = l2.misses;
        c.l2_cc_hits = l2.cc_hits;
        c.l2_evictions = l2.evictions;
        c.l2_writebacks = l2.writebacks;
        c.spills_out = l2.spills_out;
        c.spills_in = l2.spills_in;
        c.forwards = l2.forwards;
        c.retrieved_from_peer = l2.retrieved_from_peer;
        c.shadow_hits = l2.shadow_hits;
        c.write_buffer_hits = l2.write_buffer_hits;
        let bus = self.bus.stats();
        c.bus_address_transactions = bus.address_transactions;
        c.bus_data_transactions = bus.data_transactions;
        c.bus_queue_cycles = bus.queue_cycles;
        let dram = self.dram.stats();
        c.dram_reads = dram.reads;
        c.dram_writes = dram.writes;
        c.dram_queue_cycles = dram.queue_cycles;
        for core in &self.cores {
            let s = core.stats();
            c.core_rob_stall_cycles += s.rob_stall_cycles;
            c.core_mshr_stall_cycles += s.mshr_stall_cycles;
            c.core_dep_stall_cycles += s.dep_stall_cycles;
        }
        c
    }

    /// The observability counters accumulated so far. Like the
    /// component statistics they extend, counters reset at the warm-up
    /// boundary and cover the measured window. Pending scheme events
    /// are drained into the relatch tally first — with probe recording
    /// enabled, call this only after the run is over or the next sample
    /// will miss those events. Session-side tallies are zero when the
    /// `obs` feature is off; the harvested component statistics are
    /// always filled in.
    pub fn counters(&mut self) -> SimCounters {
        let events = self.org.drain_events();
        self.note_events(&events);
        self.assemble_counters()
    }

    /// Replace the streams and run window, keeping all hardware state.
    /// This is the legacy `CmpSystem::run` entry path; new code should
    /// configure the builder instead.
    pub(crate) fn rearm(
        &mut self,
        streams: Vec<Box<dyn OpStream>>,
        warmup_cycles: u64,
        measure_cycles: u64,
    ) {
        assert_eq!(streams.len(), self.cfg.num_cores, "one stream per core");
        let plan = RunPlan::fixed(warmup_cycles, measure_cycles);
        self.labels = streams.iter().map(|s| s.label().to_string()).collect();
        self.streams = streams;
        self.warmup_cycles = plan.warmup_cycles;
        self.policy = plan.policy();
        self.stopped_at = None;
        self.policy_next_at = 0;
        self.policy_origin = 0;
        self.policy_prev_cycle = 0;
        self.policy_cores.clear();
        self.measuring = false;
        self.baseline.clear();
        self.shifts.clear();
        self.next_shift = 0;
        self.fired_shifts.clear();
        self.tally = SimCounters::default();
        self.probe_counters = SimCounters::default();
    }
}

impl<O: CloneOrg> SimSession<O> {
    /// Capture the session's full deterministic state. Fails if any
    /// stream does not support deep-copying. Probes and any recorded
    /// series are not captured.
    pub fn snapshot(&self) -> Result<SessionSnapshot<O>, SnapshotError> {
        Ok(SessionSnapshot {
            cfg: self.cfg,
            cores: self.cores.clone(),
            l1d: self.l1d.clone(),
            l1i: self.l1i.clone(),
            bus: self.bus.clone(),
            dram: self.dram.clone(),
            org: self.org.clone_org(),
            streams: clone_streams(&self.streams)?,
            labels: self.labels.clone(),
            warmup_cycles: self.warmup_cycles,
            policy: self.policy.clone_policy(),
            stopped_at: self.stopped_at,
            policy_next_at: self.policy_next_at,
            policy_origin: self.policy_origin,
            policy_prev_cycle: self.policy_prev_cycle,
            policy_cores: self.policy_cores.clone(),
            measuring: self.measuring,
            baseline: self.baseline.clone(),
            shifts: self.shifts.clone(),
            next_shift: self.next_shift,
            tally: self.tally,
        })
    }
}

/// Field-wise saturating difference of two cumulative counter blocks.
fn stats_delta(now: &CacheStats, earlier: &CacheStats) -> CacheStats {
    CacheStats {
        hits: now.hits.saturating_sub(earlier.hits),
        misses: now.misses.saturating_sub(earlier.misses),
        cc_hits: now.cc_hits.saturating_sub(earlier.cc_hits),
        evictions: now.evictions.saturating_sub(earlier.evictions),
        writebacks: now.writebacks.saturating_sub(earlier.writebacks),
        spills_out: now.spills_out.saturating_sub(earlier.spills_out),
        spills_in: now.spills_in.saturating_sub(earlier.spills_in),
        forwards: now.forwards.saturating_sub(earlier.forwards),
        retrieved_from_peer: now
            .retrieved_from_peer
            .saturating_sub(earlier.retrieved_from_peer),
        shadow_hits: now.shadow_hits.saturating_sub(earlier.shadow_hits),
        write_buffer_hits: now
            .write_buffer_hits
            .saturating_sub(earlier.write_buffer_hits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::VecStream;

    /// The same minimal private organisation the system tests use.
    #[derive(Clone)]
    struct TestOrg {
        slices: Vec<SetAssocCache>,
        local_lat: u64,
    }

    impl TestOrg {
        fn new(cfg: &SystemConfig) -> Self {
            TestOrg {
                slices: (0..cfg.num_cores)
                    .map(|_| SetAssocCache::new(cfg.l2_slice))
                    .collect(),
                local_lat: cfg.l2_local_latency,
            }
        }
    }

    impl L2Org for TestOrg {
        fn access(
            &mut self,
            core: usize,
            block: sim_mem::BlockAddr,
            is_write: bool,
            now: u64,
            res: &mut ChipResources<'_>,
        ) -> crate::L2Outcome {
            let r = self.slices[core].access(block, is_write);
            if r.hit {
                crate::L2Outcome {
                    latency: self.local_lat,
                    fill: crate::L2Fill::LocalHit,
                }
            } else {
                let done = res.dram.read(now);
                crate::L2Outcome {
                    latency: self.local_lat + (done - now),
                    fill: crate::L2Fill::Dram,
                }
            }
        }

        fn writeback(
            &mut self,
            core: usize,
            block: sim_mem::BlockAddr,
            _now: u64,
            _res: &mut ChipResources<'_>,
        ) {
            let set = self.slices[core].home_set(block);
            let _ = self.slices[core].touch_in_set(set, block, true);
        }

        fn slice_stats(&self, core: usize) -> &CacheStats {
            self.slices[core].stats()
        }

        fn num_cores(&self) -> usize {
            self.slices.len()
        }

        fn name(&self) -> &'static str {
            "test-l2p"
        }

        fn reset_stats(&mut self) {
            self.slices.iter_mut().for_each(|s| s.reset_stats());
        }

        fn clone_dyn(&self) -> Box<dyn L2Org> {
            Box::new(self.clone())
        }
    }

    fn streams(blocks: u64, gap: u32) -> Vec<Box<dyn OpStream>> {
        (0..4)
            .map(|i| {
                let addrs: Vec<u64> = (0..blocks).map(|b| (b + 1000 * i) * 64).collect();
                Box::new(VecStream::loads(format!("w{i}"), addrs, gap)) as Box<dyn OpStream>
            })
            .collect()
    }

    /// A shift-aware test stream: cycling loads whose instruction gap
    /// rescales on a `DemandScale` directive (a percent-scale knob is
    /// all the shift plumbing needs; the real demand semantics live in
    /// the workload crate).
    #[derive(Clone)]
    struct GapStream {
        label: String,
        addrs: Vec<u64>,
        pos: usize,
        gap: u32,
    }

    impl GapStream {
        fn boxed(core: u64, blocks: u64, gap: u32) -> Box<dyn OpStream> {
            Box::new(GapStream {
                label: format!("g{core}"),
                addrs: (0..blocks).map(|b| (b + 1000 * core) * 64).collect(),
                pos: 0,
                gap,
            })
        }
    }

    impl OpStream for GapStream {
        fn next_op(&mut self) -> sim_mem::CoreOp {
            let addr = self.addrs[self.pos];
            self.pos = (self.pos + 1) % self.addrs.len();
            sim_mem::CoreOp::new(self.gap, sim_mem::Access::load(addr))
        }

        fn label(&self) -> &str {
            &self.label
        }

        fn clone_dyn(&self) -> Option<Box<dyn OpStream>> {
            Some(Box::new(self.clone()))
        }

        fn apply_shift(&mut self, directive: &sim_mem::ShiftDirective) -> bool {
            match directive {
                sim_mem::ShiftDirective::DemandScale { percent } => {
                    self.gap = ((self.gap as u64 * *percent as u64) / 100).max(1) as u32;
                    true
                }
                _ => false,
            }
        }
    }

    fn shiftable_streams(gap: u32) -> Vec<Box<dyn OpStream>> {
        (0..4).map(|i| GapStream::boxed(i, 64, gap)).collect()
    }

    fn session(blocks: u64) -> SimSession<TestOrg> {
        let cfg = SystemConfig::tiny_test();
        SimSession::builder(cfg, TestOrg::new(&cfg))
            .streams(streams(blocks, 3))
            .budget(2_000, 30_000)
            .build()
    }

    #[test]
    fn stepping_matches_run_to_completion() {
        let reference = session(64).run_to_completion();

        let mut stepped = session(64);
        // A deliberately awkward interleaving: single steps, then short
        // run_until hops, then drain.
        for _ in 0..100 {
            stepped.step();
        }
        for t in (0..32_000).step_by(1_500) {
            stepped.run_until(t);
        }
        let result = stepped.run_to_completion();
        assert_eq!(result, reference);
    }

    #[test]
    fn snapshot_restore_resume_is_bit_identical() {
        let reference = session(64).run_to_completion();

        let mut warm = session(64);
        warm.run_until(2_000);
        assert!(warm.measuring(), "warm-up boundary crossed");
        let snap = warm.snapshot().expect("VecStream snapshots");
        let warm_result = warm.run_to_completion();
        assert_eq!(warm_result, reference);

        // Replay from the snapshot twice: both identical to the
        // uninterrupted run.
        for _ in 0..2 {
            let result = snap.to_session().unwrap().run_to_completion();
            assert_eq!(result, reference);
        }
    }

    #[test]
    fn probes_fire_on_stride_and_cover_the_run() {
        let cfg = SystemConfig::tiny_test();
        let mut s = SimSession::builder(cfg, TestOrg::new(&cfg))
            .streams(streams(64, 3))
            .budget(2_000, 30_000)
            .record_series(4_000)
            .build();
        let _ = s.run_to_completion();
        let series = s.take_series();
        assert!(!series.is_empty());
        assert!(series[0].during_warmup || series[0].cycle >= 2_000);
        assert!(series.windows(2).all(|w| w[0].cycle < w[1].cycle));
        let last = series.last().unwrap();
        assert!(!last.during_warmup);
        assert!(last.throughput() > 0.0);
        // Interval accesses add up: each sample's L2 delta is bounded by
        // what the caches saw in total.
        assert!(series.iter().all(|p| p.l2.accesses() > 0));
    }

    #[test]
    fn external_probe_receives_samples() {
        let cfg = SystemConfig::tiny_test();
        let count = std::rc::Rc::new(std::cell::RefCell::new(0usize));
        let c2 = count.clone();
        let mut s = SimSession::builder(cfg, TestOrg::new(&cfg))
            .streams(streams(16, 3))
            .budget(1_000, 10_000)
            .probe_stride(2_000)
            .probe(Box::new(move |_: &PeriodSample| {
                *c2.borrow_mut() += 1;
            }))
            .build();
        let _ = s.run_to_completion();
        assert!(*count.borrow() >= 4, "got {}", *count.borrow());
    }

    #[test]
    fn converged_plan_stops_early_and_deterministically() {
        let cfg = SystemConfig::tiny_test();
        let plan = RunPlan::fixed(2_000, 30_000).until_converged(1_000, 0.5);
        let build = || {
            SimSession::builder(cfg, TestOrg::new(&cfg))
                .streams(streams(64, 3))
                .plan(plan)
                .build()
        };
        let mut s = build();
        let result = s.run_to_completion();
        let stop = s.stopped_at().expect("steady tiny loop converges");
        assert!(
            stop < s.horizon(),
            "stopped at {stop} before horizon {}",
            s.horizon()
        );
        assert!(stop >= 2_000 + 4 * 1_000, "needs a full rolling window");

        // A rerun stops at the identical cycle with the identical
        // result.
        let mut again = build();
        assert_eq!(again.run_to_completion(), result);
        assert_eq!(again.stopped_at(), Some(stop));

        // Snapshot mid-measurement (estimator partially filled),
        // restore, resume: the restored session makes the identical
        // early-exit decision.
        let mut warm = build();
        warm.run_until(3_500);
        let mut restored = warm.snapshot().unwrap().to_session().unwrap();
        assert_eq!(restored.run_to_completion(), result);
        assert_eq!(restored.stopped_at(), Some(stop));
        assert_eq!(warm.run_to_completion(), result);
        assert_eq!(warm.stopped_at(), Some(stop));
    }

    #[test]
    fn convergence_at_the_ceiling_is_not_an_early_stop() {
        // The window divides the measured ceiling exactly, so the first
        // full rolling window lands on the final boundary: stopping
        // there saves nothing and must not latch a stop cycle at (or,
        // via a frontier jump, beyond) the horizon.
        let cfg = SystemConfig::tiny_test();
        let plan = RunPlan::fixed(2_000, 8_000).until_converged(2_000, 0.9);
        let mut s = SimSession::builder(cfg, TestOrg::new(&cfg))
            .streams(streams(64, 3))
            .plan(plan)
            .build();
        let _ = s.run_to_completion();
        assert_eq!(s.stopped_at(), None, "ran the full window");
    }

    #[test]
    fn phase_shifts_fire_at_frontier_boundaries_and_are_recorded() {
        use sim_mem::{ShiftDirective, StreamShift};
        let cfg = SystemConfig::tiny_test();
        let shift = StreamShift::all_cores(10_000, ShiftDirective::DemandScale { percent: 300 });
        let build = |shifts: Vec<StreamShift>| {
            SimSession::builder(cfg, TestOrg::new(&cfg))
                .streams(shiftable_streams(3))
                .budget(2_000, 30_000)
                .phase_shifts(shifts)
                .record_series(4_000)
                .build()
        };
        let mut plain = build(Vec::new());
        let unshifted = plain.run_to_completion();

        let mut shifted = build(vec![shift.clone()]);
        let result = shifted.run_to_completion();
        assert_ne!(result, unshifted, "the shift changed the workload");
        let series = shifted.take_series();
        let fired: Vec<&StreamShift> = series.iter().flat_map(|s| &s.shifts).collect();
        assert_eq!(
            fired,
            vec![&shift],
            "the shift appears in exactly one sample"
        );
        let at = series
            .iter()
            .find(|s| !s.shifts.is_empty())
            .map(|s| s.cycle)
            .unwrap();
        assert!(
            at >= 10_000,
            "recorded at the first boundary past the shift"
        );

        // Re-running and snapshot → restore → resume reproduce the
        // shifted run bit-identically (pending shifts travel with the
        // snapshot).
        assert_eq!(build(vec![shift.clone()]).run_to_completion(), result);
        let mut warm = build(vec![shift.clone()]);
        warm.run_until(6_000);
        let snap = warm.snapshot().expect("GapStream snapshots");
        assert_eq!(snap.to_session().unwrap().run_to_completion(), result);
        assert_eq!(warm.run_to_completion(), result);
    }

    #[test]
    fn reconverged_plan_extends_past_the_shift_and_records_plateaus() {
        use sim_mem::{ShiftDirective, StreamShift};
        let cfg = SystemConfig::tiny_test();
        let plan = RunPlan::fixed(2_000, 30_000).until_reconverged(1_000, 0.5);
        let shift_cycle = 10_000;
        let build = || {
            SimSession::builder(cfg, TestOrg::new(&cfg))
                .streams(shiftable_streams(3))
                .plan(plan)
                .phase_shifts(vec![StreamShift::all_cores(
                    shift_cycle,
                    ShiftDirective::DemandScale { percent: 300 },
                )])
                .build()
        };
        let mut s = build();
        let result = s.run_to_completion();
        let stop = s.stopped_at().expect("steady loops re-stabilise");
        assert!(
            stop > shift_cycle,
            "the window extended past the shift (stopped at {stop})"
        );
        assert!(stop < s.horizon());

        let plateaus = s.phase_plateaus();
        assert_eq!(plateaus.len(), 2, "one plateau per workload phase");
        assert!(plateaus[0].converged(), "pre-shift plateau settled");
        assert!(plateaus[1].converged(), "post-shift plateau re-settled");
        assert!(
            plateaus[1].mean_throughput > plateaus[0].mean_throughput,
            "tripled gap raises IPC: {} -> {}",
            plateaus[0].mean_throughput,
            plateaus[1].mean_throughput
        );

        // Deterministic: rerun and snapshot → restore agree on the stop
        // cycle and the plateau records.
        let mut again = build();
        assert_eq!(again.run_to_completion(), result);
        assert_eq!(again.stopped_at(), Some(stop));
        assert_eq!(again.phase_plateaus(), plateaus);
        let mut warm = build();
        warm.run_until(11_500);
        let mut restored = warm.snapshot().unwrap().to_session().unwrap();
        assert_eq!(restored.run_to_completion(), result);
        assert_eq!(restored.stopped_at(), Some(stop));
        assert_eq!(restored.phase_plateaus(), plateaus);
    }

    #[test]
    fn without_boundaries_a_reconverged_plan_behaves_like_converged() {
        let cfg = SystemConfig::tiny_test();
        let fixed = RunPlan::fixed(2_000, 30_000);
        let mut conv = SimSession::builder(cfg, TestOrg::new(&cfg))
            .streams(streams(64, 3))
            .plan(fixed.until_converged(1_000, 0.5))
            .build();
        let conv_result = conv.run_to_completion();
        let mut reconv = SimSession::builder(cfg, TestOrg::new(&cfg))
            .streams(streams(64, 3))
            .plan(fixed.until_reconverged(1_000, 0.5))
            .build();
        assert_eq!(reconv.run_to_completion(), conv_result);
        assert_eq!(reconv.stopped_at(), conv.stopped_at());
    }

    #[test]
    fn fixed_plan_never_stops_early() {
        let mut s = session(64);
        let _ = s.run_to_completion();
        assert_eq!(s.stopped_at(), None);
        assert_eq!(s.measured_cycles(), s.frontier() - 2_000);
    }

    #[test]
    fn result_before_warmup_panics() {
        let s = session(8);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.result()));
        assert!(err.is_err());
    }
}
