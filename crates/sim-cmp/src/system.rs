//! The one-shot CMP driver — a thin wrapper over [`SimSession`].
//!
//! [`CmpSystem`] keeps the original run-to-completion entry point: wire
//! an [`L2Org`] into the Table 4 platform and execute per-core
//! [`OpStream`]s for a fixed warm-up + measurement window (the paper's
//! methodology: all cores run the same simulated time and per-core IPC
//! is measured over that window). All stepping, phase handling and
//! result assembly live in [`crate::session`]; anything that needs to
//! observe a run mid-flight — probes, snapshots, incremental stepping —
//! should build a [`SimSession`] directly.

use crate::config::SystemConfig;
use crate::core::CoreStats;
use crate::scheme::L2Org;
use crate::session::SimSession;
use serde::{Deserialize, Serialize};
use sim_cache::CacheStats;
use sim_mem::OpStream;

/// Result for one core after a measured run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreResult {
    /// Workload label (benchmark name).
    pub label: String,
    /// Instructions retired during measurement.
    pub instructions: u64,
    /// Cycles elapsed during measurement.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Core stall counters for the whole run (warm-up included).
    pub stalls: CoreStats,
    /// L1D statistics over the measured phase.
    pub l1d: CacheStats,
}

/// Result of a full system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemResult {
    /// Scheme name.
    pub scheme: String,
    /// Per-core results.
    pub cores: Vec<CoreResult>,
    /// Aggregate L2 statistics.
    pub l2: CacheStats,
}

impl SystemResult {
    /// Sum of per-core IPCs (the paper's throughput metric numerator).
    pub fn throughput(&self) -> f64 {
        self.cores.iter().map(|c| c.ipc).sum()
    }

    /// Per-core IPC vector.
    pub fn ipcs(&self) -> Vec<f64> {
        self.cores.iter().map(|c| c.ipc).collect()
    }
}

/// The CMP system: the legacy one-shot facade over a session.
pub struct CmpSystem<O: L2Org> {
    session: SimSession<O>,
}

impl<O: L2Org> CmpSystem<O> {
    /// Build a system around an L2 organisation. Streams and the run
    /// window are supplied to [`CmpSystem::run`].
    pub fn new(cfg: SystemConfig, org: O) -> Self {
        let streams: Vec<Box<dyn OpStream>> = (0..cfg.num_cores)
            .map(|i| {
                Box::new(sim_mem::VecStream::loads(format!("idle{i}"), [0u64], 0))
                    as Box<dyn OpStream>
            })
            .collect();
        CmpSystem {
            session: SimSession::builder(cfg, org).streams(streams).build(),
        }
    }

    /// Run: `warmup_cycles` of unmeasured execution, then
    /// `measure_cycles` of measured execution — every core runs the
    /// whole window (the paper's fixed-time methodology). Returns
    /// per-core and aggregate results.
    pub fn run(
        &mut self,
        streams: Vec<Box<dyn OpStream>>,
        warmup_cycles: u64,
        measure_cycles: u64,
    ) -> SystemResult {
        self.session.rearm(streams, warmup_cycles, measure_cycles);
        self.session.run_to_completion()
    }

    /// The underlying session (for mid-run inspection from new code).
    pub fn session(&self) -> &SimSession<O> {
        &self.session
    }

    /// The L2 organisation (for post-run inspection).
    pub fn org(&self) -> &O {
        self.session.org()
    }

    /// System configuration.
    pub fn config(&self) -> &SystemConfig {
        self.session.config()
    }

    /// Bus statistics.
    pub fn bus_stats(&self) -> crate::bus::BusStats {
        self.session.bus_stats()
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> sim_mem::DramStats {
        self.session.dram_stats()
    }

    /// The observability counters of the last run's measured window
    /// (see [`SimSession::counters`]).
    pub fn counters(&mut self) -> snug_metrics::SimCounters {
        self.session.counters()
    }

    /// L1D statistics for one core.
    pub fn l1d_stats(&self, core: usize) -> &CacheStats {
        self.session.l1d_stats(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{ChipResources, L2Fill, L2Outcome};
    use sim_cache::SetAssocCache;
    use sim_mem::{BlockAddr, VecStream};

    /// Minimal private-L2 organisation: every slice is an isolated cache
    /// backed by DRAM (no write buffer, no sharing). Enough to test the
    /// driver.
    #[derive(Clone)]
    struct TestOrg {
        slices: Vec<SetAssocCache>,
        local_lat: u64,
    }

    impl TestOrg {
        fn new(cfg: &SystemConfig) -> Self {
            TestOrg {
                slices: (0..cfg.num_cores)
                    .map(|_| SetAssocCache::new(cfg.l2_slice))
                    .collect(),
                local_lat: cfg.l2_local_latency,
            }
        }
    }

    impl L2Org for TestOrg {
        fn access(
            &mut self,
            core: usize,
            block: BlockAddr,
            is_write: bool,
            now: u64,
            res: &mut ChipResources<'_>,
        ) -> L2Outcome {
            let r = self.slices[core].access(block, is_write);
            if r.hit {
                L2Outcome {
                    latency: self.local_lat,
                    fill: L2Fill::LocalHit,
                }
            } else {
                if let Some(ev) = r.evicted {
                    if ev.flags.dirty {
                        res.dram.write(now);
                    }
                }
                let done = res.dram.read(now);
                L2Outcome {
                    latency: self.local_lat + (done - now),
                    fill: L2Fill::Dram,
                }
            }
        }

        fn writeback(
            &mut self,
            core: usize,
            block: BlockAddr,
            _now: u64,
            _res: &mut ChipResources<'_>,
        ) {
            let set = self.slices[core].home_set(block);
            let _ = self.slices[core].touch_in_set(set, block, true);
        }

        fn slice_stats(&self, core: usize) -> &CacheStats {
            self.slices[core].stats()
        }

        fn num_cores(&self) -> usize {
            self.slices.len()
        }

        fn name(&self) -> &'static str {
            "test-l2p"
        }

        fn reset_stats(&mut self) {
            self.slices.iter_mut().for_each(|s| s.reset_stats());
        }

        fn clone_dyn(&self) -> Box<dyn L2Org> {
            Box::new(self.clone())
        }
    }

    fn small_loop_stream(label: &str, blocks: u64, gap: u32) -> Box<dyn OpStream> {
        let addrs: Vec<u64> = (0..blocks).map(|i| i * 64).collect();
        Box::new(VecStream::loads(label, addrs, gap))
    }

    #[test]
    fn all_cores_complete_budget() {
        let cfg = SystemConfig::tiny_test();
        let org = TestOrg::new(&cfg);
        let mut sys = CmpSystem::new(cfg, org);
        let streams: Vec<Box<dyn OpStream>> = (0..4)
            .map(|i| small_loop_stream(&format!("w{i}"), 4, 3))
            .collect();
        let res = sys.run(streams, 500, 20_000);
        for c in &res.cores {
            assert!(c.instructions > 0);
            assert!(c.cycles >= 19_000, "every core ran the full window");
            assert!(c.ipc > 0.0);
        }
        assert_eq!(res.scheme, "test-l2p");
    }

    #[test]
    fn cache_friendly_workload_beats_thrashing() {
        let cfg = SystemConfig::tiny_test();
        // Fits in L1 (4 sets × 2 ways = 8 blocks): near-peak IPC.
        let friendly: Vec<Box<dyn OpStream>> =
            (0..4).map(|_| small_loop_stream("fit", 4, 7)).collect();
        // 4096 distinct blocks: L1 and the 64-block L2 both thrash.
        let thrash: Vec<Box<dyn OpStream>> = (0..4)
            .map(|_| small_loop_stream("thrash", 4096, 7))
            .collect();

        let mut sys_a = CmpSystem::new(cfg, TestOrg::new(&cfg));
        let a = sys_a.run(friendly, 2_000, 50_000);
        let mut sys_b = CmpSystem::new(cfg, TestOrg::new(&cfg));
        let b = sys_b.run(thrash, 2_000, 50_000);
        assert!(
            a.throughput() > 3.0 * b.throughput(),
            "friendly {} vs thrash {}",
            a.throughput(),
            b.throughput()
        );
    }

    #[test]
    fn stores_do_not_stall_cores() {
        let cfg = SystemConfig::tiny_test();
        let addrs: Vec<u64> = (0..4096u64).map(|i| i * 64).collect();
        let load_streams: Vec<Box<dyn OpStream>> = (0..4)
            .map(|_| Box::new(VecStream::loads("ld", addrs.clone(), 3)) as Box<dyn OpStream>)
            .collect();
        let store_streams: Vec<Box<dyn OpStream>> = (0..4)
            .map(|_| {
                let ops: Vec<_> = addrs
                    .iter()
                    .map(|&a| sim_mem::CoreOp::new(3, sim_mem::Access::store(a)))
                    .collect();
                Box::new(VecStream::cycle("st", ops)) as Box<dyn OpStream>
            })
            .collect();
        let mut sys_l = CmpSystem::new(cfg, TestOrg::new(&cfg));
        let l = sys_l.run(load_streams, 2_000, 50_000);
        let mut sys_s = CmpSystem::new(cfg, TestOrg::new(&cfg));
        let s = sys_s.run(store_streams, 2_000, 50_000);
        assert!(
            s.throughput() > 2.0 * l.throughput(),
            "stores {} should vastly outpace loads {}",
            s.throughput(),
            l.throughput()
        );
    }

    #[test]
    fn ipc_measured_after_warmup_only() {
        let cfg = SystemConfig::tiny_test();
        let org = TestOrg::new(&cfg);
        let mut sys = CmpSystem::new(cfg, org);
        let streams: Vec<Box<dyn OpStream>> =
            (0..4).map(|_| small_loop_stream("fit", 4, 7)).collect();
        let res = sys.run(streams, 5_000, 20_000);
        // After warm-up the 4-block loop lives in L1: misses ≈ 0.
        assert_eq!(res.l2.misses, 0, "no L2 demand misses after warm-up");
        for c in &res.cores {
            assert!(c.ipc > 3.0, "near-peak IPC, got {}", c.ipc);
        }
    }
}
