//! The interface every L2 organisation implements.
//!
//! `sim-cmp` drives the cores, L1 caches, bus and DRAM; the five L2
//! organisations compared in the paper (L2P, L2S, CC, DSR, SNUG — built
//! in the `snug-core` crate) plug in behind [`L2Org`].

use crate::bus::Bus;
use serde::{Deserialize, Serialize};
use sim_cache::CacheStats;
use sim_mem::{BlockAddr, Dram};

/// Chip-shared resources handed to the L2 organisation on every access.
pub struct ChipResources<'a> {
    /// The snoop bus.
    pub bus: &'a mut Bus,
    /// The DRAM channel.
    pub dram: &'a mut Dram,
}

/// How an L2 demand access was satisfied (for classification and
/// latency attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum L2Fill {
    /// Hit in the core's own L2 slice (or local L2S bank).
    LocalHit,
    /// Hit in a peer slice / remote bank; block transferred cross-chip.
    RemoteHit,
    /// Satisfied by a direct read from the local write buffer.
    WriteBufferHit,
    /// Missed on chip entirely; fetched from DRAM.
    Dram,
}

/// Result of one L2 demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2Outcome {
    /// Total latency below L1 (cycles from request to data).
    pub latency: u64,
    /// Where the data came from.
    pub fill: L2Fill,
}

/// What kind of scheme-side event fired (see [`SchemeEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeEventKind {
    /// A staged scheme began a new identification/sampling stage (for
    /// SNUG: a new sampling period started and monitors are counting).
    IdentifyBegin,
    /// A staged scheme latched fresh policy state and entered grouped
    /// operation (for SNUG: G/T vectors relatched from the monitors).
    GroupedBegin,
}

/// A discrete scheme-side event surfaced to session probes.
///
/// The five organisations evolve internal policy state (SNUG's two-stage
/// period machine, DSR's duel) that per-access statistics cannot show.
/// Schemes buffer these transitions and the driving [`crate::SimSession`]
/// drains them into the probe time series, so a trace can line IPC and
/// spill behaviour up against stage boundaries and G/T relatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeEvent {
    /// The cycle at which the transition took effect (stage boundary).
    pub cycle: u64,
    /// What happened.
    pub kind: SchemeEventKind,
    /// Per-core taker-set counts latched with the event (empty when the
    /// event carries no G/T information).
    pub takers: Vec<u32>,
}

/// An L2 cache organisation for the whole chip.
///
/// Implementations own all L2 state (slices or banks, write buffers,
/// shadow structures, policy counters) and are responsible for their own
/// DRAM/bus traffic through [`ChipResources`]. Time is supplied by the
/// caller as the requesting core's local cycle; the simulator guarantees
/// the value is globally non-decreasing across calls.
pub trait L2Org {
    /// A demand access from `core` for `block` at time `now` (an L1
    /// miss). Returns the latency and fill classification; all internal
    /// state (fills, evictions, spills, monitors) is updated.
    fn access(
        &mut self,
        core: usize,
        block: BlockAddr,
        is_write: bool,
        now: u64,
        res: &mut ChipResources<'_>,
    ) -> L2Outcome;

    /// A dirty writeback from `core`'s L1 for `block` (not a demand
    /// access: no allocation, no monitor updates). Default: mark the
    /// line dirty if present, otherwise forward to the write-back path.
    fn writeback(&mut self, core: usize, block: BlockAddr, now: u64, res: &mut ChipResources<'_>);

    /// Stats for one core's slice (for L2S: attributed to the core's
    /// requests rather than a physical slice).
    fn slice_stats(&self, core: usize) -> &CacheStats;

    /// Aggregate stats over the whole organisation.
    fn aggregate_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in 0..self.num_cores() {
            total.merge(self.slice_stats(c));
        }
        total
    }

    /// Number of cores/slices.
    fn num_cores(&self) -> usize;

    /// Scheme name for reports ("L2P", "L2S", "CC", "DSR", "SNUG").
    fn name(&self) -> &'static str;

    /// Reset statistics at the end of warm-up (cache contents retained).
    fn reset_stats(&mut self);

    /// Deep-copy this organisation behind a fresh box, for session
    /// snapshots. Every scheme owns plain-data state, so this is a
    /// straight clone; the type-erased form lets `Box<dyn L2Org>`
    /// sessions capture their organisation without knowing the concrete
    /// scheme.
    fn clone_dyn(&self) -> Box<dyn L2Org>;

    /// Drain buffered scheme-side events (stage transitions, policy
    /// relatches) accumulated since the last drain. Organisations
    /// without staged policy state return nothing.
    fn drain_events(&mut self) -> Vec<SchemeEvent> {
        Vec::new()
    }
}

/// Organisation cloning that preserves the concrete type — what
/// [`crate::SimSession::snapshot`] needs so a restored session has the
/// same `O` as the one it was captured from.
///
/// Every `L2Org + Clone` type gets this for free; `Box<dyn L2Org>`
/// (the factory's type-erased form) routes through
/// [`L2Org::clone_dyn`].
pub trait CloneOrg: L2Org {
    /// A deep copy of this organisation.
    fn clone_org(&self) -> Self
    where
        Self: Sized;
}

impl<T: L2Org + Clone> CloneOrg for T {
    fn clone_org(&self) -> Self {
        self.clone()
    }
}

impl CloneOrg for Box<dyn L2Org> {
    fn clone_org(&self) -> Self {
        (**self).clone_dyn()
    }
}

/// Forwarding impl so `CmpSystem<Box<dyn L2Org>>` works with the
/// scheme factory in `snug-core`.
impl L2Org for Box<dyn L2Org> {
    fn access(
        &mut self,
        core: usize,
        block: BlockAddr,
        is_write: bool,
        now: u64,
        res: &mut ChipResources<'_>,
    ) -> L2Outcome {
        (**self).access(core, block, is_write, now, res)
    }

    fn writeback(&mut self, core: usize, block: BlockAddr, now: u64, res: &mut ChipResources<'_>) {
        (**self).writeback(core, block, now, res)
    }

    fn slice_stats(&self, core: usize) -> &CacheStats {
        (**self).slice_stats(core)
    }

    fn num_cores(&self) -> usize {
        (**self).num_cores()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }

    fn clone_dyn(&self) -> Box<dyn L2Org> {
        (**self).clone_dyn()
    }

    fn drain_events(&mut self) -> Vec<SchemeEvent> {
        (**self).drain_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BusConfig;
    use sim_mem::DramConfig;

    /// A trivial organisation used to exercise the trait's defaults.
    #[derive(Clone)]
    struct NullOrg {
        stats: Vec<CacheStats>,
    }

    impl L2Org for NullOrg {
        fn access(
            &mut self,
            core: usize,
            _block: BlockAddr,
            _is_write: bool,
            now: u64,
            res: &mut ChipResources<'_>,
        ) -> L2Outcome {
            self.stats[core].misses += 1;
            let done = res.dram.read(now);
            L2Outcome {
                latency: done - now,
                fill: L2Fill::Dram,
            }
        }

        fn writeback(
            &mut self,
            _core: usize,
            _block: BlockAddr,
            now: u64,
            res: &mut ChipResources<'_>,
        ) {
            res.dram.write(now);
        }

        fn slice_stats(&self, core: usize) -> &CacheStats {
            &self.stats[core]
        }

        fn num_cores(&self) -> usize {
            self.stats.len()
        }

        fn name(&self) -> &'static str {
            "null"
        }

        fn reset_stats(&mut self) {
            self.stats.iter_mut().for_each(|s| s.reset());
        }

        fn clone_dyn(&self) -> Box<dyn L2Org> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn aggregate_stats_merges_slices() {
        let mut org = NullOrg {
            stats: vec![CacheStats::default(); 2],
        };
        let mut bus = Bus::new(BusConfig::paper());
        let mut dram = Dram::new(DramConfig::uncontended(300));
        let mut res = ChipResources {
            bus: &mut bus,
            dram: &mut dram,
        };
        let out = org.access(0, BlockAddr(1), false, 0, &mut res);
        assert_eq!(out.latency, 300);
        org.access(1, BlockAddr(2), false, 0, &mut res);
        assert_eq!(org.aggregate_stats().misses, 2);
        org.reset_stats();
        assert_eq!(org.aggregate_stats().misses, 0);
    }
}
