//! Simplified out-of-order core timing model.
//!
//! The paper simulates full SimpleScalar OOO cores. For the reproduction
//! we use a latency-accounting model that preserves exactly the
//! properties the evaluation depends on:
//!
//! * issue bandwidth bounds IPC from above (8-wide);
//! * load misses overlap with independent work up to the ROB reach
//!   (memory-level parallelism), so a 10-cycle local L2 hit is largely
//!   hidden while a 300-cycle DRAM miss is largely exposed;
//! * a bounded number of misses may be in flight (MSHR/LSQ pressure);
//! * stores retire through buffers and do not stall the core.
//!
//! This makes per-core IPC a faithful monotone function of the L2
//! hit/miss profile — the quantity the paper's three metrics aggregate.

use crate::config::CoreConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An outstanding load miss: data arrives at `completes_at`; the core
/// must stall on it once it has run `rob_limit` instructions ahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OutstandingMiss {
    completes_at: u64,
    rob_limit: u64,
}

/// Per-core performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles stalled waiting on the ROB-reach limit.
    pub rob_stall_cycles: u64,
    /// Cycles stalled waiting for a free outstanding-miss slot.
    pub mshr_stall_cycles: u64,
    /// Cycles stalled on critical (dependent) load misses.
    pub dep_stall_cycles: u64,
    /// Load misses sent below L1.
    pub load_misses: u64,
}

/// The core timing model.
#[derive(Debug, Clone)]
pub struct CoreModel {
    cfg: CoreConfig,
    cycle: u64,
    instrs: u64,
    /// Sub-cycle issue debt: instructions issued this cycle so far.
    issue_slot: u32,
    outstanding: VecDeque<OutstandingMiss>,
    stats: CoreStats,
}

impl CoreModel {
    /// Create a core at cycle 0.
    pub fn new(cfg: CoreConfig) -> Self {
        CoreModel {
            cfg,
            cycle: 0,
            instrs: 0,
            issue_slot: 0,
            outstanding: VecDeque::with_capacity(cfg.max_outstanding),
            stats: CoreStats::default(),
        }
    }

    /// Current core-local cycle.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Instructions retired so far.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.instrs
    }

    /// Issue `n` instructions (the non-memory gap plus the memory op
    /// itself), consuming issue bandwidth and resolving any ROB-reach
    /// stalls caused by outstanding misses.
    pub fn issue(&mut self, n: u64) {
        // Drain outstanding misses whose ROB limit falls inside this run.
        let end_pos = self.instrs + n;
        while let Some(&m) = self.outstanding.front() {
            if m.rob_limit <= end_pos {
                if m.completes_at > self.cycle {
                    self.stats.rob_stall_cycles += m.completes_at - self.cycle;
                    self.cycle = m.completes_at;
                    self.issue_slot = 0;
                }
                self.outstanding.pop_front();
            } else {
                break;
            }
        }
        // Charge issue bandwidth. Issue widths are powers of two in every
        // shipped configuration; keep the hot path a shift/mask and fall
        // back to the division only for exotic widths.
        let total = self.issue_slot as u64 + n;
        let w = self.cfg.issue_width as u64;
        if w & (w - 1) == 0 {
            self.cycle += total >> w.trailing_zeros();
            // snug-lint: allow(no-lossy-cast-in-kernel, "masked by w - 1, and issue_width is a u32")
            self.issue_slot = (total & (w - 1)) as u32;
        } else {
            self.cycle += total / w;
            // snug-lint: allow(no-lossy-cast-in-kernel, "remainder is < w, and issue_width is a u32")
            self.issue_slot = (total % w) as u32;
        }
        self.instrs = end_pos;
    }

    /// Record a load that completes at absolute time `completes_at`.
    /// If it completes in the past (cache hit already accounted in the
    /// latency) nothing is tracked. Otherwise it occupies an
    /// outstanding-miss slot; if all slots are busy the core stalls until
    /// the oldest miss returns.
    pub fn track_load(&mut self, completes_at: u64) {
        if completes_at <= self.cycle {
            return;
        }
        self.stats.load_misses += 1;
        if self.outstanding.len() == self.cfg.max_outstanding {
            // snug-lint: allow(panic-audit, "guarded by len == max_outstanding, which is validated nonzero in SystemConfig")
            let oldest = self.outstanding.pop_front().expect("non-empty");
            if oldest.completes_at > self.cycle {
                self.stats.mshr_stall_cycles += oldest.completes_at - self.cycle;
                self.cycle = oldest.completes_at;
                self.issue_slot = 0;
            }
        }
        self.outstanding.push_back(OutstandingMiss {
            completes_at,
            rob_limit: self.instrs + self.cfg.rob_size,
        });
    }

    /// Serialise on a critical load: the core cannot proceed past a
    /// dependent miss (pointer chasing), so its full latency is exposed.
    pub fn stall_until(&mut self, completes_at: u64) {
        if completes_at > self.cycle {
            self.stats.dep_stall_cycles += completes_at - self.cycle;
            self.cycle = completes_at;
            self.issue_slot = 0;
        }
    }

    /// Force completion of all outstanding misses (end of simulation).
    pub fn drain(&mut self) {
        while let Some(m) = self.outstanding.pop_front() {
            if m.completes_at > self.cycle {
                self.stats.rob_stall_cycles += m.completes_at - self.cycle;
                self.cycle = m.completes_at;
                self.issue_slot = 0;
            }
        }
    }

    /// Advance the local clock to at least `t` (used to keep a finished
    /// core's clock from falling behind the global horizon).
    pub fn advance_to(&mut self, t: u64) {
        if t > self.cycle {
            self.cycle = t;
            self.issue_slot = 0;
        }
    }

    /// Instantaneous IPC since cycle 0.
    pub fn ipc(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycle as f64
        }
    }

    /// Stall counters.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Configuration accessor.
    pub fn config(&self) -> CoreConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CoreConfig {
        CoreConfig {
            issue_width: 4,
            rob_size: 16,
            max_outstanding: 2,
        }
    }

    #[test]
    fn issue_bandwidth_bounds_ipc() {
        let mut c = CoreModel::new(cfg());
        c.issue(400);
        assert_eq!(c.cycle(), 100, "4-wide: 400 instrs in 100 cycles");
        assert!((c.ipc() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn partial_cycle_issue_accumulates() {
        let mut c = CoreModel::new(cfg());
        c.issue(2);
        assert_eq!(c.cycle(), 0, "half a cycle consumed");
        c.issue(2);
        assert_eq!(c.cycle(), 1);
    }

    #[test]
    fn short_latency_hidden_by_rob() {
        let mut c = CoreModel::new(cfg());
        c.issue(1);
        c.track_load(c.cycle() + 10); // completes at ~10
                                      // 16 instructions of ROB reach at width 4 = 4 cycles of cover;
                                      // the remaining ~6 cycles must be stalled when reach is exhausted.
        c.issue(16);
        // 10 cycles of stall, then 16 instructions at width 4.
        assert_eq!(
            c.cycle(),
            14,
            "stalled until the load returned, then issued"
        );
        assert!(c.stats().rob_stall_cycles > 0);
    }

    #[test]
    fn long_latency_mostly_exposed() {
        let mut c = CoreModel::new(cfg());
        c.issue(1);
        c.track_load(c.cycle() + 300);
        c.issue(16);
        assert_eq!(c.cycle(), 304, "300 cycles exposed + 4 issue cycles");
    }

    #[test]
    fn independent_misses_overlap() {
        let mut c = CoreModel::new(cfg());
        // Two misses issued close together both complete around t=300;
        // total time is ~300, not ~600 (MLP).
        c.issue(1);
        c.track_load(300);
        c.issue(1);
        c.track_load(302);
        c.issue(64);
        // Overlapped: ~302 stall + 16 issue cycles; serialised would be ~600.
        assert!(c.cycle() <= 320, "misses overlapped, got {}", c.cycle());
    }

    #[test]
    fn mshr_pressure_serialises_excess_misses() {
        let mut c = CoreModel::new(cfg()); // max_outstanding = 2
        c.track_load(100);
        c.track_load(100);
        // Third miss needs a slot: stalls until the first completes.
        c.track_load(400);
        assert_eq!(c.cycle(), 100);
        assert!(c.stats().mshr_stall_cycles > 0);
    }

    #[test]
    fn completed_loads_not_tracked() {
        let mut c = CoreModel::new(cfg());
        c.issue(100);
        c.track_load(c.cycle()); // already complete
        c.issue(1000);
        assert_eq!(c.stats().load_misses, 0);
        assert_eq!(c.stats().rob_stall_cycles, 0);
    }

    #[test]
    fn drain_completes_everything() {
        let mut c = CoreModel::new(cfg());
        c.track_load(500);
        c.drain();
        assert_eq!(c.cycle(), 500);
    }

    #[test]
    fn advance_to_monotone() {
        let mut c = CoreModel::new(cfg());
        c.advance_to(50);
        assert_eq!(c.cycle(), 50);
        c.advance_to(10);
        assert_eq!(c.cycle(), 50, "never goes backwards");
    }
}
