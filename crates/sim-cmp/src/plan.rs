//! Run plans: a warm-up spec plus a first-class stopping policy.
//!
//! Every run used to be a raw `(warmup_cycles, measure_cycles)` pair —
//! a guessed constant calibrated offline. A [`RunPlan`] makes "how long
//! is long enough" a policy decision instead:
//!
//! * [`StopSpec::FixedCycles`] reproduces the paper's fixed-window
//!   methodology exactly (and fingerprints identically to the legacy
//!   `RunBudget`, so existing content-addressed results keep matching);
//! * [`StopSpec::Converged`] stops at the first window boundary where
//!   the rolling-window throughput estimator
//!   ([`snug_metrics::RollingThroughput`]) reports the measured
//!   throughput stable to within `rel_epsilon`, bounded by
//!   `min_cycles`/`max_cycles`.
//!
//! * [`StopSpec::Reconverged`] handles phase-change workloads: the
//!   measured window is segmented at the scheduled shift cycles, the
//!   rolling window restarts at each boundary (a pre-shift plateau must
//!   never vouch for the post-shift regime), per-phase plateau means
//!   are recorded, and the run stops only once the *final* phase has
//!   re-stabilised.
//!
//! The split between [`StopSpec`] (plain `Copy` data: what goes into
//! configurations, store keys and CLI flags) and [`StopPolicy`] (the
//! stateful trait object a [`crate::SimSession`] drives) keeps plans
//! hashable and comparable while the runtime side carries the
//! estimator state — which session snapshots capture, so early exit is
//! deterministic and snapshot/restore-safe. The shift boundaries a
//! `Reconverged` policy segments at are not part of the spec (they
//! belong to the workload's phase schedule); the session supplies them
//! when it materialises the policy via
//! [`RunPlan::policy_with_boundaries`].

use snug_metrics::{PhasePlateau, RollingThroughput};

/// Samples a [`Converged`] policy's rolling window holds: convergence
/// is judged over the last `WINDOW_SAMPLES` intervals of
/// `window_cycles` each, so the earliest possible stop is
/// `WINDOW_SAMPLES * window_cycles` measured cycles.
pub const WINDOW_SAMPLES: usize = 4;

/// A run plan: warm-up length plus the stopping policy for the
/// measured window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPlan {
    /// Unmeasured warm-up cycles.
    pub warmup_cycles: u64,
    /// When the measured window ends.
    pub stop: StopSpec,
}

/// The data form of a stopping policy (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopSpec {
    /// Run exactly `measure_cycles` of measured execution — the paper's
    /// fixed-window methodology.
    FixedCycles {
        /// Measured cycles.
        measure_cycles: u64,
    },
    /// Stop at the first `window_cycles` boundary (past `min_cycles`,
    /// with a full rolling window) where the last [`WINDOW_SAMPLES`]
    /// interval throughputs agree to within `rel_epsilon`; never run
    /// past `max_cycles`.
    Converged {
        /// Length of one throughput sample interval in cycles.
        window_cycles: u64,
        /// Relative spread threshold ((max − min) / mean) under which
        /// the window counts as converged.
        rel_epsilon: f64,
        /// Measured cycles before which the run never stops (0: only
        /// the full-window requirement gates the earliest stop).
        min_cycles: u64,
        /// Hard ceiling on measured cycles (the fixed budget this plan
        /// is an early-exit variant of).
        max_cycles: u64,
    },
    /// Like [`StopSpec::Converged`], but for phase-change workloads:
    /// the measured window is segmented at the workload's shift
    /// boundaries, the rolling window restarts at each one, and the run
    /// stops only when the phase after the *last* shift has
    /// re-stabilised. With no shifts inside the window it degrades to
    /// plain convergence. The boundaries come from the session's phase
    /// schedule, not from this spec.
    Reconverged {
        /// Length of one throughput sample interval in cycles.
        window_cycles: u64,
        /// Relative spread threshold ((max − min) / mean).
        rel_epsilon: f64,
        /// Measured cycles before which the run never stops.
        min_cycles: u64,
        /// Hard ceiling on measured cycles.
        max_cycles: u64,
    },
}

impl RunPlan {
    /// A fixed-window plan — the drop-in replacement for the legacy
    /// `RunBudget`.
    pub fn fixed(warmup_cycles: u64, measure_cycles: u64) -> RunPlan {
        RunPlan {
            warmup_cycles,
            stop: StopSpec::FixedCycles { measure_cycles },
        }
    }

    /// Swap this plan's stop policy for convergence-based early exit:
    /// the current measured window becomes the `max_cycles` ceiling.
    pub fn until_converged(self, window_cycles: u64, rel_epsilon: f64) -> RunPlan {
        assert!(window_cycles > 0, "window must be positive");
        assert!(rel_epsilon >= 0.0, "epsilon must be non-negative");
        RunPlan {
            warmup_cycles: self.warmup_cycles,
            stop: StopSpec::Converged {
                window_cycles,
                rel_epsilon,
                min_cycles: 0,
                max_cycles: self.measure_cycles(),
            },
        }
    }

    /// Swap this plan's stop policy for re-convergence under a
    /// phase-change schedule: the current measured window becomes the
    /// ceiling, and the run ends once throughput has re-stabilised
    /// after the last workload shift (see [`StopSpec::Reconverged`]).
    pub fn until_reconverged(self, window_cycles: u64, rel_epsilon: f64) -> RunPlan {
        assert!(window_cycles > 0, "window must be positive");
        assert!(rel_epsilon >= 0.0, "epsilon must be non-negative");
        RunPlan {
            warmup_cycles: self.warmup_cycles,
            stop: StopSpec::Reconverged {
                window_cycles,
                rel_epsilon,
                min_cycles: 0,
                max_cycles: self.measure_cycles(),
            },
        }
    }

    /// The measured-window ceiling: the full window for fixed plans,
    /// `max_cycles` for converged ones.
    pub fn measure_cycles(&self) -> u64 {
        match self.stop {
            StopSpec::FixedCycles { measure_cycles } => measure_cycles,
            StopSpec::Converged { max_cycles, .. } | StopSpec::Reconverged { max_cycles, .. } => {
                max_cycles
            }
        }
    }

    /// The absolute cycle past which no plan ever runs.
    pub fn horizon(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles()
    }

    /// Whether this plan can stop before its horizon.
    pub fn can_stop_early(&self) -> bool {
        matches!(
            self.stop,
            StopSpec::Converged { .. } | StopSpec::Reconverged { .. }
        )
    }

    /// Materialise the runtime policy a session drives. A
    /// [`StopSpec::Reconverged`] plan built this way has no phase
    /// boundaries (it behaves as plain convergence); sessions with a
    /// phase schedule use [`RunPlan::policy_with_boundaries`].
    pub fn policy(&self) -> Box<dyn StopPolicy> {
        self.policy_with_boundaries(&[])
    }

    /// Materialise the runtime policy, segmenting a
    /// [`StopSpec::Reconverged`] plan at `boundaries` — the
    /// measured-relative cycles the workload shifts at (fixed and
    /// plain-converged plans ignore them).
    pub fn policy_with_boundaries(&self, boundaries: &[u64]) -> Box<dyn StopPolicy> {
        match self.stop {
            StopSpec::FixedCycles { measure_cycles } => Box::new(FixedCycles { measure_cycles }),
            StopSpec::Converged {
                window_cycles,
                rel_epsilon,
                min_cycles,
                max_cycles,
            } => Box::new(Converged::new(
                window_cycles,
                rel_epsilon,
                min_cycles,
                max_cycles,
            )),
            StopSpec::Reconverged {
                window_cycles,
                rel_epsilon,
                min_cycles,
                max_cycles,
            } => Box::new(Reconverged::new(
                window_cycles,
                rel_epsilon,
                min_cycles,
                max_cycles,
                boundaries,
            )),
        }
    }

    /// Revision marker appended to every early-exit plan fingerprint.
    /// Bump it whenever the *observation semantics* behind the stop
    /// decision change (what samples the estimator sees, where the
    /// grid is anchored), so cached early-exit entries produced under
    /// the old semantics stop matching instead of silently pacing new
    /// runs. `obs/v2`: grid anchored at the measurement-start frontier
    /// and sub-half-stride samples skipped (the partial-interval fix).
    /// Fixed plans are untouched by observation semantics and never
    /// carry the marker — their keys stay frozen.
    pub const OBSERVATION_REVISION: &'static str = "obs/v2";

    /// Stable content-key fragment. Fixed plans render exactly as the
    /// legacy `RunBudget` debug string, so every result keyed before
    /// the plan layer existed keeps matching; converged and reconverged
    /// plans render their full parameters plus
    /// [`RunPlan::OBSERVATION_REVISION`] and therefore live under their
    /// own keys.
    pub fn fingerprint(&self) -> String {
        match self.stop {
            StopSpec::FixedCycles { measure_cycles } => format!(
                "RunBudget {{ warmup_cycles: {}, measure_cycles: {} }}",
                self.warmup_cycles, measure_cycles
            ),
            StopSpec::Converged { .. } | StopSpec::Reconverged { .. } => {
                format!("{self:?} [{}]", RunPlan::OBSERVATION_REVISION)
            }
        }
    }
}

/// One measured-window observation delivered to a stop policy at its
/// stride boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopObservation {
    /// Frontier cycle of the observation.
    pub cycle: u64,
    /// Measured cycles completed so far (frontier − warm-up).
    pub measured_cycles: u64,
    /// Frontier cycles covered since the previous observation (the
    /// interval this throughput sample integrates over). Policies use
    /// it to reject partial-stride intervals: a sample covering less
    /// than one full stride integrates too few operations and its noise
    /// can fake — or defeat — convergence near the ceiling.
    pub interval_cycles: u64,
    /// Sum of per-core IPCs over the interval since the previous
    /// observation.
    pub throughput: f64,
}

/// The runtime side of a stopping policy: stateful, driven by the
/// session at `observe_stride` boundaries of the measured window.
///
/// Implementations must be deterministic functions of the observation
/// sequence — the session clones them into snapshots (via
/// [`StopPolicy::clone_policy`]) so a restored run resumes with the
/// identical stopping state.
pub trait StopPolicy: Send {
    /// Hard ceiling on the measured window, in cycles.
    fn max_measure_cycles(&self) -> u64;

    /// Cycle stride at which the policy wants observations (0: never
    /// observe — the run always reaches the ceiling).
    fn observe_stride(&self) -> u64 {
        0
    }

    /// Feed one observation; `true` stops the run at this boundary.
    fn observe(&mut self, _obs: &StopObservation) -> bool {
        false
    }

    /// Per-phase plateau records (re-convergence policies only; the
    /// default is empty). The last entry describes the phase in
    /// progress when the run ended.
    fn plateaus(&self) -> Vec<PhasePlateau> {
        Vec::new()
    }

    /// Deep copy, estimator state included.
    fn clone_policy(&self) -> Box<dyn StopPolicy>;

    /// Short human-readable description for logs.
    fn describe(&self) -> String;
}

/// Fixed-window stopping: run the whole `measure_cycles`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedCycles {
    /// Measured cycles.
    pub measure_cycles: u64,
}

impl StopPolicy for FixedCycles {
    fn max_measure_cycles(&self) -> u64 {
        self.measure_cycles
    }

    fn clone_policy(&self) -> Box<dyn StopPolicy> {
        Box::new(*self)
    }

    fn describe(&self) -> String {
        format!("fixed({} cycles)", self.measure_cycles)
    }
}

/// Convergence-based stopping: a rolling window of interval
/// throughputs must agree to within `rel_epsilon` (see
/// [`StopSpec::Converged`] for the parameter semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct Converged {
    /// Length of one throughput sample interval in cycles.
    pub window_cycles: u64,
    /// Relative spread threshold.
    pub rel_epsilon: f64,
    /// Measured cycles before which the run never stops.
    pub min_cycles: u64,
    /// Hard ceiling on measured cycles.
    pub max_cycles: u64,
    window: RollingThroughput,
}

impl Converged {
    /// Build the policy with an empty rolling window.
    pub fn new(window_cycles: u64, rel_epsilon: f64, min_cycles: u64, max_cycles: u64) -> Self {
        assert!(window_cycles > 0, "window must be positive");
        Converged {
            window_cycles,
            rel_epsilon,
            min_cycles,
            max_cycles,
            window: RollingThroughput::new(WINDOW_SAMPLES),
        }
    }
}

impl StopPolicy for Converged {
    fn max_measure_cycles(&self) -> u64 {
        self.max_cycles
    }

    fn observe_stride(&self) -> u64 {
        self.window_cycles
    }

    fn observe(&mut self, obs: &StopObservation) -> bool {
        // A partial-stride interval integrates far fewer operations
        // than every other sample in the window; its extra noise could
        // fake convergence (or hold it off) near the ceiling, so it is
        // dropped rather than pushed. "Partial" is less than half a
        // stride: observation frontiers overshoot their grid boundary
        // by up to one operation, so honest intervals jitter just
        // around the stride length.
        if obs.interval_cycles * 2 < self.window_cycles {
            return false;
        }
        self.window.push(obs.throughput);
        obs.measured_cycles >= self.min_cycles && self.window.converged(self.rel_epsilon)
    }

    fn clone_policy(&self) -> Box<dyn StopPolicy> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!(
            "converged(window {} cycles, eps {}, {}..={} cycles)",
            self.window_cycles, self.rel_epsilon, self.min_cycles, self.max_cycles
        )
    }
}

/// Re-convergence stopping for phase-change workloads: the measured
/// window is segmented at the workload's shift boundaries, each segment
/// runs its own rolling window (cleared at every boundary), per-phase
/// plateau means are recorded, and the run stops only once the phase
/// after the last shift has re-stabilised (see
/// [`StopSpec::Reconverged`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Reconverged {
    /// Length of one throughput sample interval in cycles.
    pub window_cycles: u64,
    /// Relative spread threshold.
    pub rel_epsilon: f64,
    /// Measured cycles before which the run never stops.
    pub min_cycles: u64,
    /// Hard ceiling on measured cycles.
    pub max_cycles: u64,
    /// Measured-relative shift cycles segmenting the window (sorted,
    /// strictly inside `(0, max_cycles)`).
    boundaries: Vec<u64>,
    /// Index of the phase currently being measured (0 = before the
    /// first shift; `boundaries.len()` = after the last).
    phase: usize,
    /// Measured cycle the current phase began at.
    phase_start: u64,
    /// Measured cycle the current phase's window first reported
    /// convergence (`None` while still ramping).
    settled_at: Option<u64>,
    window: RollingThroughput,
    /// Completed phases' plateau records.
    recorded: Vec<PhasePlateau>,
}

impl Reconverged {
    /// Build the policy. `boundaries` are the measured-relative cycles
    /// the workload shifts at; values outside `(0, max_cycles)` are
    /// dropped (a shift during warm-up or past the ceiling never
    /// segments the measured window), duplicates collapse.
    pub fn new(
        window_cycles: u64,
        rel_epsilon: f64,
        min_cycles: u64,
        max_cycles: u64,
        boundaries: &[u64],
    ) -> Self {
        assert!(window_cycles > 0, "window must be positive");
        let mut bounds: Vec<u64> = boundaries
            .iter()
            .copied()
            .filter(|&b| b > 0 && b < max_cycles)
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        Reconverged {
            window_cycles,
            rel_epsilon,
            min_cycles,
            max_cycles,
            boundaries: bounds,
            phase: 0,
            phase_start: 0,
            settled_at: None,
            window: RollingThroughput::new(WINDOW_SAMPLES),
            recorded: Vec::new(),
        }
    }

    /// The phase boundaries the policy segments at.
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// The plateau record of the phase in progress.
    fn current_plateau(&self) -> PhasePlateau {
        PhasePlateau {
            phase: self.phase,
            start_cycle: self.phase_start,
            converged_at: self.settled_at,
            mean_throughput: self.window.mean(),
        }
    }
}

impl StopPolicy for Reconverged {
    fn max_measure_cycles(&self) -> u64 {
        self.max_cycles
    }

    fn observe_stride(&self) -> u64 {
        self.window_cycles
    }

    fn observe(&mut self, obs: &StopObservation) -> bool {
        // Roll past every boundary this observation reached: finalise
        // the outgoing phase's plateau and restart the window so the
        // old plateau never vouches for the new regime. The straddling
        // sample itself mixes pre- and post-shift throughput, so it is
        // discarded.
        let mut straddled = false;
        while self.phase < self.boundaries.len()
            && obs.measured_cycles >= self.boundaries[self.phase]
        {
            let boundary = self.boundaries[self.phase];
            self.recorded.push(self.current_plateau());
            self.window.clear();
            self.phase += 1;
            self.phase_start = boundary;
            self.settled_at = None;
            straddled = true;
        }
        if straddled || obs.interval_cycles * 2 < self.window_cycles {
            // Straddling or partial-stride samples carry mixed or
            // under-integrated signal — skip them (same half-stride
            // rule as [`Converged::observe`]).
            return false;
        }
        self.window.push(obs.throughput);
        if self.settled_at.is_none() && self.window.converged(self.rel_epsilon) {
            self.settled_at = Some(obs.measured_cycles);
        }
        // Only the final phase's stabilisation ends the run; earlier
        // phases wait for their scheduled shift.
        self.phase == self.boundaries.len()
            && self.settled_at.is_some()
            && obs.measured_cycles >= self.min_cycles
    }

    fn plateaus(&self) -> Vec<PhasePlateau> {
        let mut out = self.recorded.clone();
        out.push(self.current_plateau());
        out
    }

    fn clone_policy(&self) -> Box<dyn StopPolicy> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!(
            "reconverged(window {} cycles, eps {}, {}..={} cycles, {} shift boundaries)",
            self.window_cycles,
            self.rel_epsilon,
            self.min_cycles,
            self.max_cycles,
            self.boundaries.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_fingerprint_matches_the_legacy_run_budget_debug() {
        // The exact string `{:?}` printed for the old `RunBudget` —
        // pinned so every pre-plan store key keeps matching.
        assert_eq!(
            RunPlan::fixed(300_000, 3_000_000).fingerprint(),
            "RunBudget { warmup_cycles: 300000, measure_cycles: 3000000 }"
        );
    }

    #[test]
    fn converged_fingerprint_is_distinct_and_parameter_sensitive() {
        let fixed = RunPlan::fixed(300_000, 3_000_000);
        let conv = fixed.until_converged(300_000, 0.01);
        assert_ne!(conv.fingerprint(), fixed.fingerprint());
        assert!(
            conv.fingerprint().ends_with("[obs/v2]"),
            "early-exit fingerprints carry the observation revision"
        );
        assert_ne!(
            conv.fingerprint(),
            format!("{conv:?}"),
            "pre-revision converged keys (bare debug strings) are orphaned"
        );
        assert_ne!(
            conv.fingerprint(),
            fixed.until_converged(300_000, 0.02).fingerprint(),
            "epsilon is part of the key"
        );
        assert_ne!(
            conv.fingerprint(),
            fixed.until_converged(150_000, 0.01).fingerprint(),
            "window is part of the key"
        );
        assert_eq!(conv.fingerprint(), conv.fingerprint());
    }

    #[test]
    fn until_converged_keeps_the_budget_as_ceiling() {
        let plan = RunPlan::fixed(10_000, 60_000).until_converged(5_000, 0.1);
        assert_eq!(plan.warmup_cycles, 10_000);
        assert_eq!(plan.measure_cycles(), 60_000);
        assert_eq!(plan.horizon(), 70_000);
        assert!(plan.can_stop_early());
        assert!(!RunPlan::fixed(1, 2).can_stop_early());
    }

    #[test]
    fn fixed_policy_never_observes_or_stops() {
        let policy = RunPlan::fixed(0, 500).policy();
        assert_eq!(policy.max_measure_cycles(), 500);
        assert_eq!(policy.observe_stride(), 0);
    }

    #[test]
    fn converged_policy_stops_on_a_full_stable_window() {
        let mut policy = Converged::new(100, 0.05, 0, 10_000);
        let obs = |k: u64, tp: f64| StopObservation {
            cycle: 1_000 + k * 100,
            measured_cycles: k * 100,
            interval_cycles: 100,
            throughput: tp,
        };
        // Three stable samples: window not yet full.
        for k in 1..=3 {
            assert!(!policy.observe(&obs(k, 2.0)));
        }
        // Fourth: full window, zero spread → stop.
        assert!(policy.observe(&obs(4, 2.0)));
    }

    #[test]
    fn converged_policy_respects_min_cycles_and_rolls_outliers_out() {
        let mut policy = Converged::new(100, 0.05, 600, 10_000);
        let obs = |k: u64, tp: f64| StopObservation {
            cycle: 1_000 + k * 100,
            measured_cycles: k * 100,
            interval_cycles: 100,
            throughput: tp,
        };
        assert!(!policy.observe(&obs(1, 9.0)), "outlier first sample");
        for k in 2..=5 {
            // Stable from sample 2 on; window is stable at k = 5 but
            // min_cycles = 600 holds the run until k = 6.
            assert!(!policy.observe(&obs(k, 2.0)), "sample {k}");
        }
        assert!(policy.observe(&obs(6, 2.0)));
    }

    #[test]
    fn partial_stride_samples_are_skipped_not_pushed() {
        // A deflated partial-interval sample near the ceiling must
        // neither defeat convergence (by widening the spread) nor help
        // fake it (by completing the window early).
        let obs = |m: u64, interval: u64, tp: f64| StopObservation {
            cycle: 1_000 + m,
            measured_cycles: m,
            interval_cycles: interval,
            throughput: tp,
        };

        // Defeat case: three stable samples, then a deflated partial
        // one. Skipping it keeps the window clean, so the next full
        // sample converges on schedule.
        let mut policy = Converged::new(100, 0.05, 0, 10_000);
        for k in 1..=3 {
            assert!(!policy.observe(&obs(k * 100, 100, 2.0)));
        }
        assert!(
            !policy.observe(&obs(340, 40, 0.4)),
            "partial deflated sample is dropped"
        );
        assert!(
            policy.observe(&obs(450, 110, 2.0)),
            "the fourth full sample completes a clean window"
        );

        // Fake case: partial samples must not count toward the window,
        // so four of them cannot produce an early stop.
        let mut policy = Converged::new(100, 0.05, 0, 10_000);
        for k in 1..=4 {
            assert!(
                !policy.observe(&obs(k * 40, 40, 2.0)),
                "sample {k}: partial intervals never fill the window"
            );
        }

        // Boundary-overshoot jitter is NOT partial: intervals a little
        // under the stride still count (observation frontiers overshoot
        // the grid by up to one operation).
        let mut policy = Converged::new(100, 0.05, 0, 10_000);
        for k in 1..=3 {
            assert!(!policy.observe(&obs(k * 100, 97, 2.0)));
        }
        assert!(policy.observe(&obs(400, 97, 2.0)));
    }

    #[test]
    fn reconverged_stops_then_shifts_then_extends_then_restops() {
        // One shift boundary at measured cycle 1_000; stride 100.
        let mut policy = Reconverged::new(100, 0.05, 0, 10_000, &[1_000]);
        assert_eq!(policy.observe_stride(), 100);
        let obs = |m: u64, tp: f64| StopObservation {
            cycle: 5_000 + m,
            measured_cycles: m,
            interval_cycles: 100,
            throughput: tp,
        };
        // Phase 0 stabilises at 2.0 well before the boundary — the run
        // must NOT stop (a shift is still scheduled).
        for k in 1..=9 {
            assert!(!policy.observe(&obs(k * 100, 2.0)), "phase 0, sample {k}");
        }
        // Crossing the boundary: the straddling sample is discarded and
        // the window restarts.
        assert!(!policy.observe(&obs(1_000, 1.2)), "straddling sample");
        // Post-shift ramp, then a new plateau at 1.0: the window must
        // refill from scratch (4 samples) before the run can stop.
        assert!(!policy.observe(&obs(1_100, 1.4)));
        for k in 12..=14 {
            assert!(!policy.observe(&obs(k * 100, 1.0)), "refilling, sample {k}");
        }
        assert!(
            policy.observe(&obs(1_500, 1.0)),
            "final phase re-stabilised → stop"
        );

        // Per-phase plateaus: phase 0 converged at 2.0, phase 1 at 1.0.
        let plateaus = policy.plateaus();
        assert_eq!(plateaus.len(), 2);
        assert_eq!(plateaus[0].phase, 0);
        assert_eq!(plateaus[0].start_cycle, 0);
        assert!(plateaus[0].converged(), "phase 0 settled before the shift");
        assert!((plateaus[0].mean_throughput - 2.0).abs() < 1e-12);
        assert_eq!(plateaus[1].phase, 1);
        assert_eq!(plateaus[1].start_cycle, 1_000);
        assert_eq!(plateaus[1].converged_at, Some(1_500));
        assert!(
            (plateaus[1].mean_throughput - 1.0).abs() < 1e-12,
            "the post-shift ramp sample has rolled out of the window"
        );
    }

    #[test]
    fn reconverged_without_boundaries_degrades_to_converged() {
        let mut policy = Reconverged::new(100, 0.05, 0, 10_000, &[]);
        let obs = |k: u64| StopObservation {
            cycle: k * 100,
            measured_cycles: k * 100,
            interval_cycles: 100,
            throughput: 2.0,
        };
        for k in 1..=3 {
            assert!(!policy.observe(&obs(k)));
        }
        assert!(policy.observe(&obs(4)), "plain convergence semantics");
        assert_eq!(policy.plateaus().len(), 1, "single phase");
    }

    #[test]
    fn reconverged_filters_boundaries_to_the_measured_window() {
        let policy = Reconverged::new(100, 0.05, 0, 5_000, &[0, 7_000, 2_000, 2_000, 5_000]);
        assert_eq!(
            policy.boundaries(),
            &[2_000],
            "0, duplicates, the ceiling and beyond are dropped"
        );
        assert_eq!(
            RunPlan::fixed(1_000, 5_000)
                .until_reconverged(500, 0.1)
                .policy_with_boundaries(&[2_000])
                .max_measure_cycles(),
            5_000
        );
    }

    #[test]
    fn reconverged_never_stops_mid_ramp_at_the_ceiling() {
        // The final phase never stabilises: no stop, and the plateau
        // record says so.
        let mut policy = Reconverged::new(100, 0.0, 0, 10_000, &[500]);
        let obs = |k: u64, tp: f64| StopObservation {
            cycle: k * 100,
            measured_cycles: k * 100,
            interval_cycles: 100,
            throughput: tp,
        };
        for k in 1..=4 {
            assert!(!policy.observe(&obs(k, 2.0)));
        }
        // Post-shift: strictly rising throughput (zero epsilon never
        // converges).
        for k in 6..=99 {
            assert!(!policy.observe(&obs(k, k as f64)));
        }
        let plateaus = policy.plateaus();
        assert_eq!(plateaus.len(), 2);
        assert!(!plateaus[1].converged(), "still ramping at the ceiling");
    }

    #[test]
    fn reconverged_fingerprint_is_distinct_from_converged() {
        let base = RunPlan::fixed(300_000, 3_000_000);
        let conv = base.until_converged(300_000, 0.02);
        let reconv = base.until_reconverged(300_000, 0.02);
        assert_ne!(reconv.fingerprint(), conv.fingerprint());
        assert_ne!(reconv.fingerprint(), base.fingerprint());
        assert!(reconv.can_stop_early());
        assert_eq!(reconv.measure_cycles(), 3_000_000);
    }

    #[test]
    fn clone_policy_carries_the_estimator_state() {
        let mut policy = Converged::new(100, 0.05, 0, 10_000);
        let obs = |k: u64| StopObservation {
            cycle: k * 100,
            measured_cycles: k * 100,
            interval_cycles: 100,
            throughput: 2.0,
        };
        for k in 1..=3 {
            policy.observe(&obs(k));
        }
        let mut cloned = policy.clone_policy();
        // One more stable sample converges both the original and the
        // clone at the same boundary.
        assert!(policy.observe(&obs(4)));
        assert!(cloned.observe(&obs(4)));
    }
}
