//! Run plans: a warm-up spec plus a first-class stopping policy.
//!
//! Every run used to be a raw `(warmup_cycles, measure_cycles)` pair —
//! a guessed constant calibrated offline. A [`RunPlan`] makes "how long
//! is long enough" a policy decision instead:
//!
//! * [`StopSpec::FixedCycles`] reproduces the paper's fixed-window
//!   methodology exactly (and fingerprints identically to the legacy
//!   `RunBudget`, so existing content-addressed results keep matching);
//! * [`StopSpec::Converged`] stops at the first window boundary where
//!   the rolling-window throughput estimator
//!   ([`snug_metrics::RollingThroughput`]) reports the measured
//!   throughput stable to within `rel_epsilon`, bounded by
//!   `min_cycles`/`max_cycles`.
//!
//! The split between [`StopSpec`] (plain `Copy` data: what goes into
//! configurations, store keys and CLI flags) and [`StopPolicy`] (the
//! stateful trait object a [`crate::SimSession`] drives) keeps plans
//! hashable and comparable while the runtime side carries the
//! estimator state — which session snapshots capture, so early exit is
//! deterministic and snapshot/restore-safe.

use snug_metrics::RollingThroughput;

/// Samples a [`Converged`] policy's rolling window holds: convergence
/// is judged over the last `WINDOW_SAMPLES` intervals of
/// `window_cycles` each, so the earliest possible stop is
/// `WINDOW_SAMPLES * window_cycles` measured cycles.
pub const WINDOW_SAMPLES: usize = 4;

/// A run plan: warm-up length plus the stopping policy for the
/// measured window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPlan {
    /// Unmeasured warm-up cycles.
    pub warmup_cycles: u64,
    /// When the measured window ends.
    pub stop: StopSpec,
}

/// The data form of a stopping policy (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopSpec {
    /// Run exactly `measure_cycles` of measured execution — the paper's
    /// fixed-window methodology.
    FixedCycles {
        /// Measured cycles.
        measure_cycles: u64,
    },
    /// Stop at the first `window_cycles` boundary (past `min_cycles`,
    /// with a full rolling window) where the last [`WINDOW_SAMPLES`]
    /// interval throughputs agree to within `rel_epsilon`; never run
    /// past `max_cycles`.
    Converged {
        /// Length of one throughput sample interval in cycles.
        window_cycles: u64,
        /// Relative spread threshold ((max − min) / mean) under which
        /// the window counts as converged.
        rel_epsilon: f64,
        /// Measured cycles before which the run never stops (0: only
        /// the full-window requirement gates the earliest stop).
        min_cycles: u64,
        /// Hard ceiling on measured cycles (the fixed budget this plan
        /// is an early-exit variant of).
        max_cycles: u64,
    },
}

impl RunPlan {
    /// A fixed-window plan — the drop-in replacement for the legacy
    /// `RunBudget`.
    pub fn fixed(warmup_cycles: u64, measure_cycles: u64) -> RunPlan {
        RunPlan {
            warmup_cycles,
            stop: StopSpec::FixedCycles { measure_cycles },
        }
    }

    /// Swap this plan's stop policy for convergence-based early exit:
    /// the current measured window becomes the `max_cycles` ceiling.
    pub fn until_converged(self, window_cycles: u64, rel_epsilon: f64) -> RunPlan {
        assert!(window_cycles > 0, "window must be positive");
        assert!(rel_epsilon >= 0.0, "epsilon must be non-negative");
        RunPlan {
            warmup_cycles: self.warmup_cycles,
            stop: StopSpec::Converged {
                window_cycles,
                rel_epsilon,
                min_cycles: 0,
                max_cycles: self.measure_cycles(),
            },
        }
    }

    /// The measured-window ceiling: the full window for fixed plans,
    /// `max_cycles` for converged ones.
    pub fn measure_cycles(&self) -> u64 {
        match self.stop {
            StopSpec::FixedCycles { measure_cycles } => measure_cycles,
            StopSpec::Converged { max_cycles, .. } => max_cycles,
        }
    }

    /// The absolute cycle past which no plan ever runs.
    pub fn horizon(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles()
    }

    /// Whether this plan can stop before its horizon.
    pub fn can_stop_early(&self) -> bool {
        matches!(self.stop, StopSpec::Converged { .. })
    }

    /// Materialise the runtime policy a session drives.
    pub fn policy(&self) -> Box<dyn StopPolicy> {
        match self.stop {
            StopSpec::FixedCycles { measure_cycles } => Box::new(FixedCycles { measure_cycles }),
            StopSpec::Converged {
                window_cycles,
                rel_epsilon,
                min_cycles,
                max_cycles,
            } => Box::new(Converged::new(
                window_cycles,
                rel_epsilon,
                min_cycles,
                max_cycles,
            )),
        }
    }

    /// Stable content-key fragment. Fixed plans render exactly as the
    /// legacy `RunBudget` debug string, so every result keyed before
    /// the plan layer existed keeps matching; converged plans render
    /// their full parameters and therefore live under their own keys.
    pub fn fingerprint(&self) -> String {
        match self.stop {
            StopSpec::FixedCycles { measure_cycles } => format!(
                "RunBudget {{ warmup_cycles: {}, measure_cycles: {} }}",
                self.warmup_cycles, measure_cycles
            ),
            StopSpec::Converged { .. } => format!("{self:?}"),
        }
    }
}

/// One measured-window observation delivered to a stop policy at its
/// stride boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopObservation {
    /// Frontier cycle of the observation.
    pub cycle: u64,
    /// Measured cycles completed so far (frontier − warm-up).
    pub measured_cycles: u64,
    /// Sum of per-core IPCs over the interval since the previous
    /// observation.
    pub throughput: f64,
}

/// The runtime side of a stopping policy: stateful, driven by the
/// session at `observe_stride` boundaries of the measured window.
///
/// Implementations must be deterministic functions of the observation
/// sequence — the session clones them into snapshots (via
/// [`StopPolicy::clone_policy`]) so a restored run resumes with the
/// identical stopping state.
pub trait StopPolicy: Send {
    /// Hard ceiling on the measured window, in cycles.
    fn max_measure_cycles(&self) -> u64;

    /// Cycle stride at which the policy wants observations (0: never
    /// observe — the run always reaches the ceiling).
    fn observe_stride(&self) -> u64 {
        0
    }

    /// Feed one observation; `true` stops the run at this boundary.
    fn observe(&mut self, _obs: &StopObservation) -> bool {
        false
    }

    /// Deep copy, estimator state included.
    fn clone_policy(&self) -> Box<dyn StopPolicy>;

    /// Short human-readable description for logs.
    fn describe(&self) -> String;
}

/// Fixed-window stopping: run the whole `measure_cycles`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedCycles {
    /// Measured cycles.
    pub measure_cycles: u64,
}

impl StopPolicy for FixedCycles {
    fn max_measure_cycles(&self) -> u64 {
        self.measure_cycles
    }

    fn clone_policy(&self) -> Box<dyn StopPolicy> {
        Box::new(*self)
    }

    fn describe(&self) -> String {
        format!("fixed({} cycles)", self.measure_cycles)
    }
}

/// Convergence-based stopping: a rolling window of interval
/// throughputs must agree to within `rel_epsilon` (see
/// [`StopSpec::Converged`] for the parameter semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct Converged {
    /// Length of one throughput sample interval in cycles.
    pub window_cycles: u64,
    /// Relative spread threshold.
    pub rel_epsilon: f64,
    /// Measured cycles before which the run never stops.
    pub min_cycles: u64,
    /// Hard ceiling on measured cycles.
    pub max_cycles: u64,
    window: RollingThroughput,
}

impl Converged {
    /// Build the policy with an empty rolling window.
    pub fn new(window_cycles: u64, rel_epsilon: f64, min_cycles: u64, max_cycles: u64) -> Self {
        assert!(window_cycles > 0, "window must be positive");
        Converged {
            window_cycles,
            rel_epsilon,
            min_cycles,
            max_cycles,
            window: RollingThroughput::new(WINDOW_SAMPLES),
        }
    }
}

impl StopPolicy for Converged {
    fn max_measure_cycles(&self) -> u64 {
        self.max_cycles
    }

    fn observe_stride(&self) -> u64 {
        self.window_cycles
    }

    fn observe(&mut self, obs: &StopObservation) -> bool {
        self.window.push(obs.throughput);
        obs.measured_cycles >= self.min_cycles && self.window.converged(self.rel_epsilon)
    }

    fn clone_policy(&self) -> Box<dyn StopPolicy> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!(
            "converged(window {} cycles, eps {}, {}..={} cycles)",
            self.window_cycles, self.rel_epsilon, self.min_cycles, self.max_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_fingerprint_matches_the_legacy_run_budget_debug() {
        // The exact string `{:?}` printed for the old `RunBudget` —
        // pinned so every pre-plan store key keeps matching.
        assert_eq!(
            RunPlan::fixed(300_000, 3_000_000).fingerprint(),
            "RunBudget { warmup_cycles: 300000, measure_cycles: 3000000 }"
        );
    }

    #[test]
    fn converged_fingerprint_is_distinct_and_parameter_sensitive() {
        let fixed = RunPlan::fixed(300_000, 3_000_000);
        let conv = fixed.until_converged(300_000, 0.01);
        assert_ne!(conv.fingerprint(), fixed.fingerprint());
        assert_ne!(
            conv.fingerprint(),
            fixed.until_converged(300_000, 0.02).fingerprint(),
            "epsilon is part of the key"
        );
        assert_ne!(
            conv.fingerprint(),
            fixed.until_converged(150_000, 0.01).fingerprint(),
            "window is part of the key"
        );
        assert_eq!(conv.fingerprint(), conv.fingerprint());
    }

    #[test]
    fn until_converged_keeps_the_budget_as_ceiling() {
        let plan = RunPlan::fixed(10_000, 60_000).until_converged(5_000, 0.1);
        assert_eq!(plan.warmup_cycles, 10_000);
        assert_eq!(plan.measure_cycles(), 60_000);
        assert_eq!(plan.horizon(), 70_000);
        assert!(plan.can_stop_early());
        assert!(!RunPlan::fixed(1, 2).can_stop_early());
    }

    #[test]
    fn fixed_policy_never_observes_or_stops() {
        let policy = RunPlan::fixed(0, 500).policy();
        assert_eq!(policy.max_measure_cycles(), 500);
        assert_eq!(policy.observe_stride(), 0);
    }

    #[test]
    fn converged_policy_stops_on_a_full_stable_window() {
        let mut policy = Converged::new(100, 0.05, 0, 10_000);
        let obs = |k: u64, tp: f64| StopObservation {
            cycle: 1_000 + k * 100,
            measured_cycles: k * 100,
            throughput: tp,
        };
        // Three stable samples: window not yet full.
        for k in 1..=3 {
            assert!(!policy.observe(&obs(k, 2.0)));
        }
        // Fourth: full window, zero spread → stop.
        assert!(policy.observe(&obs(4, 2.0)));
    }

    #[test]
    fn converged_policy_respects_min_cycles_and_rolls_outliers_out() {
        let mut policy = Converged::new(100, 0.05, 600, 10_000);
        let obs = |k: u64, tp: f64| StopObservation {
            cycle: 1_000 + k * 100,
            measured_cycles: k * 100,
            throughput: tp,
        };
        assert!(!policy.observe(&obs(1, 9.0)), "outlier first sample");
        for k in 2..=5 {
            // Stable from sample 2 on; window is stable at k = 5 but
            // min_cycles = 600 holds the run until k = 6.
            assert!(!policy.observe(&obs(k, 2.0)), "sample {k}");
        }
        assert!(policy.observe(&obs(6, 2.0)));
    }

    #[test]
    fn clone_policy_carries_the_estimator_state() {
        let mut policy = Converged::new(100, 0.05, 0, 10_000);
        let obs = |k: u64| StopObservation {
            cycle: k * 100,
            measured_cycles: k * 100,
            throughput: 2.0,
        };
        for k in 1..=3 {
            policy.observe(&obs(k));
        }
        let mut cloned = policy.clone_policy();
        // One more stable sample converges both the original and the
        // clone at the same boundary.
        assert!(policy.observe(&obs(4)));
        assert!(cloned.observe(&obs(4)));
    }
}
