//! # sim-cmp — the quad-core CMP substrate
//!
//! Execution-driven chip-multiprocessor simulator reproducing the
//! paper's Table 4 platform:
//!
//! * [`config`] — system/bus/core configuration (Table 4 defaults);
//! * [`core`] — the simplified out-of-order core timing model;
//! * [`bus`] — 16 B split-transaction snoop bus with arbitration;
//! * [`scheme`] — the [`scheme::L2Org`] trait behind which the five L2
//!   organisations plug in;
//! * [`system`] — the driver wiring cores, L1 I/D, bus, DRAM and an L2
//!   organisation, with warm-up + measured execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod config;
pub mod core;
pub mod scheme;
pub mod system;

pub use bus::{Bus, BusGrant, BusStats};
pub use config::{BusConfig, CoreConfig, SystemConfig};
pub use core::{CoreModel, CoreStats};
pub use scheme::{ChipResources, L2Fill, L2Org, L2Outcome};
pub use system::{CmpSystem, CoreResult, SystemResult};
