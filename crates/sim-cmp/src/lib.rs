//! # sim-cmp — the quad-core CMP substrate
//!
//! Execution-driven chip-multiprocessor simulator reproducing the
//! paper's Table 4 platform:
//!
//! * [`config`] — system/bus/core configuration (Table 4 defaults);
//! * [`core`] — the simplified out-of-order core timing model;
//! * [`bus`] — 16 B split-transaction snoop bus with arbitration;
//! * [`scheme`] — the [`scheme::L2Org`] trait behind which the five L2
//!   organisations plug in, plus the scheme-side event hook;
//! * [`plan`] — [`plan::RunPlan`]s: warm-up spec + first-class
//!   stopping policies ([`plan::StopPolicy`] with fixed-window and
//!   convergence-based implementations);
//! * [`session`] — steppable [`session::SimSession`]s: incremental
//!   `step`/`run_until` driving, stride probes, policy-driven early
//!   exit, deterministic snapshot/restore;
//! * [`system`] — the legacy one-shot driver, a thin wrapper over a
//!   session.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod config;
pub mod core;
pub mod plan;
pub mod scheme;
pub mod session;
pub mod system;

pub use bus::{Bus, BusGrant, BusStats};
pub use config::{BusConfig, CoreConfig, SystemConfig};
pub use core::{CoreModel, CoreStats};
pub use plan::{
    Converged, FixedCycles, Reconverged, RunPlan, StopObservation, StopPolicy, StopSpec,
    WINDOW_SAMPLES,
};
pub use scheme::{ChipResources, CloneOrg, L2Fill, L2Org, L2Outcome, SchemeEvent, SchemeEventKind};
pub use session::{
    PeriodSample, Probe, SessionBuilder, SessionSnapshot, SimSession, SnapshotError,
};
pub use system::{CmpSystem, CoreResult, SystemResult};
