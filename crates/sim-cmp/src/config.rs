//! System configuration mirroring paper Table 4.

use serde::{Deserialize, Serialize};
use sim_mem::{DramConfig, Geometry};

/// Core timing-model parameters (simplified out-of-order model; see
/// the `snug-workloads` crate docs for the substitution argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions issued per cycle (paper: 8-wide issue/commit).
    pub issue_width: u32,
    /// Reorder-buffer reach: how many instructions the core can run ahead
    /// of an outstanding load miss before stalling (paper: RUU = 128).
    pub rob_size: u64,
    /// Maximum simultaneously outstanding load misses (LSQ/MSHR bound;
    /// paper LSQ = 64, but misses in flight are effectively bounded lower).
    pub max_outstanding: usize,
}

impl CoreConfig {
    /// Table 4 values.
    pub fn paper() -> Self {
        CoreConfig {
            issue_width: 8,
            rob_size: 128,
            max_outstanding: 8,
        }
    }
}

/// Snoop-bus parameters (paper Table 4: 16 B-wide split-transaction bus,
/// 4:1 core-to-bus speed ratio, 1 cycle arbitration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Bus width in bytes.
    pub width_bytes: u64,
    /// Core cycles per bus cycle.
    pub speed_ratio: u64,
    /// Arbitration delay in core cycles.
    pub arbitration: u64,
}

impl BusConfig {
    /// Table 4 values.
    pub fn paper() -> Self {
        BusConfig {
            width_bytes: 16,
            speed_ratio: 4,
            arbitration: 1,
        }
    }

    /// Core cycles to move one `block_bytes` line over the bus.
    pub fn transfer_cycles(&self, block_bytes: u64) -> u64 {
        let beats = block_bytes.div_ceil(self.width_bytes);
        beats * self.speed_ratio
    }

    /// Core cycles for an address-only transaction (one beat).
    pub fn address_cycles(&self) -> u64 {
        self.speed_ratio
    }
}

/// Full system configuration (paper Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores (paper: 4).
    pub num_cores: usize,
    /// L1 data/instruction cache geometry (32 KB, 4-way, 64 B).
    pub l1: Geometry,
    /// One private L2 slice (1 MB, 16-way, 64 B).
    pub l2_slice: Geometry,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// Local L2 hit latency (10 cycles).
    pub l2_local_latency: u64,
    /// Remote L2 access latency for L2P/CC/DSR and remote L2S banks
    /// (30 cycles).
    pub l2_remote_latency: u64,
    /// Remote latency for SNUG (40 cycles — includes the G/T vector
    /// lookup penalty, §4.1).
    pub snug_remote_latency: u64,
    /// Core model.
    pub core: CoreConfig,
    /// Bus model.
    pub bus: BusConfig,
    /// DRAM model.
    pub dram: DramConfig,
    /// L2 write-back buffer entries (16).
    pub write_buffer_entries: usize,
    /// Physical address width (32 in Table 4; 64/44 in Table 3).
    pub address_bits: u32,
}

impl SystemConfig {
    /// The paper's quad-core configuration (Table 4).
    pub fn paper() -> Self {
        SystemConfig {
            num_cores: 4,
            l1: Geometry::paper_l1(),
            l2_slice: Geometry::paper_l2(),
            l1_latency: 1,
            l2_local_latency: 10,
            l2_remote_latency: 30,
            snug_remote_latency: 40,
            core: CoreConfig::paper(),
            bus: BusConfig::paper(),
            dram: DramConfig::paper(),
            write_buffer_entries: 16,
            address_bits: 32,
        }
    }

    /// A miniature configuration for fast unit tests: same structure,
    /// tiny caches so interesting behaviour appears within a few hundred
    /// accesses.
    pub fn tiny_test() -> Self {
        SystemConfig {
            num_cores: 4,
            l1: Geometry::new(64, 4, 2),
            l2_slice: Geometry::new(64, 16, 4),
            l1_latency: 1,
            l2_local_latency: 10,
            l2_remote_latency: 30,
            snug_remote_latency: 40,
            core: CoreConfig {
                issue_width: 4,
                rob_size: 32,
                max_outstanding: 4,
            },
            bus: BusConfig::paper(),
            dram: DramConfig::uncontended(300),
            write_buffer_entries: 4,
            address_bits: 32,
        }
    }

    /// Aggregate L2 capacity across all slices.
    pub fn total_l2_bytes(&self) -> u64 {
        self.l2_slice.capacity_bytes() * self.num_cores as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table4() {
        let c = SystemConfig::paper();
        assert_eq!(c.num_cores, 4);
        assert_eq!(c.l2_slice.capacity_bytes(), 1 << 20);
        assert_eq!(c.l2_local_latency, 10);
        assert_eq!(c.l2_remote_latency, 30);
        assert_eq!(c.snug_remote_latency, 40);
        assert_eq!(c.dram.latency, 300);
        assert_eq!(c.core.issue_width, 8);
        assert_eq!(c.bus.width_bytes, 16);
        assert_eq!(c.total_l2_bytes(), 4 << 20);
    }

    #[test]
    fn bus_transfer_cycles_for_64b_line() {
        let b = BusConfig::paper();
        // 64 B / 16 B = 4 beats × 4:1 ratio = 16 core cycles.
        assert_eq!(b.transfer_cycles(64), 16);
        assert_eq!(b.address_cycles(), 4);
    }

    #[test]
    fn bus_transfer_rounds_up() {
        let b = BusConfig::paper();
        assert_eq!(b.transfer_cycles(20), 8, "2 beats");
    }
}
