//! The split-transaction snoop bus (paper Table 4: 16 B wide, 4:1 core
//! to bus speed ratio, 1-cycle arbitration).
//!
//! A split-transaction bus decouples the address/snoop network from the
//! data network: an address broadcast never waits behind a block
//! transfer. Each network is a channel with an availability horizon —
//! a transaction arbitrates (1 cycle), waits for its channel, then
//! occupies it for its beat count. Cross-chip block transfers (spills,
//! forwards) load the data network, so heavy spilling still creates
//! real contention — one of the costs cooperative caching must
//! amortise — but it does not serialise the snoops on the address
//! network.

use crate::config::BusConfig;
use serde::{Deserialize, Serialize};

/// Bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Address-only transactions (snoops, retrieval probes).
    pub address_transactions: u64,
    /// Data transactions (block transfers).
    pub data_transactions: u64,
    /// Total core cycles transactions spent queued for the channel.
    pub queue_cycles: u64,
    /// Total core cycles of channel occupancy.
    pub busy_cycles: u64,
}

/// The snoop bus (split address + data networks).
#[derive(Debug, Clone)]
pub struct Bus {
    cfg: BusConfig,
    addr_free: u64,
    data_free: u64,
    stats: BusStats,
}

/// Completion times of one bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// When the transaction was granted the channel (after arbitration
    /// and queuing).
    pub granted_at: u64,
    /// When the last beat finished (data available at the destination).
    pub done_at: u64,
}

impl Bus {
    /// Create an idle bus.
    pub fn new(cfg: BusConfig) -> Self {
        Bus {
            cfg,
            addr_free: 0,
            data_free: 0,
            stats: BusStats::default(),
        }
    }

    /// Issue an address-only transaction (broadcast snoop / request) on
    /// the address network.
    pub fn address_transaction(&mut self, now: u64) -> BusGrant {
        self.stats.address_transactions += 1;
        let occupancy = self.cfg.address_cycles();
        let request = now + self.cfg.arbitration;
        let granted_at = request.max(self.addr_free);
        self.stats.queue_cycles += granted_at - request;
        self.stats.busy_cycles += occupancy;
        let done_at = granted_at + occupancy;
        self.addr_free = done_at;
        BusGrant {
            granted_at,
            done_at,
        }
    }

    /// Issue a data transaction moving one `block_bytes` line on the
    /// data network.
    pub fn data_transaction(&mut self, now: u64, block_bytes: u64) -> BusGrant {
        self.stats.data_transactions += 1;
        let occupancy = self.cfg.transfer_cycles(block_bytes);
        let request = now + self.cfg.arbitration;
        let granted_at = request.max(self.data_free);
        self.stats.queue_cycles += granted_at - request;
        self.stats.busy_cycles += occupancy;
        let done_at = granted_at + occupancy;
        self.data_free = done_at;
        BusGrant {
            granted_at,
            done_at,
        }
    }

    /// Statistics accessor.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Configuration accessor.
    pub fn config(&self) -> BusConfig {
        self.cfg
    }

    /// Reset statistics (warm-up boundary); timing horizon kept.
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_bus() -> Bus {
        Bus::new(BusConfig::paper())
    }

    #[test]
    fn idle_bus_grants_after_arbitration() {
        let mut b = paper_bus();
        let g = b.address_transaction(100);
        assert_eq!(g.granted_at, 101, "1 cycle arbitration");
        assert_eq!(g.done_at, 105, "one beat at 4:1");
    }

    #[test]
    fn data_transaction_occupies_16_cycles() {
        let mut b = paper_bus();
        let g = b.data_transaction(0, 64);
        assert_eq!(g.done_at - g.granted_at, 16);
    }

    #[test]
    fn contention_queues_same_network_only() {
        let mut b = paper_bus();
        let g1 = b.data_transaction(0, 64);
        let g2 = b.data_transaction(0, 64);
        assert_eq!(
            g2.granted_at, g1.done_at,
            "second data txn waits for the data network"
        );
        assert!(b.stats().queue_cycles > 0);
        // The address network is independent (split transaction).
        let g3 = b.address_transaction(0);
        assert_eq!(
            g3.granted_at, 1,
            "snoop does not wait behind data transfers"
        );
    }

    #[test]
    fn stats_track_transaction_kinds() {
        let mut b = paper_bus();
        b.address_transaction(0);
        b.data_transaction(0, 64);
        b.data_transaction(0, 64);
        let s = b.stats();
        assert_eq!(s.address_transactions, 1);
        assert_eq!(s.data_transactions, 2);
        assert_eq!(s.busy_cycles, 4 + 16 + 16);
    }

    #[test]
    fn bus_frees_after_quiet_period() {
        let mut b = paper_bus();
        b.data_transaction(0, 64);
        // A much later transaction sees an idle bus.
        let g = b.address_transaction(1000);
        assert_eq!(g.granted_at, 1001);
        assert_eq!(b.stats().queue_cycles, 0);
    }
}
