//! Per-set views over the struct-of-arrays cache storage, plus the line
//! metadata types.
//!
//! Line metadata mirrors paper Fig. 4: `tag` (we store the full block
//! address), `valid`, `dirty`, LRU bits, plus the two SNUG bits — `cc`
//! (the line is cooperatively cached on behalf of a *peer* core) and `f`
//! (the line was placed with its last home-index bit flipped).
//!
//! Storage-wise a set is no longer its own struct: [`SetAssocCache`]
//! keeps one flat block-address array, one flat metadata-byte array and
//! one LRU permutation per set (struct-of-arrays), so a tag probe scans
//! a contiguous run of `u64`s with no pointer chasing and the metadata
//! byte rides in the same cache line as its neighbours. [`SetRef`] and
//! [`SetMut`] are borrowed views of one set's slice of that storage and
//! carry the whole per-set behaviour (probe / fill / victim selection /
//! invalidate) that the cooperative-caching schemes compose.
//!
//! [`SetAssocCache`]: crate::cache::SetAssocCache

use crate::lru::LruOrder;
use serde::{Deserialize, Serialize};
use sim_mem::BlockAddr;

/// Metadata-byte bit: line holds a block.
pub(crate) const META_VALID: u8 = 1 << 0;
/// Metadata-byte bit: line has been written (write back on eviction).
pub(crate) const META_DIRTY: u8 = 1 << 1;
/// Metadata-byte bit: the paper's CC bit.
pub(crate) const META_CC: u8 = 1 << 2;
/// Metadata-byte bit: the paper's f bit.
pub(crate) const META_FLIPPED: u8 = 1 << 3;

/// Sentinel stored in the block array of invalid ways, so a tag probe is
/// a pure block-address compare without consulting the metadata lane.
/// `BlockAddr` values come from byte addresses divided by the line size,
/// so the all-ones pattern can never name a real block.
pub(crate) const INVALID_BLOCK: BlockAddr = BlockAddr(u64::MAX);

/// First way holding `block`, if any: `iter().position(..)` semantics,
/// computed branch-free for realistic associativities. The early-exit
/// compare loop mispredicts once per probe at a data-dependent trip
/// count — on the per-op hit path that one mispredict costs more than
/// comparing every way unconditionally and taking the lowest set bit.
#[inline]
pub(crate) fn probe_ways(blocks: &[BlockAddr], block: BlockAddr) -> Option<usize> {
    if blocks.len() > 64 {
        return blocks.iter().position(|&b| b == block);
    }
    let mut mask = 0u64;
    for (i, &b) in blocks.iter().enumerate() {
        mask |= u64::from(b == block) << i;
    }
    if mask == 0 {
        None
    } else {
        Some(mask.trailing_zeros() as usize)
    }
}

/// Metadata bits carried by every line (beyond tag/valid/LRU).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineFlags {
    /// Line has been written and must be written back on eviction.
    pub dirty: bool,
    /// Line is cooperatively cached for a peer core (paper's CC bit).
    pub cc: bool,
    /// Line's home set index had its last bit flipped on placement
    /// (paper's f bit; meaningful only when `cc` is set).
    pub flipped: bool,
}

impl LineFlags {
    /// Flags for a locally owned line.
    pub fn owned(dirty: bool) -> Self {
        LineFlags {
            dirty,
            cc: false,
            flipped: false,
        }
    }

    /// Flags for a cooperatively cached (received) line. Received lines
    /// are always clean (§3.3: only clean blocks may spill).
    pub fn received(flipped: bool) -> Self {
        LineFlags {
            dirty: false,
            cc: true,
            flipped,
        }
    }

    /// Pack into a metadata byte (valid bit included).
    #[inline]
    pub(crate) fn to_meta(self) -> u8 {
        META_VALID
            | if self.dirty { META_DIRTY } else { 0 }
            | if self.cc { META_CC } else { 0 }
            | if self.flipped { META_FLIPPED } else { 0 }
    }

    /// Unpack from a metadata byte (ignores the valid bit).
    #[inline]
    pub(crate) fn from_meta(meta: u8) -> Self {
        LineFlags {
            dirty: meta & META_DIRTY != 0,
            cc: meta & META_CC != 0,
            flipped: meta & META_FLIPPED != 0,
        }
    }
}

/// One cache line, materialized by value from the packed storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLine {
    /// Full block address (superset of the architectural tag).
    pub block: BlockAddr,
    /// Valid bit.
    pub valid: bool,
    /// Metadata flags.
    pub flags: LineFlags,
}

/// A line evicted by a fill, reported to the caller so the owning scheme
/// can decide its fate (writeback, spill, or drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// Block address of the victim.
    pub block: BlockAddr,
    /// Victim's flags at eviction time.
    pub flags: LineFlags,
}

/// Read-only view of one set: `assoc`-long slices of the cache's block
/// and metadata arrays plus the set's LRU permutation.
#[derive(Debug)]
pub struct SetRef<'a> {
    pub(crate) blocks: &'a [BlockAddr],
    pub(crate) meta: &'a [u8],
    pub(crate) lru: &'a LruOrder,
}

/// Mutable view of one set.
#[derive(Debug)]
pub struct SetMut<'a> {
    pub(crate) blocks: &'a mut [BlockAddr],
    pub(crate) meta: &'a mut [u8],
    pub(crate) lru: &'a mut LruOrder,
    /// The owning cache's CC-line count; every CC-bit transition flows
    /// through [`SetMut::replace`] or [`SetMut::invalidate_way`], so
    /// maintaining the tally here keeps it exact for any caller.
    pub(crate) cc_lines: &'a mut u64,
}

impl<'a> SetRef<'a> {
    /// Associativity.
    #[inline]
    pub fn assoc(&self) -> usize {
        self.blocks.len()
    }

    /// Find the way holding `block`, if resident. Invalid ways hold the
    /// `INVALID_BLOCK` sentinel, so this is a pure tag compare.
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> Option<usize> {
        debug_assert!(block != INVALID_BLOCK);
        probe_ways(self.blocks, block)
    }

    /// Materialize the line in `way` by value.
    #[inline]
    pub fn line(&self, way: usize) -> CacheLine {
        let meta = self.meta[way];
        CacheLine {
            block: self.blocks[way],
            valid: meta & META_VALID != 0,
            flags: LineFlags::from_meta(meta),
        }
    }

    /// Choose the fill victim way: an invalid way if one exists, else the
    /// true-LRU way.
    #[inline]
    pub fn victim_way(&self) -> usize {
        self.meta
            .iter()
            .position(|&m| m & META_VALID == 0)
            .unwrap_or_else(|| self.lru.lru_way())
    }

    /// The line that would be evicted if a fill happened now, if the
    /// victim way holds a valid line.
    pub fn peek_victim(&self) -> Option<CacheLine> {
        let w = self.victim_way();
        (self.meta[w] & META_VALID != 0).then(|| self.line(w))
    }

    /// The CC line closest to LRU, if any valid CC line exists.
    pub fn lru_most_cc_way(&self) -> Option<usize> {
        // Walk LRU → MRU and return the first valid CC line.
        (0..self.assoc())
            .rev()
            .map(|p| self.lru.way_at(p))
            .find(|&w| self.meta[w] & (META_VALID | META_CC) == META_VALID | META_CC)
    }

    /// Number of valid lines.
    pub fn valid_count(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).count()
    }

    /// Number of valid cooperatively cached lines.
    pub fn cc_count(&self) -> usize {
        self.meta
            .iter()
            .filter(|&&m| m & (META_VALID | META_CC) == META_VALID | META_CC)
            .count()
    }

    /// Iterate valid lines, by value.
    pub fn valid_lines(&self) -> impl Iterator<Item = CacheLine> + '_ {
        (0..self.assoc())
            .filter(|&w| self.meta[w] & META_VALID != 0)
            .map(|w| self.line(w))
    }
}

impl<'a> SetMut<'a> {
    /// Reborrow as a read-only view.
    #[inline]
    pub fn as_ref(&self) -> SetRef<'_> {
        SetRef {
            blocks: self.blocks,
            meta: self.meta,
            lru: self.lru,
        }
    }

    /// Associativity.
    #[inline]
    pub fn assoc(&self) -> usize {
        self.blocks.len()
    }

    /// Find the way holding `block`, if resident.
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> Option<usize> {
        self.as_ref().probe(block)
    }

    /// Materialize the line in `way` by value.
    #[inline]
    pub fn line(&self, way: usize) -> CacheLine {
        self.as_ref().line(way)
    }

    /// See [`SetRef::victim_way`].
    #[inline]
    pub fn victim_way(&self) -> usize {
        self.as_ref().victim_way()
    }

    /// See [`SetRef::peek_victim`].
    pub fn peek_victim(&self) -> Option<CacheLine> {
        self.as_ref().peek_victim()
    }

    /// See [`SetRef::lru_most_cc_way`].
    pub fn lru_most_cc_way(&self) -> Option<usize> {
        self.as_ref().lru_most_cc_way()
    }

    /// Number of valid lines.
    pub fn valid_count(&self) -> usize {
        self.as_ref().valid_count()
    }

    /// Number of valid cooperatively cached lines.
    pub fn cc_count(&self) -> usize {
        self.as_ref().cc_count()
    }

    /// Promote `way` to MRU; returns the 1-based LRU stack distance the
    /// access observed.
    #[inline]
    pub fn touch(&mut self, way: usize) -> usize {
        self.lru.touch(way)
    }

    /// Promote `way` to MRU with an optional dirty update, without
    /// re-probing. Returns the stack distance and whether the line is
    /// cooperatively cached — the single-probe hit path.
    #[inline]
    pub fn touch_way(&mut self, way: usize, is_write: bool) -> (usize, bool) {
        let meta = &mut self.meta[way];
        debug_assert!(*meta & META_VALID != 0, "touching an invalid way");
        if is_write {
            *meta |= META_DIRTY;
        }
        let was_cc = *meta & META_CC != 0;
        (self.lru.touch(way), was_cc)
    }

    /// Hit path: probe + touch + optional dirty update. Returns
    /// `Some(stack_distance)` on hit.
    pub fn access(&mut self, block: BlockAddr, is_write: bool) -> Option<usize> {
        let way = self.probe(block)?;
        Some(self.touch_way(way, is_write).0)
    }

    /// Overwrite `way` with `block` (at MRU), reporting the previous
    /// occupant if it was valid.
    fn replace(&mut self, way: usize, block: BlockAddr, flags: LineFlags) -> Option<Evicted> {
        let old = self.meta[way];
        let evicted = (old & META_VALID != 0).then(|| Evicted {
            block: self.blocks[way],
            flags: LineFlags::from_meta(old),
        });
        if old & (META_VALID | META_CC) == META_VALID | META_CC {
            *self.cc_lines -= 1;
        }
        *self.cc_lines += flags.cc as u64;
        self.blocks[way] = block;
        self.meta[way] = flags.to_meta();
        self.lru.touch(way);
        evicted
    }

    /// Fill `block` into the set (at MRU), evicting the victim if valid.
    pub fn fill(&mut self, block: BlockAddr, flags: LineFlags) -> Option<Evicted> {
        debug_assert!(
            self.probe(block).is_none(),
            "fill of already-resident block"
        );
        let way = self.victim_way();
        self.replace(way, block, flags)
    }

    /// Fill `block`, preferring to evict a cooperatively cached (CC=1)
    /// line over an owned one if any exists; falls back to normal
    /// victim selection. Used by receiving sets so donated capacity is
    /// reclaimed before local blocks when a *local* fill arrives.
    pub fn fill_prefer_evict_cc(&mut self, block: BlockAddr, flags: LineFlags) -> Option<Evicted> {
        debug_assert!(self.probe(block).is_none());
        // The LRU-most CC line, if any and no way is free, else the
        // usual victim.
        let all_valid = self.meta.iter().all(|&m| m & META_VALID != 0);
        let way = self
            .lru_most_cc_way()
            .filter(|_| all_valid)
            .unwrap_or_else(|| self.victim_way());
        self.replace(way, block, flags)
    }

    /// Invalidate the line in `way` (demoting it so the way is reused
    /// first). Returns the invalidated line.
    pub fn invalidate_way(&mut self, way: usize) -> CacheLine {
        let line = self.line(way);
        debug_assert!(line.valid, "invalidating an invalid way");
        *self.cc_lines -= (self.meta[way] & META_CC != 0) as u64;
        self.blocks[way] = INVALID_BLOCK;
        self.meta[way] = 0;
        self.lru.demote(way);
        line
    }

    /// Invalidate `block` if resident; returns the line that was removed.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<CacheLine> {
        self.probe(block).map(|w| self.invalidate_way(w))
    }

    /// Iterate valid lines, by value.
    pub fn valid_lines(&self) -> impl Iterator<Item = CacheLine> + '_ {
        (0..self.assoc())
            .filter(|&w| self.meta[w] & META_VALID != 0)
            .map(|w| self.line(w))
    }
}

#[cfg(test)]
mod tests {
    use crate::cache::SetAssocCache;
    use crate::set::{LineFlags, SetMut};
    use sim_mem::{BlockAddr, Geometry};

    fn b(x: u64) -> BlockAddr {
        BlockAddr(x)
    }

    /// A single-set cache, so `set_mut(0)` exercises the per-set logic
    /// exactly as the old standalone `CacheSet` tests did.
    fn single(assoc: usize) -> SetAssocCache {
        SetAssocCache::new(Geometry::new(64, 1, assoc))
    }

    fn with_set<R>(c: &mut SetAssocCache, f: impl FnOnce(SetMut<'_>) -> R) -> R {
        f(c.set_mut(0))
    }

    #[test]
    fn fill_until_full_then_evict_lru() {
        let mut c = single(2);
        with_set(&mut c, |mut s| {
            assert_eq!(s.fill(b(1), LineFlags::owned(false)), None);
            assert_eq!(s.fill(b(2), LineFlags::owned(false)), None);
            // b(1) is LRU now.
            let ev = s.fill(b(3), LineFlags::owned(false)).unwrap();
            assert_eq!(ev.block, b(1));
            assert!(s.probe(b(1)).is_none());
            assert!(s.probe(b(2)).is_some());
            assert!(s.probe(b(3)).is_some());
        });
    }

    #[test]
    fn access_hit_updates_lru_and_dirty() {
        let mut c = single(2);
        with_set(&mut c, |mut s| {
            s.fill(b(1), LineFlags::owned(false));
            s.fill(b(2), LineFlags::owned(false));
            assert_eq!(s.access(b(1), true), Some(2), "b1 was at distance 2");
            let w = s.probe(b(1)).unwrap();
            assert!(s.line(w).flags.dirty);
            // Now b(2) is LRU; filling evicts it.
            let ev = s.fill(b(3), LineFlags::owned(false)).unwrap();
            assert_eq!(ev.block, b(2));
        });
    }

    #[test]
    fn miss_returns_none() {
        let mut c = single(2);
        with_set(&mut c, |mut s| {
            s.fill(b(1), LineFlags::owned(false));
            assert_eq!(s.access(b(9), false), None);
        });
    }

    #[test]
    fn invalidate_frees_way_first() {
        let mut c = single(2);
        with_set(&mut c, |mut s| {
            s.fill(b(1), LineFlags::owned(false));
            s.fill(b(2), LineFlags::owned(true));
            let line = s.invalidate(b(2)).unwrap();
            assert!(line.flags.dirty);
            assert_eq!(s.valid_count(), 1);
            // Next fill reuses the invalidated way without evicting b(1).
            assert_eq!(s.fill(b(3), LineFlags::owned(false)), None);
            assert!(s.probe(b(1)).is_some());
        });
    }

    #[test]
    fn prefer_evicting_cc_lines() {
        let mut c = single(4);
        with_set(&mut c, |mut s| {
            s.fill(b(10), LineFlags::owned(false));
            s.fill(b(11), LineFlags::received(false));
            s.fill(b(12), LineFlags::owned(false));
            s.fill(b(13), LineFlags::owned(false));
            // b(10) is LRU, but b(11) is the CC line: local fill should
            // evict the CC line first.
            let ev = s
                .fill_prefer_evict_cc(b(14), LineFlags::owned(false))
                .unwrap();
            assert_eq!(ev.block, b(11));
            assert!(ev.flags.cc);
            assert!(s.probe(b(10)).is_some(), "owned LRU line survives");
        });
    }

    #[test]
    fn prefer_evict_cc_falls_back_to_lru() {
        let mut c = single(2);
        with_set(&mut c, |mut s| {
            s.fill(b(1), LineFlags::owned(false));
            s.fill(b(2), LineFlags::owned(false));
            let ev = s
                .fill_prefer_evict_cc(b(3), LineFlags::owned(false))
                .unwrap();
            assert_eq!(ev.block, b(1), "no CC line: plain LRU victim");
        });
    }

    #[test]
    fn fill_uses_invalid_ways_before_evicting_cc() {
        let mut c = single(2);
        with_set(&mut c, |mut s| {
            s.fill(b(1), LineFlags::received(true));
            // One way still invalid: no eviction even though a CC line
            // exists.
            assert_eq!(s.fill_prefer_evict_cc(b(2), LineFlags::owned(false)), None);
            assert_eq!(s.valid_count(), 2);
        });
    }

    #[test]
    fn cc_count_and_valid_count() {
        let mut c = single(4);
        with_set(&mut c, |mut s| {
            s.fill(b(1), LineFlags::owned(false));
            s.fill(b(2), LineFlags::received(false));
            s.fill(b(3), LineFlags::received(true));
            assert_eq!(s.valid_count(), 3);
            assert_eq!(s.cc_count(), 2);
        });
    }

    #[test]
    fn touch_way_reports_distance_and_cc_without_reprobing() {
        let mut c = single(4);
        with_set(&mut c, |mut s| {
            s.fill(b(1), LineFlags::owned(false));
            s.fill(b(2), LineFlags::received(false));
            let w1 = s.probe(b(1)).unwrap();
            let (d, cc) = s.touch_way(w1, true);
            assert_eq!(d, 2, "b1 was one behind the MRU fill of b2");
            assert!(!cc);
            assert!(s.line(w1).flags.dirty, "write touch sets dirty");
            let w2 = s.probe(b(2)).unwrap();
            let (_, cc2) = s.touch_way(w2, false);
            assert!(cc2, "received line reports its CC bit");
        });
    }
}
