//! One cache set: an array of lines plus LRU recency state.
//!
//! Line metadata mirrors paper Fig. 4: `tag` (we store the full block
//! address), `valid`, `dirty`, LRU bits, plus the two SNUG bits — `cc`
//! (the line is cooperatively cached on behalf of a *peer* core) and `f`
//! (the line was placed with its last home-index bit flipped).

use crate::lru::LruOrder;
use serde::{Deserialize, Serialize};
use sim_mem::BlockAddr;

/// Metadata bits carried by every line (beyond tag/valid/LRU).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineFlags {
    /// Line has been written and must be written back on eviction.
    pub dirty: bool,
    /// Line is cooperatively cached for a peer core (paper's CC bit).
    pub cc: bool,
    /// Line's home set index had its last bit flipped on placement
    /// (paper's f bit; meaningful only when `cc` is set).
    pub flipped: bool,
}

impl LineFlags {
    /// Flags for a locally owned line.
    pub fn owned(dirty: bool) -> Self {
        LineFlags {
            dirty,
            cc: false,
            flipped: false,
        }
    }

    /// Flags for a cooperatively cached (received) line. Received lines
    /// are always clean (§3.3: only clean blocks may spill).
    pub fn received(flipped: bool) -> Self {
        LineFlags {
            dirty: false,
            cc: true,
            flipped,
        }
    }
}

/// One cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLine {
    /// Full block address (superset of the architectural tag).
    pub block: BlockAddr,
    /// Valid bit.
    pub valid: bool,
    /// Metadata flags.
    pub flags: LineFlags,
}

impl CacheLine {
    fn invalid() -> Self {
        CacheLine {
            block: BlockAddr(0),
            valid: false,
            flags: LineFlags::default(),
        }
    }
}

/// A line evicted by a fill, reported to the caller so the owning scheme
/// can decide its fate (writeback, spill, or drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// Block address of the victim.
    pub block: BlockAddr,
    /// Victim's flags at eviction time.
    pub flags: LineFlags,
}

/// A set: `assoc` lines plus LRU state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSet {
    lines: Vec<CacheLine>,
    lru: LruOrder,
}

impl CacheSet {
    /// Create an empty set with `assoc` ways.
    pub fn new(assoc: usize) -> Self {
        CacheSet {
            lines: vec![CacheLine::invalid(); assoc],
            lru: LruOrder::new(assoc),
        }
    }

    /// Associativity.
    #[inline]
    pub fn assoc(&self) -> usize {
        self.lines.len()
    }

    /// Find the way holding `block`, if resident.
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> Option<usize> {
        self.lines.iter().position(|l| l.valid && l.block == block)
    }

    /// Promote `way` to MRU; returns the 1-based LRU stack distance the
    /// access observed.
    #[inline]
    pub fn touch(&mut self, way: usize) -> usize {
        self.lru.touch(way)
    }

    /// Hit path: probe + touch + optional dirty update. Returns
    /// `Some(stack_distance)` on hit.
    pub fn access(&mut self, block: BlockAddr, is_write: bool) -> Option<usize> {
        let way = self.probe(block)?;
        if is_write {
            self.lines[way].flags.dirty = true;
        }
        Some(self.touch(way))
    }

    /// Choose the fill victim way: an invalid way if one exists, else the
    /// true-LRU way.
    #[inline]
    pub fn victim_way(&self) -> usize {
        self.lines
            .iter()
            .position(|l| !l.valid)
            .unwrap_or_else(|| self.lru.lru_way())
    }

    /// The way that would be evicted if a fill happened now, if it holds
    /// a valid line.
    pub fn peek_victim(&self) -> Option<&CacheLine> {
        let w = self.victim_way();
        self.lines[w].valid.then(|| &self.lines[w])
    }

    /// Fill `block` into the set (at MRU), evicting the victim if valid.
    pub fn fill(&mut self, block: BlockAddr, flags: LineFlags) -> Option<Evicted> {
        debug_assert!(
            self.probe(block).is_none(),
            "fill of already-resident block"
        );
        let way = self.victim_way();
        let evicted = self.lines[way].valid.then(|| Evicted {
            block: self.lines[way].block,
            flags: self.lines[way].flags,
        });
        self.lines[way] = CacheLine {
            block,
            valid: true,
            flags,
        };
        self.lru.touch(way);
        evicted
    }

    /// Fill `block`, preferring to evict a cooperatively cached (CC=1)
    /// line over an owned one if any exists; falls back to normal
    /// victim selection. Used by receiving sets so donated capacity is
    /// reclaimed before local blocks when a *local* fill arrives.
    pub fn fill_prefer_evict_cc(&mut self, block: BlockAddr, flags: LineFlags) -> Option<Evicted> {
        debug_assert!(self.probe(block).is_none());
        // The LRU-most CC line, if any, else the usual victim.
        let way = self
            .lru_most_cc_way()
            .filter(|_| !self.lines.iter().any(|l| !l.valid))
            .unwrap_or_else(|| self.victim_way());
        let evicted = self.lines[way].valid.then(|| Evicted {
            block: self.lines[way].block,
            flags: self.lines[way].flags,
        });
        self.lines[way] = CacheLine {
            block,
            valid: true,
            flags,
        };
        self.lru.touch(way);
        evicted
    }

    /// The CC line closest to LRU, if any valid CC line exists.
    pub fn lru_most_cc_way(&self) -> Option<usize> {
        // iterate LRU → MRU and return the first valid CC line.
        let order: Vec<usize> = self.lru.iter_mru_to_lru().collect();
        order
            .into_iter()
            .rev()
            .find(|&w| self.lines[w].valid && self.lines[w].flags.cc)
    }

    /// Invalidate the line in `way` (demoting it so the way is reused
    /// first). Returns the invalidated line.
    pub fn invalidate_way(&mut self, way: usize) -> CacheLine {
        let line = self.lines[way];
        debug_assert!(line.valid, "invalidating an invalid way");
        self.lines[way].valid = false;
        self.lru.demote(way);
        line
    }

    /// Invalidate `block` if resident; returns the line that was removed.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<CacheLine> {
        self.probe(block).map(|w| self.invalidate_way(w))
    }

    /// Read-only view of a way.
    pub fn line(&self, way: usize) -> &CacheLine {
        &self.lines[way]
    }

    /// Mutable view of a way (scheme code adjusting flags).
    pub fn line_mut(&mut self, way: usize) -> &mut CacheLine {
        &mut self.lines[way]
    }

    /// Number of valid lines.
    pub fn valid_count(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Number of valid cooperatively cached lines.
    pub fn cc_count(&self) -> usize {
        self.lines.iter().filter(|l| l.valid && l.flags.cc).count()
    }

    /// Iterate valid lines.
    pub fn valid_lines(&self) -> impl Iterator<Item = &CacheLine> {
        self.lines.iter().filter(|l| l.valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: u64) -> BlockAddr {
        BlockAddr(x)
    }

    #[test]
    fn fill_until_full_then_evict_lru() {
        let mut s = CacheSet::new(2);
        assert_eq!(s.fill(b(1), LineFlags::owned(false)), None);
        assert_eq!(s.fill(b(2), LineFlags::owned(false)), None);
        // b(1) is LRU now.
        let ev = s.fill(b(3), LineFlags::owned(false)).unwrap();
        assert_eq!(ev.block, b(1));
        assert!(s.probe(b(1)).is_none());
        assert!(s.probe(b(2)).is_some());
        assert!(s.probe(b(3)).is_some());
    }

    #[test]
    fn access_hit_updates_lru_and_dirty() {
        let mut s = CacheSet::new(2);
        s.fill(b(1), LineFlags::owned(false));
        s.fill(b(2), LineFlags::owned(false));
        assert_eq!(s.access(b(1), true), Some(2), "b1 was at distance 2");
        let w = s.probe(b(1)).unwrap();
        assert!(s.line(w).flags.dirty);
        // Now b(2) is LRU; filling evicts it.
        let ev = s.fill(b(3), LineFlags::owned(false)).unwrap();
        assert_eq!(ev.block, b(2));
    }

    #[test]
    fn miss_returns_none() {
        let mut s = CacheSet::new(2);
        s.fill(b(1), LineFlags::owned(false));
        assert_eq!(s.access(b(9), false), None);
    }

    #[test]
    fn invalidate_frees_way_first() {
        let mut s = CacheSet::new(2);
        s.fill(b(1), LineFlags::owned(false));
        s.fill(b(2), LineFlags::owned(true));
        let line = s.invalidate(b(2)).unwrap();
        assert!(line.flags.dirty);
        assert_eq!(s.valid_count(), 1);
        // Next fill reuses the invalidated way without evicting b(1).
        assert_eq!(s.fill(b(3), LineFlags::owned(false)), None);
        assert!(s.probe(b(1)).is_some());
    }

    #[test]
    fn prefer_evicting_cc_lines() {
        let mut s = CacheSet::new(4);
        s.fill(b(10), LineFlags::owned(false));
        s.fill(b(11), LineFlags::received(false));
        s.fill(b(12), LineFlags::owned(false));
        s.fill(b(13), LineFlags::owned(false));
        // b(10) is LRU, but b(11) is the CC line: local fill should evict
        // the CC line first.
        let ev = s
            .fill_prefer_evict_cc(b(14), LineFlags::owned(false))
            .unwrap();
        assert_eq!(ev.block, b(11));
        assert!(ev.flags.cc);
        assert!(s.probe(b(10)).is_some(), "owned LRU line survives");
    }

    #[test]
    fn prefer_evict_cc_falls_back_to_lru() {
        let mut s = CacheSet::new(2);
        s.fill(b(1), LineFlags::owned(false));
        s.fill(b(2), LineFlags::owned(false));
        let ev = s
            .fill_prefer_evict_cc(b(3), LineFlags::owned(false))
            .unwrap();
        assert_eq!(ev.block, b(1), "no CC line: plain LRU victim");
    }

    #[test]
    fn fill_uses_invalid_ways_before_evicting_cc() {
        let mut s = CacheSet::new(2);
        s.fill(b(1), LineFlags::received(true));
        // One way still invalid: no eviction even though a CC line exists.
        assert_eq!(s.fill_prefer_evict_cc(b(2), LineFlags::owned(false)), None);
        assert_eq!(s.valid_count(), 2);
    }

    #[test]
    fn cc_count_and_valid_count() {
        let mut s = CacheSet::new(4);
        s.fill(b(1), LineFlags::owned(false));
        s.fill(b(2), LineFlags::received(false));
        s.fill(b(3), LineFlags::received(true));
        assert_eq!(s.valid_count(), 3);
        assert_eq!(s.cc_count(), 2);
    }
}
