//! Quantification of set-level capacity demand — paper §2.1,
//! Formulas (1)–(5).
//!
//! * `block_required(S, I)` — Formula (3): the minimum associativity `A`
//!   at which the set's hits equal its hits at `A_threshold`.
//! * Buckets — `[1, A_threshold]` divided into `M` equal sub-ranges;
//!   `bucket_of` is the membership function `SF` of Formula (4).
//! * `BucketDistribution` — Formula (5): per-interval normalised bucket
//!   sizes, the quantity plotted in Figures 1–3.

use crate::stack_dist::SetHistogram;
use serde::{Deserialize, Serialize};

/// Parameters of the demand quantification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandParams {
    /// Associativity treated as "infinite" (paper: 2 × A_baseline = 32).
    pub a_threshold: usize,
    /// Number of buckets `M` (paper: 8). Must divide `a_threshold`.
    pub m_buckets: usize,
}

impl DemandParams {
    /// Validated constructor: both values must be powers of two (paper
    /// restriction) and `M` must divide `A_threshold`.
    pub fn new(a_threshold: usize, m_buckets: usize) -> Self {
        assert!(
            a_threshold.is_power_of_two(),
            "A_threshold must be a power of two"
        );
        assert!(m_buckets.is_power_of_two(), "M must be a power of two");
        assert!(
            a_threshold.is_multiple_of(m_buckets),
            "M must divide A_threshold"
        );
        DemandParams {
            a_threshold,
            m_buckets,
        }
    }

    /// The paper's parameters: `A_threshold = 32`, `M = 8` → buckets
    /// `[1,4]`, `[5,8]`, …, `[29,32]`.
    pub fn paper() -> Self {
        DemandParams::new(32, 8)
    }

    /// Width of each bucket.
    #[inline]
    pub fn bucket_width(&self) -> usize {
        self.a_threshold / self.m_buckets
    }

    /// Inclusive range `[lo, hi]` of bucket `j` (1-based, per the paper).
    pub fn bucket_range(&self, j: usize) -> (usize, usize) {
        assert!((1..=self.m_buckets).contains(&j));
        let w = self.bucket_width();
        ((j - 1) * w + 1, j * w)
    }

    /// Bucket index (1-based) containing `block_required` — the
    /// membership function SF of Formula (4) evaluates to 1 exactly for
    /// this bucket.
    #[inline]
    pub fn bucket_of(&self, block_required: usize) -> usize {
        assert!(
            (1..=self.a_threshold).contains(&block_required),
            "block_required must lie in [1, A_threshold]"
        );
        (block_required - 1) / self.bucket_width() + 1
    }
}

/// `block_required(S, I)` per Formula (3): the minimum `A` such that
/// `hit_count(S, I, A) = hit_count(S, I, A_threshold)`.
///
/// A set with no hits at all (pure streaming) requires 1 block: the
/// condition `0 = 0` already holds at `A = 1`.
pub fn block_required(hist: &SetHistogram, params: &DemandParams) -> usize {
    let target = hist.hit_count(params.a_threshold);
    for a in 1..=params.a_threshold {
        if hist.hit_count(a) == target {
            return a;
        }
    }
    params.a_threshold
}

/// Per-interval distribution of set demand over buckets — Formula (5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketDistribution {
    /// `sizes[j-1] = size_bucket_j(I)` — fraction of sets in bucket j.
    pub sizes: Vec<f64>,
}

impl BucketDistribution {
    /// Compute the distribution from every set's interval histogram.
    pub fn from_histograms(hists: &[SetHistogram], params: &DemandParams) -> Self {
        let mut counts = vec![0u64; params.m_buckets];
        for h in hists {
            let br = block_required(h, params);
            counts[params.bucket_of(br) - 1] += 1;
        }
        let n = hists.len() as f64;
        BucketDistribution {
            sizes: counts.into_iter().map(|c| c as f64 / n).collect(),
        }
    }

    /// Sum of all bucket sizes (should be 1 up to rounding).
    pub fn total(&self) -> f64 {
        self.sizes.iter().sum()
    }

    /// Fraction of sets in the lowest bucket (demand ≤ bucket width) —
    /// the paper repeatedly cites the "1–4 blocks" fraction.
    pub fn low_demand_fraction(&self) -> f64 {
        self.sizes.first().copied().unwrap_or(0.0)
    }

    /// Fraction of sets in buckets whose demand exceeds `a_baseline`
    /// (potential takers under capacity doubling).
    pub fn above_baseline_fraction(&self, params: &DemandParams, a_baseline: usize) -> f64 {
        let first_bucket_above = a_baseline / params.bucket_width() + 1;
        self.sizes[first_bucket_above - 1..].iter().sum()
    }

    /// Shannon-style non-uniformity score in [0, 1]: 0 when all sets land
    /// in one bucket, 1 when spread evenly over all buckets. Used by
    /// workload-model calibration tests.
    pub fn spread(&self) -> f64 {
        let m = self.sizes.len() as f64;
        let h: f64 = self
            .sizes
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum();
        if m <= 1.0 {
            0.0
        } else {
            h / m.ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack_dist::SetDemandProfiler;
    use sim_mem::BlockAddr;

    fn feed_cyclic(p: &mut SetDemandProfiler, set: usize, d: u64, rounds: usize) {
        for _ in 0..rounds {
            for t in 0..d {
                p.access(set, BlockAddr(t + set as u64 * 1000));
            }
        }
    }

    #[test]
    fn paper_buckets_match_figure_legend() {
        let p = DemandParams::paper();
        assert_eq!(p.bucket_width(), 4);
        assert_eq!(p.bucket_range(1), (1, 4));
        assert_eq!(p.bucket_range(2), (5, 8));
        assert_eq!(p.bucket_range(8), (29, 32));
    }

    #[test]
    fn bucket_of_boundaries() {
        let p = DemandParams::paper();
        assert_eq!(p.bucket_of(1), 1);
        assert_eq!(p.bucket_of(4), 1);
        assert_eq!(p.bucket_of(5), 2);
        assert_eq!(p.bucket_of(32), 8);
    }

    #[test]
    fn every_demand_in_exactly_one_bucket() {
        let p = DemandParams::paper();
        for br in 1..=32 {
            let j = p.bucket_of(br);
            let (lo, hi) = p.bucket_range(j);
            assert!((lo..=hi).contains(&br));
            // no adjacent bucket also contains it
            if j > 1 {
                let (_, hi_prev) = p.bucket_range(j - 1);
                assert!(br > hi_prev);
            }
            if j < 8 {
                let (lo_next, _) = p.bucket_range(j + 1);
                assert!(br < lo_next);
            }
        }
    }

    #[test]
    fn block_required_matches_cyclic_demand() {
        let params = DemandParams::paper();
        let mut prof = SetDemandProfiler::new(1, 32);
        feed_cyclic(&mut prof, 0, 11, 10);
        let br = block_required(prof.histogram(0), &params);
        assert_eq!(br, 11, "cyclic over 11 blocks requires exactly 11");
    }

    #[test]
    fn streaming_set_requires_one_block() {
        let params = DemandParams::paper();
        let mut prof = SetDemandProfiler::new(1, 32);
        // All-distinct references: zero hits anywhere.
        for t in 0..200u64 {
            prof.access(0, BlockAddr(t));
        }
        assert_eq!(block_required(prof.histogram(0), &params), 1);
    }

    #[test]
    fn distribution_sums_to_one() {
        let params = DemandParams::paper();
        let mut prof = SetDemandProfiler::new(8, 32);
        for s in 0..8 {
            feed_cyclic(&mut prof, s, (s as u64 % 4) * 8 + 2, 5);
        }
        let dist = prof.end_interval(|h| BucketDistribution::from_histograms(h, &params));
        assert!((dist.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distribution_separates_low_and_high_demand() {
        let params = DemandParams::paper();
        let mut prof = SetDemandProfiler::new(4, 32);
        feed_cyclic(&mut prof, 0, 2, 10); // bucket 1
        feed_cyclic(&mut prof, 1, 3, 10); // bucket 1
        feed_cyclic(&mut prof, 2, 30, 10); // bucket 8
        feed_cyclic(&mut prof, 3, 18, 10); // bucket 5
        let dist = prof.end_interval(|h| BucketDistribution::from_histograms(h, &params));
        assert!((dist.low_demand_fraction() - 0.5).abs() < 1e-9);
        assert!((dist.above_baseline_fraction(&params, 16) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn spread_zero_when_uniform_demand() {
        let params = DemandParams::paper();
        let mut prof = SetDemandProfiler::new(4, 32);
        for s in 0..4 {
            feed_cyclic(&mut prof, s, 3, 10);
        }
        let dist = prof.end_interval(|h| BucketDistribution::from_histograms(h, &params));
        assert_eq!(dist.spread(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn invalid_bucket_count_rejected() {
        // 32 not divisible... actually 8 divides 32; use non-dividing pair
        // that still is a power of two: M=64 > A=32.
        DemandParams::new(32, 64);
    }
}
