//! The SNUG shadow tag array and per-set capacity-demand monitor
//! (paper §3.1).
//!
//! Each L2 set has a corresponding *shadow set* with the same
//! associativity that retains the tags of locally evicted **owned**
//! lines. The shadow set is strictly exclusive with the real set: when a
//! formerly evicted block is referenced again, the matching shadow entry
//! is invalidated (the block re-enters the real set) and a shadow hit is
//! signalled to the per-set [`DemandMonitor`].
//!
//! A shadow hit means "this access would have hit if the set had roughly
//! twice its capacity" — the real set and shadow set together form the
//! two buckets of paper §3.1.2.

use crate::lru::LruOrder;
use crate::satcounter::DemandMonitor;
use crate::set::{probe_ways, INVALID_BLOCK};
use serde::{Deserialize, Serialize};
use sim_mem::BlockAddr;

/// A tag-only set with its own LRU replacement.
///
/// Tags are stored as a flat `u64` run with the same all-ones sentinel
/// convention as the real sets (`crate::set::INVALID_BLOCK`), so the
/// probe is the branch-free compare loop shared with
/// [`crate::SetAssocCache`] rather than an `Option` walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowSet {
    tags: Vec<BlockAddr>,
    lru: LruOrder,
}

impl ShadowSet {
    /// Create an empty shadow set with `assoc` entries.
    pub fn new(assoc: usize) -> Self {
        ShadowSet {
            tags: vec![INVALID_BLOCK; assoc],
            lru: LruOrder::new(assoc),
        }
    }

    /// Whether `block`'s tag is present.
    #[inline]
    pub fn contains(&self, block: BlockAddr) -> bool {
        probe_ways(&self.tags, block).is_some()
    }

    /// Record the tag of a locally evicted owned line. Replaces the
    /// shadow-LRU entry when full. If the tag is somehow already present
    /// (it should not be, by exclusivity) it is refreshed instead.
    #[inline]
    pub fn insert(&mut self, block: BlockAddr) {
        if let Some(w) = probe_ways(&self.tags, block) {
            self.lru.touch(w);
            return;
        }
        let way = probe_ways(&self.tags, INVALID_BLOCK).unwrap_or_else(|| self.lru.lru_way());
        self.tags[way] = block;
        self.lru.touch(way);
    }

    /// Look up `block`; on a hit the entry is invalidated (the block is
    /// about to re-enter the real set) and `true` is returned.
    #[inline]
    pub fn lookup_invalidate(&mut self, block: BlockAddr) -> bool {
        match probe_ways(&self.tags, block) {
            Some(w) => {
                self.tags[w] = INVALID_BLOCK;
                self.lru.demote(w);
                true
            }
            None => false,
        }
    }

    /// Drop all entries (start of a new sampling period, if configured).
    pub fn clear(&mut self) {
        for t in &mut self.tags {
            *t = INVALID_BLOCK;
        }
    }

    /// Number of valid shadow entries.
    pub fn len(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_BLOCK).count()
    }

    /// Whether the shadow set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The full per-slice monitor: one shadow set and one [`DemandMonitor`]
/// per L2 set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowArray {
    sets: Vec<ShadowSet>,
    monitors: Vec<DemandMonitor>,
    /// Whether monitor counters are currently being updated (Stage I of
    /// the SNUG period). The shadow *contents* are maintained regardless
    /// so Stage I starts with a warm victim history.
    sampling: bool,
}

impl ShadowArray {
    /// Create a shadow array for `num_sets` sets of `assoc` ways, with
    /// monitor parameters `k` (counter bits) and `p` (threshold 1/p).
    pub fn new(num_sets: usize, assoc: usize, k: u32, p: u16) -> Self {
        ShadowArray {
            sets: (0..num_sets).map(|_| ShadowSet::new(assoc)).collect(),
            monitors: (0..num_sets).map(|_| DemandMonitor::new(k, p)).collect(),
            sampling: true,
        }
    }

    /// Paper configuration: same set count/assoc as the L2, k = 4, p = 8.
    pub fn paper(num_sets: usize, assoc: usize) -> Self {
        Self::new(num_sets, assoc, 4, 8)
    }

    /// Enable/disable counter sampling (Stage I vs Stage II).
    pub fn set_sampling(&mut self, on: bool) {
        self.sampling = on;
    }

    /// Whether counters are being updated.
    pub fn sampling(&self) -> bool {
        self.sampling
    }

    /// Record a hit on the real L2 set `set`.
    #[inline]
    pub fn on_real_hit(&mut self, set: usize) {
        if self.sampling {
            self.monitors[set].real_hit();
        }
    }

    /// Handle a real-set miss: check the shadow set. Returns `true` if
    /// the tag was a shadow hit (entry invalidated, counter bumped).
    #[inline]
    pub fn on_real_miss(&mut self, set: usize, block: BlockAddr) -> bool {
        let hit = self.sets[set].lookup_invalidate(block);
        if hit && self.sampling {
            self.monitors[set].shadow_hit();
        }
        hit
    }

    /// Record the eviction of an **owned** line from real set `set`.
    #[inline]
    pub fn on_owned_eviction(&mut self, set: usize, block: BlockAddr) {
        self.sets[set].insert(block);
    }

    /// Latch the current taker/giver verdicts into a fresh G/T bit
    /// vector (true = taker).
    pub fn latch_gt(&self) -> Vec<bool> {
        self.monitors.iter().map(|m| m.is_taker()).collect()
    }

    /// Reset all monitors (start of the next Stage I). Shadow contents
    /// are preserved by default — `clear_shadows` drops them too.
    pub fn reset_monitors(&mut self) {
        for m in &mut self.monitors {
            m.reset();
        }
    }

    /// Drop all shadow tags.
    pub fn clear_shadows(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Direct access to one shadow set (tests, invariants).
    pub fn shadow_set(&self, set: usize) -> &ShadowSet {
        &self.sets[set]
    }

    /// Taker verdict for one set right now (pre-latch).
    pub fn is_taker(&self, set: usize) -> bool {
        self.monitors[set].is_taker()
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: u64) -> BlockAddr {
        BlockAddr(x)
    }

    #[test]
    fn insert_then_lookup_invalidates() {
        let mut s = ShadowSet::new(4);
        s.insert(b(10));
        assert!(s.contains(b(10)));
        assert!(s.lookup_invalidate(b(10)));
        assert!(!s.contains(b(10)), "entry invalidated after hit");
        assert!(!s.lookup_invalidate(b(10)), "second lookup misses");
    }

    #[test]
    fn shadow_set_replaces_lru() {
        let mut s = ShadowSet::new(2);
        s.insert(b(1));
        s.insert(b(2));
        s.insert(b(3)); // evicts b(1)
        assert!(!s.contains(b(1)));
        assert!(s.contains(b(2)));
        assert!(s.contains(b(3)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut s = ShadowSet::new(2);
        s.insert(b(1));
        s.insert(b(2));
        s.insert(b(1)); // refresh, not duplicate
        assert_eq!(s.len(), 2);
        s.insert(b(3)); // should evict b(2), the older entry
        assert!(s.contains(b(1)));
        assert!(!s.contains(b(2)));
    }

    #[test]
    fn array_tracks_taker_sets() {
        let mut a = ShadowArray::paper(4, 2);
        // Set 1: thrash pattern where the shadow catches every re-reference
        // (cycle length matches the shadow depth so victims survive until
        // their re-reference).
        for round in 0..50 {
            // Evictions go to shadow, then re-references hit shadow.
            a.on_owned_eviction(1, b(100 + round % 2));
            let _ = a.on_real_miss(1, b(100 + (round + 1) % 2));
        }
        // Set 0: plenty of real hits, no shadow traffic.
        for _ in 0..200 {
            a.on_real_hit(0);
        }
        let gt = a.latch_gt();
        assert!(gt[1], "thrashing set identified as taker");
        assert!(!gt[0], "well-behaved set stays giver");
    }

    #[test]
    fn sampling_off_freezes_counters() {
        let mut a = ShadowArray::paper(1, 4);
        a.set_sampling(false);
        for i in 0..20 {
            a.on_owned_eviction(0, b(i));
            assert!(a.on_real_miss(0, b(i)), "shadow still functional");
        }
        assert!(!a.is_taker(0), "counter frozen while not sampling");
    }

    #[test]
    fn reset_monitors_returns_to_neutral() {
        let mut a = ShadowArray::paper(1, 4);
        for i in 0..20 {
            a.on_owned_eviction(0, b(i % 4));
            a.on_real_miss(0, b((i + 1) % 4));
        }
        assert!(a.is_taker(0));
        a.reset_monitors();
        assert!(!a.is_taker(0));
    }

    #[test]
    fn exclusivity_after_miss_hit_cycle() {
        let mut a = ShadowArray::paper(2, 4);
        a.on_owned_eviction(0, b(42));
        assert!(a.shadow_set(0).contains(b(42)));
        assert!(a.on_real_miss(0, b(42)));
        assert!(
            !a.shadow_set(0).contains(b(42)),
            "tag must leave shadow when block re-enters real set"
        );
    }

    #[test]
    fn clear_shadows_empties() {
        let mut a = ShadowArray::paper(2, 4);
        a.on_owned_eviction(0, b(1));
        a.on_owned_eviction(1, b(2));
        a.clear_shadows();
        assert!(a.shadow_set(0).is_empty());
        assert!(a.shadow_set(1).is_empty());
    }
}
