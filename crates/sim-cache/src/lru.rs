//! True-LRU recency tracking with hit-position (stack distance) queries.
//!
//! The paper's capacity-demand quantification (Formulas 1–3) relies on
//! the *stack property* of LRU [Mattson et al. 1970]: the set of blocks
//! resident in an A-way LRU set is a prefix of the recency stack, so a
//! hit at stack position `d` (1-based, MRU = 1) would be a hit in any
//! associativity `A ≥ d` and a miss in any `A < d`.
//!
//! `LruOrder` maintains the recency permutation of the ways of one set,
//! independent of what is stored in the ways, so the same structure
//! serves real sets, shadow sets and the deep profiler stacks.

use serde::{Deserialize, Serialize};

/// Recency order over `n` ways of a set. Internally a vector of way
/// indices ordered MRU → LRU. `n` is small (≤ 32 here), so vector
/// shifting beats fancier structures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LruOrder {
    /// order[0] is the MRU way; order[n-1] the LRU way.
    order: Vec<u8>,
}

impl LruOrder {
    /// Create the order for `n` ways; initially way 0 is MRU, way n-1 LRU.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1 && n <= u8::MAX as usize);
        LruOrder {
            order: (0..n as u8).collect(),
        }
    }

    /// Number of ways tracked.
    #[inline]
    pub fn ways(&self) -> usize {
        self.order.len()
    }

    /// 1-based stack position of `way` (1 = MRU). Panics if `way` is out
    /// of range.
    #[inline]
    pub fn position(&self, way: usize) -> usize {
        self.order
            .iter()
            .position(|&w| w as usize == way)
            // snug-lint: allow(panic-audit, "documented contract: callers pass a way belonging to this set; a miss is a simulator bug worth crashing on")
            .expect("way must be tracked by this LruOrder")
            + 1
    }

    /// Promote `way` to MRU, returning its previous 1-based position
    /// (the stack distance of the access that touched it).
    #[inline]
    pub fn touch(&mut self, way: usize) -> usize {
        let pos = self.position(way) - 1;
        let w = self.order.remove(pos);
        self.order.insert(0, w);
        pos + 1
    }

    /// The current LRU way (replacement victim).
    #[inline]
    pub fn lru_way(&self) -> usize {
        // snug-lint: allow(panic-audit, "associativity is at least 1, so the order vec is never empty")
        *self.order.last().expect("non-empty order") as usize
    }

    /// Demote `way` to LRU position (used when invalidating a line so its
    /// way is reused first).
    #[inline]
    pub fn demote(&mut self, way: usize) {
        let pos = self.position(way) - 1;
        let w = self.order.remove(pos);
        self.order.push(w);
    }

    /// Iterate ways MRU → LRU.
    pub fn iter_mru_to_lru(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().map(|&w| w as usize)
    }
}

/// An unbounded-depth (up to `capacity`) LRU *tag stack* for stack
/// distance profiling: stores raw tags rather than way indices, evicting
/// the deepest entry on overflow. Used by the A_threshold-deep profiler
/// behind Figures 1–3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagStack {
    tags: Vec<u64>,
    capacity: usize,
}

impl TagStack {
    /// Create an empty stack bounded at `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        TagStack {
            tags: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Reference `tag`. Returns `Some(distance)` (1-based) if the tag was
    /// present — i.e. the access would hit in any associativity ≥
    /// distance — or `None` for a cold/overflowed reference. Either way
    /// the tag becomes MRU.
    pub fn access(&mut self, tag: u64) -> Option<usize> {
        match self.tags.iter().position(|&t| t == tag) {
            Some(pos) => {
                self.tags.remove(pos);
                self.tags.insert(0, tag);
                Some(pos + 1)
            }
            None => {
                if self.tags.len() == self.capacity {
                    self.tags.pop();
                }
                self.tags.insert(0, tag);
                None
            }
        }
    }

    /// Number of resident tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the stack holds no tags.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Drop all tags (new sampling interval with cold stack, if desired).
    pub fn clear(&mut self) {
        self.tags.clear();
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order_is_identity() {
        let o = LruOrder::new(4);
        assert_eq!(o.position(0), 1);
        assert_eq!(o.position(3), 4);
        assert_eq!(o.lru_way(), 3);
    }

    #[test]
    fn touch_promotes_and_reports_distance() {
        let mut o = LruOrder::new(4);
        assert_eq!(o.touch(2), 3, "way 2 was at position 3");
        assert_eq!(o.position(2), 1, "now MRU");
        assert_eq!(o.lru_way(), 3);
        assert_eq!(o.touch(3), 4);
        assert_eq!(o.lru_way(), 1, "way 1 is now least recent");
    }

    #[test]
    fn demote_moves_way_to_lru() {
        let mut o = LruOrder::new(4);
        o.touch(3);
        o.demote(3);
        assert_eq!(o.lru_way(), 3);
    }

    #[test]
    fn mru_iteration_order() {
        let mut o = LruOrder::new(3);
        o.touch(1);
        o.touch(2);
        let v: Vec<usize> = o.iter_mru_to_lru().collect();
        assert_eq!(v, vec![2, 1, 0]);
    }

    #[test]
    fn tag_stack_distances_cyclic_pattern() {
        // Cyclic access over d distinct tags hits at distance exactly d
        // once warm — the degenerate pattern exploited in the workload
        // models to pin block_required at d.
        let mut s = TagStack::new(32);
        let d = 5;
        for round in 0..4 {
            for t in 0..d {
                let got = s.access(t);
                if round == 0 {
                    assert_eq!(got, None, "cold");
                } else {
                    assert_eq!(got, Some(d as usize), "warm cyclic hits at depth d");
                }
            }
        }
    }

    #[test]
    fn tag_stack_overflow_drops_deepest() {
        let mut s = TagStack::new(2);
        s.access(1);
        s.access(2);
        s.access(3); // evicts tag 1
        assert_eq!(s.access(1), None, "evicted tag is cold again");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn tag_stack_mru_hit_distance_one() {
        let mut s = TagStack::new(8);
        s.access(9);
        assert_eq!(s.access(9), Some(1));
    }

    #[test]
    fn stack_property_monotonicity() {
        // For a random-ish reference string, hits counted at distance ≤ A
        // must be non-decreasing in A (Mattson's inclusion property).
        let mut s = TagStack::new(16);
        let refs = [
            3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6,
        ];
        let mut hist = [0u64; 17];
        for &r in &refs {
            if let Some(d) = s.access(r) {
                hist[d] += 1;
            }
        }
        let mut cum = 0;
        let mut prev = 0;
        for h in hist.iter().take(17).skip(1) {
            cum += h;
            assert!(cum >= prev);
            prev = cum;
        }
    }
}
