//! True-LRU recency tracking with hit-position (stack distance) queries.
//!
//! The paper's capacity-demand quantification (Formulas 1–3) relies on
//! the *stack property* of LRU [Mattson et al. 1970]: the set of blocks
//! resident in an A-way LRU set is a prefix of the recency stack, so a
//! hit at stack position `d` (1-based, MRU = 1) would be a hit in any
//! associativity `A ≥ d` and a miss in any `A < d`.
//!
//! `LruOrder` maintains the recency permutation of the ways of one set,
//! independent of what is stored in the ways, so the same structure
//! serves real sets, shadow sets and the deep profiler stacks.
//!
//! ## Packed representation
//!
//! For associativities up to 16 (which covers every real, shadow and
//! sweep geometry in this repo — the paper L2 slice is 16-way) the
//! permutation lives in a single `u64` as 16 nibbles: nibble `p` holds
//! the way index at stack position `p` (nibble 0 = MRU). `position` is
//! then a branch-free broadcast-XOR + zero-nibble scan, and
//! `touch`/`demote` are three shifts and two masks instead of a
//! `Vec::remove`/`insert` pair. Associativities 17–255 (deep profiler
//! stacks) keep the byte-vector representation.

use serde::{Deserialize, Serialize};

/// `0x...11111`: broadcasts a nibble value across all 16 lanes.
const NIBBLE_LSB: u64 = 0x1111_1111_1111_1111;
/// `0x...88888`: the per-nibble detector bit for zero-nibble scans.
const NIBBLE_MSB: u64 = 0x8888_8888_8888_8888;

/// Find the 0-based stack position of `way` in a packed permutation of
/// `n` nibbles.
///
/// `bits ^ (way * NIBBLE_LSB)` zeroes exactly the nibble holding `way`
/// (the permutation contains it exactly once). The classic
/// `(x - 1̄) & !x & 8̄` trick marks zero nibbles; borrow propagation can
/// only create *false* marks **above** the true zero (all nibbles below
/// it are non-zero, so no borrow reaches it), hence the lowest marked
/// nibble is exactly the match and `trailing_zeros / 4` is its position.
#[inline]
fn packed_position(bits: u64, n: u8, way: usize) -> usize {
    assert!(way < n as usize, "way must be tracked by this LruOrder");
    let x = bits ^ (way as u64).wrapping_mul(NIBBLE_LSB);
    let marks = x.wrapping_sub(NIBBLE_LSB) & !x & NIBBLE_MSB;
    (marks.trailing_zeros() / 4) as usize
}

/// Low `4 * nibbles` bits set. `nibbles` must be ≤ 15 (callers only
/// ever mask below an existing nibble position).
#[inline]
fn low_nibble_mask(nibbles: usize) -> u64 {
    (1u64 << (4 * nibbles)) - 1
}

/// Recency order over `n` ways of a set: a `u64` nibble-permutation for
/// `n ≤ 16`, a byte vector MRU → LRU otherwise.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Repr {
    /// Nibble `p` of `bits` is the way at stack position `p` (0 = MRU).
    /// Nibbles at positions ≥ `n` are always zero.
    Packed { bits: u64, n: u8 },
    /// `order[0]` is the MRU way; `order[n-1]` the LRU way.
    Wide(Vec<u8>),
}

/// Recency order over the `n` ways of a set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LruOrder {
    repr: Repr,
}

impl LruOrder {
    /// Create the order for `n` ways; initially way 0 is MRU, way n-1 LRU.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1 && n <= u8::MAX as usize);
        let repr = if n <= 16 {
            let mut bits = 0u64;
            for p in 0..n {
                bits |= (p as u64) << (4 * p);
            }
            // snug-lint: allow(no-lossy-cast-in-kernel, "this branch has n <= 16")
            Repr::Packed { bits, n: n as u8 }
        } else {
            // snug-lint: allow(no-lossy-cast-in-kernel, "new() asserts n <= u8::MAX")
            Repr::Wide((0..n as u8).collect())
        };
        LruOrder { repr }
    }

    /// Number of ways tracked.
    #[inline]
    pub fn ways(&self) -> usize {
        match &self.repr {
            Repr::Packed { n, .. } => *n as usize,
            Repr::Wide(order) => order.len(),
        }
    }

    /// The way at 0-based stack position `pos` (0 = MRU).
    #[inline]
    pub fn way_at(&self, pos: usize) -> usize {
        match &self.repr {
            Repr::Packed { bits, n } => {
                assert!(pos < *n as usize);
                ((bits >> (4 * pos)) & 0xF) as usize
            }
            Repr::Wide(order) => order[pos] as usize,
        }
    }

    /// 1-based stack position of `way` (1 = MRU). Panics if `way` is out
    /// of range.
    #[inline]
    pub fn position(&self, way: usize) -> usize {
        match &self.repr {
            Repr::Packed { bits, n } => packed_position(*bits, *n, way) + 1,
            Repr::Wide(order) => {
                order
                    .iter()
                    .position(|&w| w as usize == way)
                    // snug-lint: allow(panic-audit, "documented contract: callers pass a way belonging to this set; a miss is a simulator bug worth crashing on")
                    .expect("way must be tracked by this LruOrder")
                    + 1
            }
        }
    }

    /// Promote `way` to MRU, returning its previous 1-based position
    /// (the stack distance of the access that touched it).
    #[inline]
    pub fn touch(&mut self, way: usize) -> usize {
        match &mut self.repr {
            Repr::Packed { bits, n } => {
                let p = packed_position(*bits, *n, way);
                if p > 0 {
                    // Keep nibbles above p, shift the p nibbles below it
                    // up one lane, insert `way` at MRU. When p is the
                    // top lane there is nothing above to keep.
                    let keep = if p >= 15 {
                        0
                    } else {
                        *bits & !low_nibble_mask(p + 1)
                    };
                    let low = *bits & low_nibble_mask(p);
                    *bits = keep | (low << 4) | way as u64;
                }
                p + 1
            }
            Repr::Wide(order) => {
                let pos = order
                    .iter()
                    .position(|&w| w as usize == way)
                    // snug-lint: allow(panic-audit, "documented contract: callers pass a way belonging to this set; a miss is a simulator bug worth crashing on")
                    .expect("way must be tracked by this LruOrder");
                let w = order.remove(pos);
                order.insert(0, w);
                pos + 1
            }
        }
    }

    /// The current LRU way (replacement victim).
    #[inline]
    pub fn lru_way(&self) -> usize {
        match &self.repr {
            Repr::Packed { bits, n } => ((bits >> (4 * (*n as usize - 1))) & 0xF) as usize,
            Repr::Wide(order) => {
                // snug-lint: allow(panic-audit, "associativity is at least 1, so the order vec is never empty")
                *order.last().expect("non-empty order") as usize
            }
        }
    }

    /// Demote `way` to LRU position (used when invalidating a line so its
    /// way is reused first).
    #[inline]
    pub fn demote(&mut self, way: usize) {
        match &mut self.repr {
            Repr::Packed { bits, n } => {
                let p = packed_position(*bits, *n, way);
                let last = *n as usize - 1;
                if p < last {
                    // Remove nibble p (shift everything above it down one
                    // lane) and re-insert `way` at the LRU lane. The
                    // upper nibbles of `bits` are zero by invariant, so
                    // the down-shift cannot smear garbage into lanes
                    // p..last.
                    let low = *bits & low_nibble_mask(p);
                    let mid = (*bits >> (4 * (p + 1))) << (4 * p);
                    *bits = low | mid | ((way as u64) << (4 * last));
                }
            }
            Repr::Wide(order) => {
                let pos = order
                    .iter()
                    .position(|&w| w as usize == way)
                    // snug-lint: allow(panic-audit, "documented contract: callers pass a way belonging to this set; a miss is a simulator bug worth crashing on")
                    .expect("way must be tracked by this LruOrder");
                let w = order.remove(pos);
                order.push(w);
            }
        }
    }

    /// Iterate ways MRU → LRU.
    pub fn iter_mru_to_lru(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.ways()).map(move |p| self.way_at(p))
    }
}

/// An unbounded-depth (up to `capacity`) LRU *tag stack* for stack
/// distance profiling: stores raw tags rather than way indices, evicting
/// the deepest entry on overflow. Used by the A_threshold-deep profiler
/// behind Figures 1–3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagStack {
    tags: Vec<u64>,
    capacity: usize,
}

impl TagStack {
    /// Create an empty stack bounded at `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        TagStack {
            tags: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Reference `tag`. Returns `Some(distance)` (1-based) if the tag was
    /// present — i.e. the access would hit in any associativity ≥
    /// distance — or `None` for a cold/overflowed reference. Either way
    /// the tag becomes MRU.
    pub fn access(&mut self, tag: u64) -> Option<usize> {
        match self.tags.iter().position(|&t| t == tag) {
            Some(pos) => {
                self.tags.remove(pos);
                self.tags.insert(0, tag);
                Some(pos + 1)
            }
            None => {
                if self.tags.len() == self.capacity {
                    self.tags.pop();
                }
                self.tags.insert(0, tag);
                None
            }
        }
    }

    /// Number of resident tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the stack holds no tags.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Drop all tags (new sampling interval with cold stack, if desired).
    pub fn clear(&mut self) {
        self.tags.clear();
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order_is_identity() {
        let o = LruOrder::new(4);
        assert_eq!(o.position(0), 1);
        assert_eq!(o.position(3), 4);
        assert_eq!(o.lru_way(), 3);
    }

    #[test]
    fn touch_promotes_and_reports_distance() {
        let mut o = LruOrder::new(4);
        assert_eq!(o.touch(2), 3, "way 2 was at position 3");
        assert_eq!(o.position(2), 1, "now MRU");
        assert_eq!(o.lru_way(), 3);
        assert_eq!(o.touch(3), 4);
        assert_eq!(o.lru_way(), 1, "way 1 is now least recent");
    }

    #[test]
    fn demote_moves_way_to_lru() {
        let mut o = LruOrder::new(4);
        o.touch(3);
        o.demote(3);
        assert_eq!(o.lru_way(), 3);
    }

    #[test]
    fn mru_iteration_order() {
        let mut o = LruOrder::new(3);
        o.touch(1);
        o.touch(2);
        let v: Vec<usize> = o.iter_mru_to_lru().collect();
        assert_eq!(v, vec![2, 1, 0]);
    }

    /// Reference implementation: the old byte-vector walk.
    struct RefOrder(Vec<usize>);

    impl RefOrder {
        fn new(n: usize) -> Self {
            RefOrder((0..n).collect())
        }
        fn touch(&mut self, way: usize) -> usize {
            let pos = self.0.iter().position(|&w| w == way).unwrap();
            let w = self.0.remove(pos);
            self.0.insert(0, w);
            pos + 1
        }
        fn demote(&mut self, way: usize) {
            let pos = self.0.iter().position(|&w| w == way).unwrap();
            let w = self.0.remove(pos);
            self.0.push(w);
        }
    }

    /// Drive the packed representation against the reference model with
    /// a deterministic pseudo-random op mix at the boundary widths.
    #[test]
    fn packed_matches_reference_model() {
        for n in [1usize, 2, 3, 4, 8, 15, 16] {
            let mut packed = LruOrder::new(n);
            let mut model = RefOrder::new(n);
            let mut state = 0x243f_6a88_85a3_08d3u64 ^ n as u64;
            for step in 0..2000 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let way = (state >> 33) as usize % n;
                if step % 7 == 3 {
                    packed.demote(way);
                    model.demote(way);
                } else {
                    assert_eq!(packed.touch(way), model.touch(way), "n={n} step={step}");
                }
                assert_eq!(
                    packed.iter_mru_to_lru().collect::<Vec<_>>(),
                    model.0,
                    "n={n} step={step}"
                );
                assert_eq!(packed.lru_way(), *model.0.last().unwrap());
                for w in 0..n {
                    assert_eq!(
                        packed.position(w),
                        model.0.iter().position(|&x| x == w).unwrap() + 1
                    );
                }
            }
        }
    }

    /// The wide (vec) fallback must behave identically at depth > 16.
    #[test]
    fn wide_fallback_matches_reference_model() {
        let n = 24;
        let mut wide = LruOrder::new(n);
        let mut model = RefOrder::new(n);
        let mut state = 0x1357_9bdf_2468_acefu64;
        for _ in 0..800 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let way = (state >> 33) as usize % n;
            assert_eq!(wide.touch(way), model.touch(way));
            assert_eq!(wide.iter_mru_to_lru().collect::<Vec<_>>(), model.0);
        }
    }

    #[test]
    fn full_sixteen_way_edge_lanes() {
        // Top-lane arithmetic (shift-by-64 hazards) at exactly 16 ways.
        let mut o = LruOrder::new(16);
        assert_eq!(o.touch(15), 16, "LRU way touched from the top lane");
        assert_eq!(o.position(15), 1);
        assert_eq!(o.lru_way(), 14);
        o.demote(15);
        assert_eq!(o.lru_way(), 15);
        assert_eq!(o.position(0), 1);
    }

    #[test]
    fn tag_stack_distances_cyclic_pattern() {
        // Cyclic access over d distinct tags hits at distance exactly d
        // once warm — the degenerate pattern exploited in the workload
        // models to pin block_required at d.
        let mut s = TagStack::new(32);
        let d = 5;
        for round in 0..4 {
            for t in 0..d {
                let got = s.access(t);
                if round == 0 {
                    assert_eq!(got, None, "cold");
                } else {
                    assert_eq!(got, Some(d as usize), "warm cyclic hits at depth d");
                }
            }
        }
    }

    #[test]
    fn tag_stack_overflow_drops_deepest() {
        let mut s = TagStack::new(2);
        s.access(1);
        s.access(2);
        s.access(3); // evicts tag 1
        assert_eq!(s.access(1), None, "evicted tag is cold again");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn tag_stack_mru_hit_distance_one() {
        let mut s = TagStack::new(8);
        s.access(9);
        assert_eq!(s.access(9), Some(1));
    }

    #[test]
    fn stack_property_monotonicity() {
        // For a random-ish reference string, hits counted at distance ≤ A
        // must be non-decreasing in A (Mattson's inclusion property).
        let mut s = TagStack::new(16);
        let refs = [
            3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6,
        ];
        let mut hist = [0u64; 17];
        for &r in &refs {
            if let Some(d) = s.access(r) {
                hist[d] += 1;
            }
        }
        let mut cum = 0;
        let mut prev = 0;
        for h in hist.iter().take(17).skip(1) {
            cum += h;
            assert!(cum >= prev);
            prev = cum;
        }
    }
}
