//! A set-associative write-back cache built from [`CacheSet`]s.
//!
//! Provides both a convenience demand-access path (used directly for the
//! L1 caches and the private-baseline L2) and the primitive operations
//! (probe / fill-at-set / invalidate) that the cooperative-caching
//! schemes in `snug-core` compose.

use crate::set::{CacheSet, Evicted, LineFlags};
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};
use sim_mem::{BlockAddr, Geometry};

/// Result of a demand access through [`SetAssocCache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessResult {
    /// Whether the block was resident.
    pub hit: bool,
    /// On a hit, the 1-based LRU stack distance observed.
    pub distance: Option<usize>,
    /// On a fill (miss path), the victim that was evicted, if any.
    pub evicted: Option<Evicted>,
}

/// A set-associative cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetAssocCache {
    geo: Geometry,
    sets: Vec<CacheSet>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Create an empty cache with the given geometry.
    pub fn new(geo: Geometry) -> Self {
        let sets = (0..geo.num_sets)
            .map(|_| CacheSet::new(geo.assoc))
            .collect();
        SetAssocCache {
            geo,
            sets,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// Home set index of a block.
    #[inline]
    pub fn home_set(&self, block: BlockAddr) -> usize {
        self.geo.set_index(block)
    }

    /// Demand access with allocate-on-miss into the home set. This is the
    /// whole story for L1s and the private L2 baseline.
    pub fn access(&mut self, block: BlockAddr, is_write: bool) -> AccessResult {
        let set = self.geo.set_index(block);
        if let Some(distance) = self.sets[set].access(block, is_write) {
            self.stats.hits += 1;
            if self.sets[set]
                // snug-lint: allow(panic-audit, "access() just hit this block in this set, so probe must find its way")
                .line(self.sets[set].probe(block).expect("hit line"))
                .flags
                .cc
            {
                self.stats.cc_hits += 1;
            }
            AccessResult {
                hit: true,
                distance: Some(distance),
                evicted: None,
            }
        } else {
            self.stats.misses += 1;
            let evicted = self.sets[set].fill(block, LineFlags::owned(is_write));
            self.note_eviction(&evicted);
            AccessResult {
                hit: false,
                distance: None,
                evicted,
            }
        }
    }

    /// Probe without side effects: `(set_index, way)` if the block is
    /// resident *in its home set*.
    pub fn probe(&self, block: BlockAddr) -> Option<(usize, usize)> {
        let set = self.geo.set_index(block);
        self.sets[set].probe(block).map(|w| (set, w))
    }

    /// Probe an arbitrary set (used by index-bit-flipping lookups).
    pub fn probe_in_set(&self, set: usize, block: BlockAddr) -> Option<usize> {
        self.sets[set].probe(block)
    }

    /// Hit path into a specific set (touch LRU, update dirty); returns
    /// stack distance if resident.
    pub fn touch_in_set(&mut self, set: usize, block: BlockAddr, is_write: bool) -> Option<usize> {
        self.sets[set].access(block, is_write)
    }

    /// Fill into a specific set with explicit flags; reports the victim.
    pub fn fill_in_set(
        &mut self,
        set: usize,
        block: BlockAddr,
        flags: LineFlags,
    ) -> Option<Evicted> {
        let evicted = self.sets[set].fill(block, flags);
        self.note_eviction(&evicted);
        evicted
    }

    /// Fill into a specific set, preferring to reclaim donated (CC)
    /// capacity before evicting owned lines.
    pub fn fill_in_set_prefer_evict_cc(
        &mut self,
        set: usize,
        block: BlockAddr,
        flags: LineFlags,
    ) -> Option<Evicted> {
        let evicted = self.sets[set].fill_prefer_evict_cc(block, flags);
        self.note_eviction(&evicted);
        evicted
    }

    fn note_eviction(&mut self, evicted: &Option<Evicted>) {
        if let Some(ev) = evicted {
            self.stats.evictions += 1;
            if ev.flags.dirty {
                self.stats.writebacks += 1;
            }
        }
    }

    /// Invalidate `block` from `set` if resident; returns removed line
    /// metadata.
    pub fn invalidate_in_set(&mut self, set: usize, block: BlockAddr) -> Option<LineFlags> {
        self.sets[set].invalidate(block).map(|l| l.flags)
    }

    /// Invalidate `block` from its home set.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineFlags> {
        let set = self.geo.set_index(block);
        self.invalidate_in_set(set, block)
    }

    /// Direct set access for scheme logic and tests.
    pub fn set(&self, idx: usize) -> &CacheSet {
        &self.sets[idx]
    }

    /// Mutable set access for scheme logic.
    pub fn set_mut(&mut self, idx: usize) -> &mut CacheSet {
        &mut self.sets[idx]
    }

    /// Statistics accessor.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable statistics (schemes bump spill/forward counters).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Total valid lines across all sets.
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().map(|s| s.valid_count()).sum()
    }

    /// Total valid CC lines across all sets.
    pub fn cc_lines(&self) -> usize {
        self.sets.iter().map(|s| s.cc_count()).sum()
    }

    /// Reset statistics after warm-up (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets, 2 ways, 64 B lines.
        SetAssocCache::new(Geometry::new(64, 4, 2))
    }

    fn blk(set: u64, tag: u64) -> BlockAddr {
        BlockAddr((tag << 2) | set)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let b = blk(1, 5);
        let r = c.access(b, false);
        assert!(!r.hit);
        let r2 = c.access(b, false);
        assert!(r2.hit);
        assert_eq!(r2.distance, Some(1));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflict_eviction_reports_victim() {
        let mut c = tiny();
        c.access(blk(2, 1), true); // dirty
        c.access(blk(2, 2), false);
        let r = c.access(blk(2, 3), false);
        let ev = r.evicted.unwrap();
        assert_eq!(ev.block, blk(2, 1));
        assert!(ev.flags.dirty);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(blk(0, 1), false);
        c.access(blk(1, 1), false);
        c.access(blk(2, 1), false);
        assert_eq!(c.stats().misses, 3);
        assert!(c.access(blk(0, 1), false).hit);
    }

    #[test]
    fn fill_in_foreign_set_probed_there() {
        let mut c = tiny();
        let b = blk(3, 7); // home set 3
        let foreign = 2;
        c.fill_in_set(foreign, b, LineFlags::received(true));
        assert!(c.probe(b).is_none(), "not in home set");
        assert!(c.probe_in_set(foreign, b).is_some());
        assert_eq!(c.cc_lines(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        let b = blk(1, 9);
        c.access(b, true);
        let fl = c.invalidate(b).unwrap();
        assert!(fl.dirty);
        assert!(c.probe(b).is_none());
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = tiny();
        let b = blk(0, 4);
        c.access(b, false);
        c.access(b, true);
        let (s, w) = c.probe(b).unwrap();
        assert!(c.set(s).line(w).flags.dirty);
    }

    #[test]
    fn cc_hit_counted() {
        let mut c = tiny();
        let b = blk(1, 3);
        c.fill_in_set(1, b, LineFlags::received(false));
        let r = c.access(b, false);
        assert!(r.hit);
        assert_eq!(c.stats().cc_hits, 1);
    }
}
