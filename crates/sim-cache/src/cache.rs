//! A set-associative write-back cache over struct-of-arrays storage.
//!
//! Provides both a convenience demand-access path (used directly for the
//! L1 caches and the private-baseline L2) and the primitive operations
//! (probe / fill-at-set / invalidate) that the cooperative-caching
//! schemes in `snug-core` compose.
//!
//! The storage layout is three parallel flat arrays indexed by
//! `set * assoc + way`: block addresses (the probe lane — a contiguous
//! `u64` run per set with an all-ones sentinel in invalid ways, so the
//! tag probe is a pure compare loop), metadata bytes (valid/dirty/cc/f
//! packed per line), and one [`LruOrder`] per set. Per-set behaviour
//! lives on the [`SetRef`]/[`SetMut`] views borrowed from these arrays.

use crate::lru::LruOrder;
use crate::set::{Evicted, LineFlags, SetMut, SetRef, INVALID_BLOCK, META_CC, META_VALID};
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};
use sim_mem::{BlockAddr, Geometry};

/// Result of a demand access through [`SetAssocCache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessResult {
    /// Whether the block was resident.
    pub hit: bool,
    /// On a hit, the 1-based LRU stack distance observed.
    pub distance: Option<usize>,
    /// On a fill (miss path), the victim that was evicted, if any.
    pub evicted: Option<Evicted>,
}

/// A set-associative cache (struct-of-arrays storage).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetAssocCache {
    geo: Geometry,
    /// `set * assoc + way` → block address; invalid ways hold
    /// [`INVALID_BLOCK`].
    blocks: Vec<BlockAddr>,
    /// `set * assoc + way` → packed valid/dirty/cc/flipped bits.
    meta: Vec<u8>,
    /// One recency permutation per set.
    lru: Vec<LruOrder>,
    /// Running count of valid CC lines across all sets, maintained by
    /// [`SetMut`] on every fill/invalidate. Schemes consult it on the
    /// peer-probe path: a slice holding zero CC lines can skip the tag
    /// probes of a retrieval snoop or coherence sweep entirely.
    cc_lines: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Create an empty cache with the given geometry.
    pub fn new(geo: Geometry) -> Self {
        let lines = geo.num_sets as usize * geo.assoc;
        SetAssocCache {
            geo,
            blocks: vec![INVALID_BLOCK; lines],
            meta: vec![0; lines],
            lru: (0..geo.num_sets)
                .map(|_| LruOrder::new(geo.assoc))
                .collect(),
            cc_lines: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// Home set index of a block.
    #[inline]
    pub fn home_set(&self, block: BlockAddr) -> usize {
        self.geo.set_index(block)
    }

    /// Start of `set`'s run in the flat arrays.
    #[inline]
    fn base(&self, set: usize) -> usize {
        set * self.geo.assoc
    }

    /// Demand access with allocate-on-miss into the home set. This is the
    /// whole story for L1s and the private L2 baseline.
    pub fn access(&mut self, block: BlockAddr, is_write: bool) -> AccessResult {
        let set = self.geo.set_index(block);
        let base = self.base(set);
        let assoc = self.geo.assoc;
        let probed = crate::set::probe_ways(&self.blocks[base..base + assoc], block);
        if let Some(way) = probed {
            let m = &mut self.meta[base + way];
            if is_write {
                *m |= crate::set::META_DIRTY;
            }
            let was_cc = *m & META_CC != 0;
            let distance = self.lru[set].touch(way);
            self.stats.hits += 1;
            if was_cc {
                self.stats.cc_hits += 1;
            }
            AccessResult {
                hit: true,
                distance: Some(distance),
                evicted: None,
            }
        } else {
            self.stats.misses += 1;
            let evicted = self.set_mut(set).fill(block, LineFlags::owned(is_write));
            self.note_eviction(&evicted);
            AccessResult {
                hit: false,
                distance: None,
                evicted,
            }
        }
    }

    /// Probe without side effects: `(set_index, way)` if the block is
    /// resident *in its home set*.
    pub fn probe(&self, block: BlockAddr) -> Option<(usize, usize)> {
        let set = self.geo.set_index(block);
        self.probe_in_set(set, block).map(|w| (set, w))
    }

    /// Probe an arbitrary set (used by index-bit-flipping lookups).
    #[inline]
    pub fn probe_in_set(&self, set: usize, block: BlockAddr) -> Option<usize> {
        let base = self.base(set);
        crate::set::probe_ways(&self.blocks[base..base + self.geo.assoc], block)
    }

    /// Hit path into a specific set (touch LRU, update dirty); returns
    /// stack distance if resident.
    pub fn touch_in_set(&mut self, set: usize, block: BlockAddr, is_write: bool) -> Option<usize> {
        let way = self.probe_in_set(set, block)?;
        Some(self.touch_way_in_set(set, way, is_write).0)
    }

    /// Hit path when the way is already known (single-probe callers):
    /// touch LRU, update dirty, and report `(stack_distance, was_cc)`
    /// without re-probing. Does not touch hit statistics — the caller
    /// owns the accounting, as with [`SetAssocCache::touch_in_set`].
    #[inline]
    pub fn touch_way_in_set(&mut self, set: usize, way: usize, is_write: bool) -> (usize, bool) {
        let base = self.base(set);
        let m = &mut self.meta[base + way];
        debug_assert!(*m & META_VALID != 0, "touching an invalid way");
        if is_write {
            *m |= crate::set::META_DIRTY;
        }
        let was_cc = *m & META_CC != 0;
        (self.lru[set].touch(way), was_cc)
    }

    /// Fill into a specific set with explicit flags; reports the victim.
    pub fn fill_in_set(
        &mut self,
        set: usize,
        block: BlockAddr,
        flags: LineFlags,
    ) -> Option<Evicted> {
        let evicted = self.set_mut(set).fill(block, flags);
        self.note_eviction(&evicted);
        evicted
    }

    /// Fill into a specific set, preferring to reclaim donated (CC)
    /// capacity before evicting owned lines.
    pub fn fill_in_set_prefer_evict_cc(
        &mut self,
        set: usize,
        block: BlockAddr,
        flags: LineFlags,
    ) -> Option<Evicted> {
        let evicted = self.set_mut(set).fill_prefer_evict_cc(block, flags);
        self.note_eviction(&evicted);
        evicted
    }

    fn note_eviction(&mut self, evicted: &Option<Evicted>) {
        if let Some(ev) = evicted {
            self.stats.evictions += 1;
            if ev.flags.dirty {
                self.stats.writebacks += 1;
            }
        }
    }

    /// Invalidate `block` from `set` if resident; returns removed line
    /// metadata.
    pub fn invalidate_in_set(&mut self, set: usize, block: BlockAddr) -> Option<LineFlags> {
        self.set_mut(set).invalidate(block).map(|l| l.flags)
    }

    /// Invalidate `block` from its home set.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineFlags> {
        let set = self.geo.set_index(block);
        self.invalidate_in_set(set, block)
    }

    /// Borrow one set read-only, for scheme logic and tests.
    pub fn set(&self, idx: usize) -> SetRef<'_> {
        let base = self.base(idx);
        let assoc = self.geo.assoc;
        SetRef {
            blocks: &self.blocks[base..base + assoc],
            meta: &self.meta[base..base + assoc],
            lru: &self.lru[idx],
        }
    }

    /// Borrow one set mutably, for scheme logic.
    pub fn set_mut(&mut self, idx: usize) -> SetMut<'_> {
        let base = idx * self.geo.assoc;
        let assoc = self.geo.assoc;
        SetMut {
            blocks: &mut self.blocks[base..base + assoc],
            meta: &mut self.meta[base..base + assoc],
            lru: &mut self.lru[idx],
            cc_lines: &mut self.cc_lines,
        }
    }

    /// Statistics accessor.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable statistics (schemes bump spill/forward counters).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Total valid lines across all sets.
    pub fn valid_lines(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).count()
    }

    /// Total valid CC lines across all sets (O(1): maintained
    /// incrementally by every fill/invalidate).
    #[inline]
    pub fn cc_lines(&self) -> usize {
        self.cc_lines as usize
    }

    /// Recount CC lines from the metadata lane (diagnostics/tests — the
    /// ground truth the incremental [`SetAssocCache::cc_lines`] tally
    /// must track).
    pub fn cc_lines_scan(&self) -> usize {
        self.meta
            .iter()
            .filter(|&&m| m & (META_VALID | META_CC) == META_VALID | META_CC)
            .count()
    }

    /// Reset statistics after warm-up (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets, 2 ways, 64 B lines.
        SetAssocCache::new(Geometry::new(64, 4, 2))
    }

    fn blk(set: u64, tag: u64) -> BlockAddr {
        BlockAddr((tag << 2) | set)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let b = blk(1, 5);
        let r = c.access(b, false);
        assert!(!r.hit);
        let r2 = c.access(b, false);
        assert!(r2.hit);
        assert_eq!(r2.distance, Some(1));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflict_eviction_reports_victim() {
        let mut c = tiny();
        c.access(blk(2, 1), true); // dirty
        c.access(blk(2, 2), false);
        let r = c.access(blk(2, 3), false);
        let ev = r.evicted.unwrap();
        assert_eq!(ev.block, blk(2, 1));
        assert!(ev.flags.dirty);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(blk(0, 1), false);
        c.access(blk(1, 1), false);
        c.access(blk(2, 1), false);
        assert_eq!(c.stats().misses, 3);
        assert!(c.access(blk(0, 1), false).hit);
    }

    #[test]
    fn fill_in_foreign_set_probed_there() {
        let mut c = tiny();
        let b = blk(3, 7); // home set 3
        let foreign = 2;
        c.fill_in_set(foreign, b, LineFlags::received(true));
        assert!(c.probe(b).is_none(), "not in home set");
        assert!(c.probe_in_set(foreign, b).is_some());
        assert_eq!(c.cc_lines(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        let b = blk(1, 9);
        c.access(b, true);
        let fl = c.invalidate(b).unwrap();
        assert!(fl.dirty);
        assert!(c.probe(b).is_none());
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = tiny();
        let b = blk(0, 4);
        c.access(b, false);
        c.access(b, true);
        let (s, w) = c.probe(b).unwrap();
        assert!(c.set(s).line(w).flags.dirty);
    }

    #[test]
    fn cc_hit_counted() {
        let mut c = tiny();
        let b = blk(1, 3);
        c.fill_in_set(1, b, LineFlags::received(false));
        let r = c.access(b, false);
        assert!(r.hit);
        assert_eq!(c.stats().cc_hits, 1);
    }

    #[test]
    fn cc_tally_tracks_storage_through_mixed_operations() {
        let mut c = tiny();
        // Interleave received fills, owned fills, hits, invalidations and
        // CC-preferring evictions; the incremental tally must equal a
        // fresh scan at every step.
        for i in 0..200u64 {
            let set = (i % 4) as usize;
            let block = blk(set as u64, 1 + i % 7);
            match i % 5 {
                0 => {
                    if c.probe_in_set(set, block).is_none() {
                        c.fill_in_set(set, block, LineFlags::received(i % 2 == 0));
                    }
                }
                1 => {
                    c.access(block, i % 3 == 0);
                }
                2 => {
                    c.invalidate_in_set(set, block);
                }
                3 => {
                    if c.probe_in_set(set, block).is_none() {
                        c.fill_in_set_prefer_evict_cc(set, block, LineFlags::owned(false));
                    }
                }
                _ => {
                    if let Some(way) = c.probe_in_set(set, block) {
                        c.set_mut(set).invalidate_way(way);
                    }
                }
            }
            assert_eq!(c.cc_lines(), c.cc_lines_scan(), "step {i}");
        }
    }

    #[test]
    fn touch_way_in_set_matches_touch_in_set() {
        let mut a = tiny();
        let mut b_cache = tiny();
        let b = blk(2, 5);
        a.fill_in_set(2, b, LineFlags::received(false));
        b_cache.fill_in_set(2, b, LineFlags::received(false));
        let d1 = a.touch_in_set(2, b, true).unwrap();
        let way = b_cache.probe_in_set(2, b).unwrap();
        let (d2, was_cc) = b_cache.touch_way_in_set(2, way, true);
        assert_eq!(d1, d2);
        assert!(was_cc);
        assert_eq!(a.set(2).line(way), b_cache.set(2).line(way));
    }
}
