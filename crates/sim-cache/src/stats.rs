//! Per-cache event counters.

use serde::{Deserialize, Serialize};

/// Counters maintained by every cache structure in the hierarchy.
///
/// Scheme-specific events (spills, receives, forwards, shadow activity)
/// are also counted here so that every L2 organisation reports through a
/// single type; organisations that never spill simply leave those fields
/// at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses that hit (including hits on cooperatively cached
    /// lines held locally).
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Subset of `hits` that hit on a CC (received) line.
    pub cc_hits: u64,
    /// Valid lines evicted by fills.
    pub evictions: u64,
    /// Dirty evictions handed to the write-back path.
    pub writebacks: u64,
    /// Clean owned victims spilled to a peer cache.
    pub spills_out: u64,
    /// Spilled blocks accepted from peers into this cache.
    pub spills_in: u64,
    /// Blocks forwarded to their owner on a retrieve request (each
    /// forward also invalidates the local copy).
    pub forwards: u64,
    /// Retrieve requests this cache issued that a peer satisfied.
    pub retrieved_from_peer: u64,
    /// Hits in the shadow tag array (SNUG monitor).
    pub shadow_hits: u64,
    /// Read hits satisfied directly from the write buffer.
    pub write_buffer_hits: u64,
}

impl CacheStats {
    /// Total demand accesses.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 if no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }

    /// Hit ratio in `[0, 1]`; 0 if no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.hits as f64 / a as f64
        }
    }

    /// Merge another stats block into this one (for aggregating slices).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.cc_hits += other.cc_hits;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.spills_out += other.spills_out;
        self.spills_in += other.spills_in;
        self.forwards += other.forwards;
        self.retrieved_from_peer += other.retrieved_from_peer;
        self.shadow_hits += other.shadow_hits;
        self.write_buffer_hits += other.write_buffer_hits;
    }

    /// Reset all counters (end of warm-up).
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_empty_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
    }

    #[test]
    fn ratios_sum_to_one() {
        let s = CacheStats {
            hits: 30,
            misses: 10,
            ..Default::default()
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.accesses(), 40);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats {
            hits: 1,
            spills_out: 2,
            ..Default::default()
        };
        let b = CacheStats {
            hits: 3,
            spills_out: 4,
            shadow_hits: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.spills_out, 6);
        assert_eq!(a.shadow_hits, 5);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats {
            hits: 9,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
