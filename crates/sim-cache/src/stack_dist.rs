//! Per-set LRU stack-distance profiling (Mattson et al., 1970).
//!
//! This is the measurement instrument behind the paper's characterisation
//! (§2.1–2.2): for every set it maintains an `A_threshold`-deep LRU tag
//! stack and a histogram of hit positions per sampling interval. Thanks
//! to the LRU stack property, `hit_count(S, I, A)` for *every*
//! associativity `A ≤ A_threshold` is recovered from one pass.

use crate::lru::TagStack;
use serde::{Deserialize, Serialize};
use sim_mem::BlockAddr;

/// Per-set hit-position histogram for one sampling interval.
///
/// `positions[d]` counts hits at stack distance `d` (1-based);
/// `positions[0]` counts cold/beyond-threshold references (misses even at
/// `A_threshold`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetHistogram {
    positions: Vec<u64>,
}

impl SetHistogram {
    fn new(a_threshold: usize) -> Self {
        SetHistogram {
            positions: vec![0; a_threshold + 1],
        }
    }

    /// Hits at distances `1..=a` — the paper's `hit_count(S, I, A)`.
    pub fn hit_count(&self, a: usize) -> u64 {
        self.positions[1..=a.min(self.positions.len() - 1)]
            .iter()
            .sum()
    }

    /// References that missed even at `A_threshold` (compulsory-ish).
    pub fn cold(&self) -> u64 {
        self.positions[0]
    }

    /// Total references recorded.
    pub fn total(&self) -> u64 {
        self.positions.iter().sum()
    }

    /// Raw histogram access (index = distance; 0 = cold).
    pub fn raw(&self) -> &[u64] {
        &self.positions
    }

    fn record(&mut self, distance: Option<usize>) {
        match distance {
            Some(d) if d < self.positions.len() => self.positions[d] += 1,
            _ => self.positions[0] += 1,
        }
    }

    fn clear(&mut self) {
        self.positions.iter_mut().for_each(|p| *p = 0);
    }
}

/// Profiles the set-level capacity demand of an L2 access stream.
#[derive(Debug, Clone)]
pub struct SetDemandProfiler {
    a_threshold: usize,
    num_sets: usize,
    stacks: Vec<TagStack>,
    hists: Vec<SetHistogram>,
}

impl SetDemandProfiler {
    /// Create a profiler for `num_sets` sets with stacks `a_threshold`
    /// deep. The paper uses `num_sets = 1024`,
    /// `a_threshold = 2 × A_baseline = 32`.
    pub fn new(num_sets: usize, a_threshold: usize) -> Self {
        assert!(num_sets >= 1 && a_threshold >= 1);
        SetDemandProfiler {
            a_threshold,
            num_sets,
            stacks: (0..num_sets).map(|_| TagStack::new(a_threshold)).collect(),
            hists: (0..num_sets)
                .map(|_| SetHistogram::new(a_threshold))
                .collect(),
        }
    }

    /// The paper's configuration for the baseline L2 (1024 sets, 32-deep).
    pub fn paper() -> Self {
        SetDemandProfiler::new(1024, 32)
    }

    /// Record one L2 access to `set` for `block`.
    pub fn access(&mut self, set: usize, block: BlockAddr) {
        let d = self.stacks[set].access(block.0);
        self.hists[set].record(d);
    }

    /// Histogram for `set` in the current interval.
    pub fn histogram(&self, set: usize) -> &SetHistogram {
        &self.hists[set]
    }

    /// Finish the current interval: hand the histograms to `f` and clear
    /// them. The tag stacks stay warm across intervals (as in a real
    /// monitoring structure).
    pub fn end_interval<R>(&mut self, f: impl FnOnce(&[SetHistogram]) -> R) -> R {
        let r = f(&self.hists);
        for h in &mut self.hists {
            h.clear();
        }
        r
    }

    /// Number of sets profiled.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Stack depth (`A_threshold`).
    pub fn a_threshold(&self) -> usize {
        self.a_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: u64) -> BlockAddr {
        BlockAddr(x)
    }

    #[test]
    fn hit_count_monotone_in_a() {
        let mut p = SetDemandProfiler::new(1, 8);
        let refs = [1u64, 2, 3, 1, 2, 3, 4, 1, 4, 2, 5, 1];
        for &r in &refs {
            p.access(0, b(r));
        }
        let h = p.histogram(0);
        let mut prev = 0;
        for a in 1..=8 {
            let c = h.hit_count(a);
            assert!(c >= prev, "stack property violated at A={a}");
            prev = c;
        }
        assert_eq!(h.total(), refs.len() as u64);
    }

    #[test]
    fn cyclic_pattern_concentrates_at_d() {
        let mut p = SetDemandProfiler::new(1, 32);
        let d = 6u64;
        for round in 0..10 {
            for t in 0..d {
                let _ = round;
                p.access(0, b(t));
            }
        }
        let h = p.histogram(0);
        // 9 warm rounds × 6 tags hit at distance exactly 6.
        assert_eq!(h.raw()[6], 54);
        assert_eq!(h.cold(), 6, "first round is cold");
        assert_eq!(h.hit_count(5), 0);
        assert_eq!(h.hit_count(6), 54);
    }

    #[test]
    fn interval_clears_histograms_keeps_stacks() {
        let mut p = SetDemandProfiler::new(1, 8);
        p.access(0, b(1));
        p.access(0, b(1));
        let total = p.end_interval(|h| h[0].total());
        assert_eq!(total, 2);
        assert_eq!(p.histogram(0).total(), 0, "histogram cleared");
        // Stack is warm: the next access to b(1) is a hit at distance 1.
        p.access(0, b(1));
        assert_eq!(p.histogram(0).raw()[1], 1);
    }

    #[test]
    fn sets_profiled_independently() {
        let mut p = SetDemandProfiler::new(2, 4);
        p.access(0, b(1));
        p.access(1, b(1));
        p.access(0, b(1));
        assert_eq!(p.histogram(0).hit_count(4), 1);
        assert_eq!(p.histogram(1).hit_count(4), 0);
    }

    #[test]
    fn beyond_threshold_counts_cold() {
        let mut p = SetDemandProfiler::new(1, 2);
        p.access(0, b(1));
        p.access(0, b(2));
        p.access(0, b(3)); // evicts 1 from the 2-deep stack
        p.access(0, b(1)); // would be distance 3 > threshold → cold
        assert_eq!(p.histogram(0).cold(), 4);
    }
}
