//! The per-slice L2 write-back buffer (paper Table 4: FIFO, mergeable,
//! 16 entries × 64 B, supporting direct read).
//!
//! Dirty L2 victims enter the buffer instead of stalling the cache
//! (Skadron & Clark, HPCA'97). Entries drain to DRAM in FIFO order.
//! A read that matches a buffered block is satisfied directly from the
//! buffer ("direct read"), and a new dirty victim for a buffered block
//! merges with the existing entry.

use serde::{Deserialize, Serialize};
use sim_mem::BlockAddr;
use std::collections::VecDeque;

/// Outcome of pushing a victim into the write buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushOutcome {
    /// Stored in a free entry.
    Stored,
    /// Merged with an existing entry for the same block.
    Merged,
    /// Buffer full: the caller must stall until [`WriteBuffer::drain_one`]
    /// frees an entry (the returned time is when the oldest entry's drain
    /// can begin at the earliest).
    Full,
}

/// Statistics for one write buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteBufferStats {
    /// Victims accepted (stored or merged).
    pub pushes: u64,
    /// Pushes that merged with an existing entry.
    pub merges: u64,
    /// Reads satisfied directly from the buffer.
    pub direct_reads: u64,
    /// Entries drained to DRAM.
    pub drains: u64,
    /// Pushes that found the buffer full (stall events).
    pub full_stalls: u64,
}

/// The FIFO mergeable write-back buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteBuffer {
    entries: VecDeque<BlockAddr>,
    capacity: usize,
    stats: WriteBufferStats,
}

impl WriteBuffer {
    /// Create a buffer with `capacity` entries (paper: 16).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        WriteBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: WriteBufferStats::default(),
        }
    }

    /// The paper's 16-entry buffer.
    pub fn paper() -> Self {
        WriteBuffer::new(16)
    }

    /// Push a dirty victim. Merges if the block is already buffered.
    pub fn push(&mut self, block: BlockAddr) -> PushOutcome {
        if self.entries.iter().any(|&b| b == block) {
            self.stats.pushes += 1;
            self.stats.merges += 1;
            return PushOutcome::Merged;
        }
        if self.entries.len() == self.capacity {
            self.stats.full_stalls += 1;
            return PushOutcome::Full;
        }
        self.entries.push_back(block);
        self.stats.pushes += 1;
        PushOutcome::Stored
    }

    /// Direct-read probe: `true` if `block` is buffered. Does not remove
    /// the entry (the data is still dirty and must eventually drain; a
    /// refetch into the cache copies it).
    pub fn direct_read(&mut self, block: BlockAddr) -> bool {
        let hit = self.entries.iter().any(|&b| b == block);
        if hit {
            self.stats.direct_reads += 1;
        }
        hit
    }

    /// Remove a buffered block (e.g. it was re-fetched into the cache
    /// dirty, superseding the buffered copy). Returns whether it existed.
    pub fn remove(&mut self, block: BlockAddr) -> bool {
        if let Some(pos) = self.entries.iter().position(|&b| b == block) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Drain the oldest entry (FIFO). Returns it, if any.
    pub fn drain_one(&mut self) -> Option<BlockAddr> {
        let b = self.entries.pop_front();
        if b.is_some() {
            self.stats.drains += 1;
        }
        b
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Statistics accessor.
    pub fn stats(&self) -> WriteBufferStats {
        self.stats
    }

    /// Reset statistics (warm-up boundary).
    pub fn reset_stats(&mut self) {
        self.stats = WriteBufferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: u64) -> BlockAddr {
        BlockAddr(x)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut wb = WriteBuffer::new(4);
        wb.push(b(1));
        wb.push(b(2));
        wb.push(b(3));
        assert_eq!(wb.drain_one(), Some(b(1)));
        assert_eq!(wb.drain_one(), Some(b(2)));
        assert_eq!(wb.drain_one(), Some(b(3)));
        assert_eq!(wb.drain_one(), None);
    }

    #[test]
    fn merge_same_block() {
        let mut wb = WriteBuffer::new(2);
        assert_eq!(wb.push(b(5)), PushOutcome::Stored);
        assert_eq!(wb.push(b(5)), PushOutcome::Merged);
        assert_eq!(wb.len(), 1);
        assert_eq!(wb.stats().merges, 1);
    }

    #[test]
    fn full_buffer_signals_stall() {
        let mut wb = WriteBuffer::new(2);
        wb.push(b(1));
        wb.push(b(2));
        assert_eq!(wb.push(b(3)), PushOutcome::Full);
        assert_eq!(wb.stats().full_stalls, 1);
        assert_eq!(wb.len(), 2);
        // Merging is still possible when full.
        assert_eq!(wb.push(b(2)), PushOutcome::Merged);
    }

    #[test]
    fn direct_read_hits_without_removing() {
        let mut wb = WriteBuffer::new(4);
        wb.push(b(7));
        assert!(wb.direct_read(b(7)));
        assert!(wb.direct_read(b(7)), "entry persists after direct read");
        assert!(!wb.direct_read(b(8)));
        assert_eq!(wb.stats().direct_reads, 2);
    }

    #[test]
    fn remove_deletes_entry() {
        let mut wb = WriteBuffer::new(4);
        wb.push(b(7));
        assert!(wb.remove(b(7)));
        assert!(!wb.remove(b(7)));
        assert!(wb.is_empty());
    }

    #[test]
    fn paper_buffer_has_16_entries() {
        assert_eq!(WriteBuffer::paper().capacity(), 16);
    }
}
