//! # sim-cache — cache substrate for the SNUG reproduction
//!
//! Building blocks for every cache structure in the paper's Table 4
//! hierarchy and for the characterisation of §2:
//!
//! * [`lru`] — true-LRU recency orders and deep tag stacks with
//!   stack-distance queries (Mattson stack property);
//! * [`set`] / [`cache`] — set-associative write-back caches whose lines
//!   carry the paper's `CC` and `f` bits (Fig. 4);
//! * [`shadow`] — the SNUG per-set shadow tag array and demand monitor
//!   (§3.1);
//! * [`satcounter`] — k-bit saturating counters, the modulo-p divider
//!   (Figs. 6–7) and DSR's PSEL;
//! * [`writebuffer`] — the 16-entry FIFO mergeable write-back buffer;
//! * [`stack_dist`] / [`demand`] — the capacity-demand quantification of
//!   Formulas (1)–(5) behind Figures 1–3;
//! * [`stats`] — per-cache event counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod demand;
pub mod lru;
pub mod satcounter;
pub mod set;
pub mod shadow;
pub mod stack_dist;
pub mod stats;
pub mod writebuffer;

pub use cache::{AccessResult, SetAssocCache};
pub use demand::{block_required, BucketDistribution, DemandParams};
pub use lru::{LruOrder, TagStack};
pub use satcounter::{DemandMonitor, Psel, SatCounter};
pub use set::{CacheLine, Evicted, LineFlags, SetMut, SetRef};
pub use shadow::{ShadowArray, ShadowSet};
pub use stack_dist::{SetDemandProfiler, SetHistogram};
pub use stats::CacheStats;
pub use writebuffer::{PushOutcome, WriteBuffer, WriteBufferStats};
