//! Saturating counters and the modulo-*p* hit counter used by SNUG's
//! per-set capacity-demand monitor (paper §3.1.2, Figs. 6–7).
//!
//! The scheme: a k-bit saturating counter is initialised to `2^(k-1) - 1`
//! (all bits below the MSB set). Every hit on the *shadow* set increments
//! it; every `p` hits on the real-or-shadow set decrement it. The MSB
//! then answers "would doubling this set's capacity raise its hit rate by
//! at least 1/p?": MSB = 1 ⇒ the set is a **taker**, MSB = 0 ⇒ **giver**.

use serde::{Deserialize, Serialize};

/// A k-bit saturating counter (1 ≤ k ≤ 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SatCounter {
    value: u16,
    max: u16,
    init: u16,
}

impl SatCounter {
    /// Create a k-bit counter initialised to `2^(k-1) - 1` (paper Fig. 7).
    pub fn new(k: u32) -> Self {
        assert!((1..=16).contains(&k), "counter width must be 1..=16 bits");
        // snug-lint: allow(no-lossy-cast-in-kernel, "k is asserted 1..=16, so 2^k - 1 <= u16::MAX")
        let max = ((1u32 << k) - 1) as u16;
        // snug-lint: allow(no-lossy-cast-in-kernel, "k is asserted 1..=16, so 2^(k-1) - 1 <= u16::MAX")
        let init = ((1u32 << (k - 1)) - 1) as u16;
        SatCounter {
            value: init,
            max,
            init,
        }
    }

    /// Create with an explicit initial value (clamped to range).
    pub fn with_value(k: u32, value: u16) -> Self {
        let mut c = Self::new(k);
        c.value = value.min(c.max);
        c
    }

    /// Saturating increment.
    #[inline]
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn dec(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u16 {
        self.value
    }

    /// Most significant bit of the counter. For SNUG this is the
    /// taker/giver verdict: `true` ⇒ taker.
    #[inline]
    pub fn msb(&self) -> bool {
        self.value > self.init
    }

    /// Reset to the initial value `2^(k-1) - 1`.
    #[inline]
    pub fn reset(&mut self) {
        self.value = self.init;
    }

    /// Maximum representable value (`2^k - 1`).
    pub fn max(&self) -> u16 {
        self.max
    }

    /// The initial/neutral value (`2^(k-1) - 1`).
    pub fn init(&self) -> u16 {
        self.init
    }
}

/// Wider saturating counter for DSR's PSEL policy selector (10 bits in
/// Qureshi's HPCA'09 paper). Semantics identical to [`SatCounter`] but
/// u32-valued for convenience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Psel {
    value: u32,
    max: u32,
    mid: u32,
}

impl Psel {
    /// Create a k-bit PSEL initialised to its midpoint.
    pub fn new(k: u32) -> Self {
        assert!((1..=31).contains(&k));
        let max = (1u32 << k) - 1;
        let mid = 1u32 << (k - 1);
        Psel {
            value: mid,
            max,
            mid,
        }
    }

    /// Saturating increment.
    #[inline]
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn dec(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Whether the counter sits at or above its midpoint.
    #[inline]
    pub fn high(&self) -> bool {
        self.value >= self.mid
    }

    /// Current value.
    pub fn value(&self) -> u32 {
        self.value
    }
}

/// The complete per-set monitor: the k-bit saturating counter plus the
/// modulo-p divider that turns "one decrement per p real-or-shadow hits"
/// into counter operations (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandMonitor {
    counter: SatCounter,
    /// Counts hits modulo p; on reaching p the saturating counter is
    /// decremented. In hardware this is the `log p`-bit counter of
    /// paper Table 2 (3 bits for p = 8).
    mod_count: u16,
    p: u16,
}

impl DemandMonitor {
    /// Create a monitor with counter width `k` bits and threshold `1/p`.
    /// The paper uses k = 4, p = 8.
    pub fn new(k: u32, p: u16) -> Self {
        assert!(p >= 1, "p must be at least 1");
        DemandMonitor {
            counter: SatCounter::new(k),
            mod_count: 0,
            p,
        }
    }

    /// The paper's configuration (k = 4, p = 8; Table 2).
    pub fn paper() -> Self {
        DemandMonitor::new(4, 8)
    }

    /// Record a hit on the **real** L2 set: contributes only to the
    /// modulo-p decrement stream.
    #[inline]
    pub fn real_hit(&mut self) {
        self.tick_mod();
    }

    /// Record a hit on the **shadow** set: increments the saturating
    /// counter *and* contributes to the modulo-p stream (shadow hits are
    /// "hits on the real or shadow sets" in the paper's wording).
    #[inline]
    pub fn shadow_hit(&mut self) {
        self.counter.inc();
        self.tick_mod();
    }

    #[inline]
    fn tick_mod(&mut self) {
        self.mod_count += 1;
        if self.mod_count == self.p {
            self.mod_count = 0;
            self.counter.dec();
        }
    }

    /// The taker/giver verdict: `true` ⇒ taker (MSB set).
    #[inline]
    pub fn is_taker(&self) -> bool {
        self.counter.msb()
    }

    /// Reset for the next sampling period (counter to neutral, mod-p
    /// phase cleared).
    pub fn reset(&mut self) {
        self.counter.reset();
        self.mod_count = 0;
    }

    /// Raw counter value (for tests/ablation instrumentation).
    pub fn counter_value(&self) -> u16 {
        self.counter.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bit_counter_inits_to_seven() {
        let c = SatCounter::new(4);
        assert_eq!(c.value(), 7);
        assert_eq!(c.max(), 15);
        assert!(!c.msb(), "init value has MSB clear");
    }

    #[test]
    fn msb_flips_at_eight() {
        let mut c = SatCounter::new(4);
        c.inc();
        assert_eq!(c.value(), 8);
        assert!(c.msb());
        c.dec();
        assert!(!c.msb());
    }

    #[test]
    fn saturates_at_bounds() {
        let mut c = SatCounter::new(2); // max = 3, init = 1
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.value(), 3);
        for _ in 0..10 {
            c.dec();
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn psel_midpoint_behaviour() {
        let mut p = Psel::new(10);
        assert!(p.high());
        p.dec();
        assert!(!p.high());
        p.inc();
        assert!(p.high());
    }

    #[test]
    fn monitor_marks_taker_when_shadow_hits_dominate() {
        // sigma = shadow / (real + shadow) > 1/8 should eventually set MSB.
        let mut m = DemandMonitor::paper();
        // 1 shadow hit per 4 total hits: sigma = 1/4 > 1/8 ⇒ taker.
        for _ in 0..64 {
            m.shadow_hit();
            m.real_hit();
            m.real_hit();
            m.real_hit();
        }
        assert!(m.is_taker());
    }

    #[test]
    fn monitor_marks_giver_when_shadow_hits_rare() {
        // 1 shadow hit per 16 total: sigma = 1/16 < 1/8 ⇒ giver.
        let mut m = DemandMonitor::paper();
        for _ in 0..64 {
            m.shadow_hit();
            for _ in 0..15 {
                m.real_hit();
            }
        }
        assert!(!m.is_taker());
    }

    #[test]
    fn monitor_neutral_at_exact_threshold() {
        // Exactly 1 shadow hit per 8 total hits: +1 per group, -1 per
        // group; the counter should hover at its init value and stay giver
        // (the paper requires sigma STRICTLY greater than 1/p).
        let mut m = DemandMonitor::paper();
        for _ in 0..100 {
            m.shadow_hit();
            for _ in 0..7 {
                m.real_hit();
            }
        }
        assert!(!m.is_taker());
        assert_eq!(m.counter_value(), 7);
    }

    #[test]
    fn monitor_reset_clears_phase() {
        let mut m = DemandMonitor::new(4, 8);
        for _ in 0..5 {
            m.real_hit();
        }
        m.reset();
        // After reset, 7 more real hits must NOT decrement (phase cleared).
        for _ in 0..7 {
            m.real_hit();
        }
        assert_eq!(m.counter_value(), 7);
        m.real_hit();
        assert_eq!(m.counter_value(), 6);
    }

    #[test]
    fn streaming_set_is_giver() {
        // A streaming set sees no shadow hits at all: every eviction is
        // cold. The counter should drift to 0 and stay a giver.
        let mut m = DemandMonitor::paper();
        for _ in 0..1000 {
            m.real_hit();
        }
        assert!(!m.is_taker());
        assert_eq!(m.counter_value(), 0);
    }
}
