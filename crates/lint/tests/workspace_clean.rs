//! The real workspace must stay lint-clean: zero findings, every
//! pragma justified and load-bearing. This is the same gate CI runs
//! via `cargo run -p snug-lint`, kept here so `cargo test` catches a
//! violation before the workflow does.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    let findings = snug_lint::lint_workspace(root).expect("lint runs");
    assert!(
        findings.is_empty(),
        "workspace is not lint-clean:\n{}",
        snug_lint::report::human(&findings)
    );
}
