//! End-to-end rule-engine tests over the seeded-violation fixture
//! crates in `fixtures/`: every rule must fire where seeded, pragmas
//! must suppress (and rot must be flagged), and the lexer traps —
//! HashMap in raw strings, nested block comments, idents in line
//! comments — must stay silent.

use std::path::Path;

use snug_lint::rules::{run, Finding};
use snug_lint::workspace::discover;

fn fixture_findings() -> Vec<Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let ws = discover(&root).expect("fixture workspace discovers");
    run(&ws)
}

fn of_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn every_rule_fires_on_the_fixtures() {
    let findings = fixture_findings();
    for rule in [
        "no-unordered-iteration",
        "no-wallclock-in-kernel",
        "key-fragment-registry",
        "feature-cfg-audit",
        "panic-audit",
        "forbid-unsafe",
        "pragma",
        "snapshot-completeness",
        "codec-field-bijection",
        "obs-cfg-consistency",
        "no-lossy-cast-in-kernel",
    ] {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "rule {rule} did not fire on the fixtures:\n{findings:#?}"
        );
    }
}

#[test]
fn unordered_iteration_fires_on_usage_not_import() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "no-unordered-iteration");
    assert!(!hits.is_empty());
    assert!(hits
        .iter()
        .all(|f| f.file.ends_with("kernelviol/src/lib.rs")));
    // The `use std::collections::HashMap;` import line (7) is skipped;
    // only usage sites fire.
    assert!(hits.iter().all(|f| f.line != 7), "{hits:#?}");
}

#[test]
fn wallclock_fires_in_kernel_crate_only() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "no-wallclock-in-kernel");
    assert!(!hits.is_empty());
    assert!(hits.iter().all(|f| f.file.contains("kernelviol")));
}

#[test]
fn panic_audit_fires_once_pragmas_suppress_the_rest() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "panic-audit");
    // Exactly the one unjustified unwrap: the pragma'd expect, the
    // pragma'd unwrap inside macro_rules!, and all test-mod unwraps
    // are exempt or suppressed.
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits[0].msg.contains("unwrap()"));
}

#[test]
fn feature_cfg_audit_fires_on_undeclared_cfg_and_bad_default() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "feature-cfg-audit");
    assert!(
        hits.iter()
            .any(|f| f.file.ends_with("kernelviol/src/lib.rs") && f.msg.contains("nonexistent")),
        "{hits:#?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.file.ends_with("keyviol/Cargo.toml") && f.msg.contains("ghost")),
        "{hits:#?}"
    );
}

#[test]
fn forbid_unsafe_fires_only_where_missing() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "forbid-unsafe");
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits[0].file.ends_with("kernelviol/src/lib.rs"));
}

#[test]
fn key_fragment_registry_catches_drift_both_ways() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "key-fragment-registry");
    // Unregistered fragment in source.
    assert!(
        hits.iter()
            .any(|f| f.file.ends_with("src/spec.rs") && f.msg.contains("badfrag=")),
        "{hits:#?}"
    );
    // Stale registry entry.
    assert!(
        hits.iter()
            .any(|f| f.file.ends_with("key_fragments.registry") && f.msg.contains("stale=")),
        "{hits:#?}"
    );
    // Note-less entry.
    assert!(hits.iter().any(|f| f.msg.contains("noteless")), "{hits:#?}");
    // Schema header lags SCHEMA_VERSION.
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("fixture/v8") && f.msg.contains("fixture/v9")),
        "{hits:#?}"
    );
    // The registered fragments stay silent.
    assert!(!hits.iter().any(|f| f.msg.contains("okfrag")), "{hits:#?}");
}

#[test]
fn pragma_abuse_is_flagged() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "pragma");
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("unknown rule `no-such-rule`")),
        "{hits:#?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("omits the reason string")),
        "{hits:#?}"
    );
    assert!(
        hits.iter().any(|f| f.msg.contains("suppresses nothing")),
        "{hits:#?}"
    );
}

#[test]
fn snapshot_completeness_fires_in_all_three_directions() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "snapshot-completeness");
    assert!(hits.iter().all(|f| f.file.ends_with("snapviol/src/lib.rs")));
    // State field `c` has no snapshot slot.
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("`c` of `Sess`") && f.msg.contains("no slot")),
        "{hits:#?}"
    );
    // Snapshot field `d` is dropped by the capture and by the restore.
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("`d`") && f.msg.contains("never populated")),
        "{hits:#?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("`d`") && f.msg.contains("never written back")),
        "{hits:#?}"
    );
    assert_eq!(hits.len(), 3, "{hits:#?}");
    // The pragma'd transient field and the capture-less LoneSnapshot
    // stay silent.
    assert!(!hits.iter().any(|f| f.msg.contains("scratch")), "{hits:#?}");
    assert!(
        !hits.iter().any(|f| f.msg.contains("LoneSnapshot")),
        "{hits:#?}"
    );
}

#[test]
fn codec_bijection_fires_per_direction_and_skips_enums() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "codec-field-bijection");
    assert!(hits
        .iter()
        .all(|f| f.file.ends_with("codecviol/src/lib.rs")));
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("`z`") && f.msg.contains("to_json")),
        "{hits:#?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("`y`") && f.msg.contains("from_json")),
        "{hits:#?}"
    );
    assert_eq!(hits.len(), 2, "{hits:#?}");
    // The pragma'd runtime-only field and the enum codec stay silent.
    assert!(!hits.iter().any(|f| f.msg.contains("secret")), "{hits:#?}");
    assert!(!hits.iter().any(|f| f.msg.contains("Mode")), "{hits:#?}");
}

#[test]
fn obs_cfg_consistency_fires_only_on_the_ungated_tally() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "obs-cfg-consistency");
    // Exactly the ungated `tally.hits` in `step`: the cfg! block, the
    // !cfg! early-return guard, the #[cfg]-gated fn, and the pragma'd
    // site all stay silent.
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits[0].file.ends_with("obsviol/src/lib.rs"));
    assert!(hits[0].msg.contains("tally.hits"), "{hits:#?}");
    assert_eq!(hits[0].line, 35, "{hits:#?}");
}

#[test]
fn lossy_cast_fires_on_narrowing_only() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "no-lossy-cast-in-kernel");
    // Exactly the naked `x as u32` in castviol: widening casts are
    // exempt, the masked u16 cast is pragma'd, and non-kernel crates
    // (codecviol's `as u64`) are out of scope.
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits[0].file.ends_with("castviol/src/lib.rs"));
    assert!(hits[0].msg.contains("as u32"), "{hits:#?}");
    assert_eq!(hits[0].line, 8, "{hits:#?}");
}

#[test]
fn registry_liveness_is_workspace_wide_with_reserved_escape() {
    let findings = fixture_findings();
    let hits = of_rule(&findings, "key-fragment-registry");
    // `elsewhere` has its only code site in a non-key module
    // (report.rs) — the workspace-wide live set keeps it alive.
    assert!(
        !hits.iter().any(|f| f.msg.contains("elsewhere")),
        "{hits:#?}"
    );
    // `parked=` has no code site at all, but its `reserved:` note
    // parks it deliberately.
    assert!(!hits.iter().any(|f| f.msg.contains("parked")), "{hits:#?}");
}

#[test]
fn lexer_traps_stay_silent() {
    let findings = fixture_findings();
    // The raw-string HashMap, the nested block comment, and the line
    // comment trap live between the RAW_TRAP const and the macro in
    // kernelviol/src/lib.rs. None of the idents inside them may fire:
    // every no-unordered-iteration / no-wallclock finding must carry a
    // message naming a real code construct, and none may point at the
    // comment-only lines 40-41.
    for f in &findings {
        if f.file.ends_with("kernelviol/src/lib.rs") {
            assert!(
                !(40..=41).contains(&f.line),
                "finding on a comment-only trap line: {f:#?}"
            );
        }
    }
}
