//! Property test for the item parser: generate random Rust item
//! soups — nested generics, where-clauses, cfg-gated fields, macro
//! bodies, trait/extern decoys, comment and string traps — from a
//! structured ground truth, then check `parse_items` never panics and
//! extracts exactly the items the generator wrote.

use proptest::prelude::*;
use snug_lint::items::parse_items;
use snug_lint::lexer::lex;

/// What the generator actually emitted, in source order: the
/// reference walk the parser's output must match.
#[derive(Debug, Default, PartialEq)]
struct Truth {
    /// (name, has_named_fields, item cfg, [(field, field cfg)]).
    #[allow(clippy::type_complexity)]
    structs: Vec<(String, bool, Option<String>, Vec<(String, Option<String>)>)>,
    /// (name, variant names).
    enums: Vec<(String, Vec<String>)>,
    /// Free fns, mods flattened: (name, cfg).
    fns: Vec<(String, Option<String>)>,
    /// (self type, trait name, item cfg, [(method, cfg, bodied)]).
    #[allow(clippy::type_complexity)]
    impls: Vec<(
        String,
        Option<String>,
        Option<String>,
        Vec<(String, Option<String>, bool)>,
    )>,
}

struct Gen {
    rng: TestRng,
    uniq: u32,
}

impl Gen {
    fn pick(&mut self, n: usize) -> usize {
        (self.rng.next_u64() % n as u64) as usize
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.rng.next_u64() % 100 < pct
    }

    fn name(&mut self, prefix: &str) -> String {
        self.uniq += 1;
        format!("{prefix}{}", self.uniq)
    }

    fn generics(&mut self) -> &'static str {
        const G: &[&str] = &[
            "",
            "<T>",
            "<'a, T: Clone>",
            "<T: Into<Vec<u8>>, const N: usize>",
            "<F: Fn(u32) -> u64>",
        ];
        G[self.pick(G.len())]
    }

    fn where_clause(&mut self) -> &'static str {
        const W: &[&str] = &[
            "",
            " where T: Clone",
            " where T: Into<Vec<u8>>, F: Fn(i64) -> i64",
        ];
        W[self.pick(W.len())]
    }

    fn field_ty(&mut self) -> &'static str {
        const T: &[&str] = &[
            "u64",
            "Vec<u8>",
            "BTreeMap<String, Vec<(u32, u8)>>",
            "Option<Box<dyn Fn(u32) -> u64>>",
            "[u8; 4]",
            "(u32, String)",
            "&'static str",
        ];
        T[self.pick(T.len())]
    }

    /// Attribute lines for an item or field, plus the cfg feature the
    /// parser is expected to extract (positive plain `cfg` only).
    fn attrs(&mut self) -> (&'static str, Option<&'static str>) {
        const A: &[(&str, Option<&str>)] = &[
            ("", None),
            ("    #[derive(Debug, Clone)]\n", None),
            ("    #[cfg(feature = \"obs\")]\n", Some("obs")),
            ("    #[cfg(feature = \"trace\")]\n", Some("trace")),
            ("    #[cfg(not(feature = \"obs\"))]\n", None),
            ("    #[cfg_attr(test, derive(Debug))]\n", None),
            ("    #[cfg(all(feature = \"obs\", unix))]\n", Some("obs")),
            (
                "    #[inline]\n    #[cfg(feature = \"obs\")]\n",
                Some("obs"),
            ),
        ];
        A[self.pick(A.len())]
    }

    fn body(&mut self) -> String {
        const S: &[&str] = &[
            "let s = \"struct Fake { fn bogus() }\";",
            "let r = r#\"impl Decoy for Nothing {}\"#;",
            "let c = '{';",
            "let v = (1u64 << 3) as u64;",
            "let f = |x: u32| -> u64 { (x + 1) as u64 };",
            "if 1 < 2 && 4 > 3 { let _ = vec![1, 2, 3]; }",
            "// fn commented_out(x: u32) {}",
            "/* struct Block { y: u8 } */",
        ];
        let mut out = String::new();
        for _ in 0..=self.pick(3) {
            out.push_str("        ");
            out.push_str(S[self.pick(S.len())]);
            out.push('\n');
        }
        out
    }

    fn emit_struct(&mut self, src: &mut String, truth: &mut Truth) {
        let (attrs, cfg) = self.attrs();
        let name = self.name("S");
        src.push_str(attrs);
        match self.pick(3) {
            // Named fields.
            0 => {
                src.push_str(&format!(
                    "pub struct {name}{}{} {{\n",
                    self.generics(),
                    self.where_clause()
                ));
                let mut fields = Vec::new();
                for _ in 0..=self.pick(4) {
                    let (fattrs, fcfg) = self.attrs();
                    let fname = self.name("fld");
                    if self.chance(30) {
                        src.push_str("    /// Doc comment trap: fld9999: u64,\n");
                    }
                    src.push_str(fattrs);
                    src.push_str(&format!("    pub {fname}: {},\n", self.field_ty()));
                    fields.push((fname, fcfg.map(String::from)));
                }
                src.push_str("}\n");
                truth
                    .structs
                    .push((name, true, cfg.map(String::from), fields));
            }
            // Tuple struct.
            1 => {
                src.push_str(&format!(
                    "struct {name}{}(pub u32, Vec<(u8, u8)>){};\n",
                    self.generics(),
                    self.where_clause()
                ));
                truth
                    .structs
                    .push((name, false, cfg.map(String::from), Vec::new()));
            }
            // Unit struct.
            _ => {
                src.push_str(&format!("struct {name};\n"));
                truth
                    .structs
                    .push((name, false, cfg.map(String::from), Vec::new()));
            }
        }
    }

    fn emit_enum(&mut self, src: &mut String, truth: &mut Truth) {
        let (attrs, _) = self.attrs();
        let name = self.name("E");
        src.push_str(attrs);
        src.push_str(&format!("pub enum {name}{} {{\n", self.generics()));
        let mut variants = Vec::new();
        for _ in 0..=self.pick(3) {
            let v = self.name("V");
            match self.pick(4) {
                0 => src.push_str(&format!("    {v},\n")),
                1 => src.push_str(&format!("    {v}(u32, Vec<u8>),\n")),
                2 => src.push_str(&format!("    {v} {{ payload: BTreeMap<u32, u8> }},\n")),
                _ => src.push_str(&format!("    {v} = (1 << 3) + 4,\n")),
            }
            variants.push(v);
        }
        src.push_str("}\n");
        truth.enums.push((name, variants));
    }

    fn emit_fn(&mut self, src: &mut String, truth: &mut Truth) {
        let (attrs, cfg) = self.attrs();
        let name = self.name("f");
        const PARAMS: &[&str] = &["", "x: u32, y: &str", "v: Vec<(u32, u8)>"];
        const RET: &[&str] = &["", " -> u64", " -> Option<Vec<u8>>"];
        src.push_str(attrs);
        src.push_str(&format!(
            "pub fn {name}{}({}){}{} {{\n{}}}\n",
            self.generics(),
            PARAMS[self.pick(PARAMS.len())],
            RET[self.pick(RET.len())],
            self.where_clause(),
            self.body()
        ));
        truth.fns.push((name, cfg.map(String::from)));
    }

    fn emit_impl(&mut self, src: &mut String, truth: &mut Truth) {
        let (attrs, cfg) = self.attrs();
        let self_ty = self.name("Ty");
        // Trait heads exercise path segments and generic arguments;
        // the parser keeps only the last segment.
        let (trait_src, trait_name) = match self.pick(4) {
            0 => (String::new(), None),
            1 => {
                let t = self.name("Tr");
                (format!("{t} for "), Some(t))
            }
            2 => {
                let t = self.name("Tr");
                (format!("fmt::{t} for "), Some(t))
            }
            _ => {
                let t = self.name("Tr");
                (format!("{t}<u32, Vec<u8>> for "), Some(t))
            }
        };
        src.push_str(attrs);
        src.push_str(&format!(
            "impl{} {trait_src}{self_ty}{}{} {{\n",
            self.generics(),
            self.generics(),
            self.where_clause()
        ));
        let mut methods = Vec::new();
        for _ in 0..=self.pick(2) {
            let (mattrs, mcfg) = self.attrs();
            let m = self.name("m");
            src.push_str(mattrs);
            src.push_str(&format!(
                "    fn {m}(&self, n: u32) -> u64 {{\n{}    }}\n",
                self.body()
            ));
            methods.push((m, mcfg.map(String::from), true));
        }
        src.push_str("}\n");
        truth
            .impls
            .push((self_ty, trait_name, cfg.map(String::from), methods));
    }

    /// Items the parser must skip without swallowing what follows.
    fn emit_noise(&mut self, src: &mut String) {
        let n = self.name("noise");
        match self.pick(7) {
            0 => src.push_str("use std::collections::BTreeMap;\n"),
            1 => src.push_str(&format!("pub type Alias{n} = Vec<(u32, u8)>;\n")),
            2 => src.push_str(&format!("pub const K{n}: u32 = (1 << 4) + 3;\n")),
            3 => src.push_str(&format!(
                "static ST{n}: &str = \"fn not_an_item() {{}}\";\n"
            )),
            4 => src.push_str(&format!(
                "pub trait Decoy{n} {{ fn required(&self) -> u32; fn with_default(&self) {{}} }}\n"
            )),
            5 => src.push_str(&format!("extern \"C\" {{ fn ffi{n}(x: u32) -> u32; }}\n")),
            _ => src.push_str(&format!(
                "macro_rules! mac{n} {{ ($x:expr) => {{ struct NotReal {{ field: $x }} }}; }}\n"
            )),
        }
    }

    fn emit_item(&mut self, src: &mut String, truth: &mut Truth, depth: u32) {
        if self.chance(25) {
            src.push_str("// comment trap: struct Commented { x: u8 }\n");
        }
        match self.pick(if depth == 0 { 6 } else { 5 }) {
            0 => self.emit_struct(src, truth),
            1 => self.emit_enum(src, truth),
            2 => self.emit_fn(src, truth),
            3 => self.emit_impl(src, truth),
            4 => self.emit_noise(src),
            // Inline mod: items parse flattened into the same file.
            _ => {
                src.push_str(&format!("pub mod {} {{\n", self.name("md")));
                for _ in 0..=self.pick(2) {
                    self.emit_item(src, truth, depth + 1);
                }
                src.push_str("}\n");
            }
        }
    }
}

fn generate(seed: u64) -> (String, Truth) {
    let mut g = Gen {
        rng: TestRng::new(seed),
        uniq: 0,
    };
    let mut src = String::from("//! Generated item soup.\n");
    let mut truth = Truth::default();
    for _ in 0..3 + g.pick(8) {
        g.emit_item(&mut src, &mut truth, 0);
    }
    (src, truth)
}

proptest! {
    #[test]
    fn item_parser_matches_the_reference_walk(seed in 0u64..u64::MAX) {
        let (src, truth) = generate(seed);
        let parsed = parse_items(&lex(&src));
        let got = Truth {
            structs: parsed
                .structs
                .iter()
                .map(|s| {
                    (
                        s.name.clone(),
                        s.has_named_fields,
                        s.cfg_feature.clone(),
                        s.fields
                            .iter()
                            .map(|f| (f.name.clone(), f.cfg_feature.clone()))
                            .collect(),
                    )
                })
                .collect(),
            enums: parsed
                .enums
                .iter()
                .map(|e| (e.name.clone(), e.variants.clone()))
                .collect(),
            fns: parsed
                .fns
                .iter()
                .map(|f| (f.name.clone(), f.cfg_feature.clone()))
                .collect(),
            impls: parsed
                .impls
                .iter()
                .map(|i| {
                    (
                        i.self_ty.clone(),
                        i.trait_name.clone(),
                        i.cfg_feature.clone(),
                        i.methods
                            .iter()
                            .map(|m| (m.name.clone(), m.cfg_feature.clone(), m.body.is_some()))
                            .collect(),
                    )
                })
                .collect(),
        };
        prop_assert!(
            got == truth,
            "parser output diverged from the reference walk\nsource:\n{src}\n got: {got:#?}\nwant: {truth:#?}"
        );
    }

    /// Pure robustness: truncating the soup at any point must not
    /// panic the parser (unterminated groups, half items).
    #[test]
    fn item_parser_never_panics_on_truncation(seed in 0u64..u64::MAX, cut in 0usize..4096) {
        let (src, _) = generate(seed);
        let cut = cut.min(src.len());
        // Truncate on a char boundary.
        let mut end = cut;
        while !src.is_char_boundary(end) {
            end -= 1;
        }
        let _ = parse_items(&lex(&src[..end]));
        prop_assert!(true);
    }
}
