//! Acceptance tests for the semantic rules against the *real*
//! workspace sources: delete a load-bearing line from an in-memory
//! copy of `session.rs` / `codec.rs` and prove the matching rule
//! fires. This is the contract the rules exist for — a dropped
//! capture line or codec line can never land silently again.

use std::fs;
use std::path::{Path, PathBuf};

use snug_lint::manifest::Manifest;
use snug_lint::rules::{run, Finding};
use snug_lint::workspace::{CrateInfo, FileKind, SourceFile, Workspace};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the repo root")
        .to_path_buf()
}

fn read(rel: &str) -> String {
    fs::read_to_string(repo_root().join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

/// Drop every line containing `needle`; panics if nothing matched so
/// a future rename of the anchor line fails loudly here.
fn without_lines(text: &str, needle: &str) -> String {
    let before = text.lines().count();
    let kept: Vec<&str> = text.lines().filter(|l| !l.contains(needle)).collect();
    assert!(
        kept.len() < before,
        "mutation anchor `{needle}` no longer appears — update the test"
    );
    let mut out = kept.join("\n");
    out.push('\n');
    out
}

/// An in-memory workspace over the real snapshot + codec sources.
/// `mutate` sees each file's repo-relative path and text and returns
/// the (possibly edited) text. Crate names are chosen so each file
/// keeps its real role: `sim-cmp` stays a kernel crate, while the
/// codec host must NOT be key-bearing (the registry rule would see
/// only a sliver of the real fragment sites).
fn workspace(mutate: impl Fn(&str, String) -> String) -> Workspace {
    let spec = [
        ("sim-cmp", "crates/sim-cmp", "crates/sim-cmp/src/session.rs"),
        (
            "snug-metrics",
            "crates/metrics",
            "crates/metrics/src/counters.rs",
        ),
        (
            "codec-host",
            "crates/harness",
            "crates/harness/src/codec.rs",
        ),
    ];
    Workspace {
        root: repo_root(),
        crates: spec
            .iter()
            .map(|(name, dir, file)| CrateInfo {
                name: (*name).into(),
                rel_dir: (*dir).into(),
                dir: repo_root().join(dir),
                manifest: Manifest::parse(&read(&format!("{dir}/Cargo.toml"))),
                files: vec![SourceFile {
                    rel: (*file).into(),
                    kind: FileKind::Lib,
                    text: mutate(file, read(file)),
                }],
            })
            .collect(),
        root_manifest: None,
    }
}

fn findings_after(target: &str, needle: &str) -> Vec<Finding> {
    run(&workspace(|rel, text| {
        if rel == target {
            without_lines(&text, needle)
        } else {
            text
        }
    }))
}

#[test]
fn unmutated_real_sources_are_clean() {
    let findings = run(&workspace(|_, text| text));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn deleting_a_snapshot_capture_line_fires_snapshot_completeness() {
    let findings = findings_after("crates/sim-cmp/src/session.rs", "tally: self.tally,");
    assert!(
        findings.iter().any(|f| f.rule == "snapshot-completeness"
            && f.msg.contains("`tally`")
            && f.msg.contains("never populated")),
        "{findings:#?}"
    );
}

#[test]
fn deleting_a_counters_to_json_line_fires_codec_bijection() {
    let findings = findings_after(
        "crates/harness/src/codec.rs",
        "(\"retired_ops\", n(self.retired_ops)),",
    );
    assert!(
        findings.iter().any(|f| f.rule == "codec-field-bijection"
            && f.msg.contains("`retired_ops`")
            && f.msg.contains("to_json")),
        "{findings:#?}"
    );
}

#[test]
fn deleting_a_counters_from_json_line_fires_codec_bijection() {
    let findings = findings_after(
        "crates/harness/src/codec.rs",
        "retired_ops: field(\"retired_ops\")?,",
    );
    assert!(
        findings.iter().any(|f| f.rule == "codec-field-bijection"
            && f.msg.contains("`retired_ops`")
            && f.msg.contains("from_json")),
        "{findings:#?}"
    );
}
