//! Seeded violations for `obs-cfg-consistency`: one ungated counter
//! tally, plus every gate shape that must stay silent.

#![forbid(unsafe_code)]

/// Observability tallies.
#[derive(Default)]
pub struct Tally {
    /// Hot-path hits.
    pub hits: u64,
    /// Hot-path misses.
    pub misses: u64,
    /// Event notes.
    pub notes: u64,
    /// Assembly-side count.
    pub gated: u64,
    /// Bucketed depths.
    pub depths: [u64; 4],
}

/// Kernel-ish state with a tally block.
#[derive(Default)]
pub struct Kern {
    /// The tallies.
    pub tally: Tally,
    /// Real state.
    pub work: u64,
}

impl Kern {
    /// VIOLATION obs-cfg-consistency: tally on the hot path with no
    /// gate in sight.
    pub fn step(&mut self) {
        self.work += 1;
        self.tally.hits += 1;
    }

    /// `if cfg!(feature = "obs")` block: silent.
    pub fn step_gated(&mut self) {
        self.work += 1;
        if cfg!(feature = "obs") {
            self.tally.misses += 1;
            self.tally.depths[(self.work % 4) as usize] += 1;
        }
    }

    /// `!cfg!` early-return guard: silent.
    pub fn note(&mut self) {
        if !cfg!(feature = "obs") {
            return;
        }
        self.tally.notes += 1;
    }

    /// Whole-fn `#[cfg(feature = "obs")]` gate: silent.
    #[cfg(feature = "obs")]
    pub fn assemble(&mut self) {
        self.tally.gated += 1;
    }

    /// Suppressed: a tally this fixture keeps hot deliberately.
    pub fn hot(&mut self) {
        // snug-lint: allow(obs-cfg-consistency, "fixture: counted even with obs compiled out")
        self.tally.hits += 1;
    }
}
