//! Seeded violations for `no-lossy-cast-in-kernel`: one naked
//! truncating cast, one justified, and the exempt widening shapes.

#![forbid(unsafe_code)]

/// VIOLATION no-lossy-cast-in-kernel: truncates above `u32::MAX`.
pub fn narrow(x: u64) -> u32 {
    x as u32
}

/// Widening and address casts are exempt: silent.
pub fn widen(x: u32) -> u64 {
    (x as u64) + (x as usize as u64)
}

/// Suppressed: the mask proves the range.
pub fn masked(x: u64) -> u16 {
    // snug-lint: allow(no-lossy-cast-in-kernel, "fixture: masked to 16 bits on the previous token")
    (x & 0xFFFF) as u16
}
