//! Seeded violations for `codec-field-bijection`: a struct whose
//! to_json drops one field and whose from_json drops another.

#![forbid(unsafe_code)]

/// A toy json value so the codec shapes look like the real ones.
pub struct Json(pub Vec<(String, u64)>);

/// The codec-bearing record.
#[derive(Default)]
pub struct Rec {
    /// Appears in both bodies: silent.
    pub x: u64,
    /// VIOLATION codec-field-bijection: missing from `from_json`.
    pub y: u64,
    /// VIOLATION codec-field-bijection: missing from `to_json`.
    pub z: u64,
}

impl Rec {
    /// Encoder: drops `z`.
    pub fn to_json(&self) -> Json {
        Json(vec![("x".into(), self.x), ("y".into(), self.y)])
    }

    /// Decoder: drops `y`.
    pub fn from_json(j: &Json) -> Rec {
        let get = |k: &str| {
            j.0.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        Rec {
            x: get("x"),
            z: get("z"),
            ..Rec::default()
        }
    }
}

/// Suppressed: a field deliberately kept out of the wire format.
pub struct Opt {
    /// Round-trips: silent.
    pub shown: u64,
    /// Runtime-only: absent from `to_json` under a pragma, zeroed
    /// explicitly in `from_json` (which counts as a mention).
    pub secret: u64,
}

impl Opt {
    /// Encodes `shown` only.
    pub fn to_json(&self) -> Json { // snug-lint: allow(codec-field-bijection, "fixture: secret is runtime-only, never persisted")
        Json(vec![("shown".into(), self.shown)])
    }

    /// Decodes `shown`, re-seeds `secret` to its boot value.
    pub fn from_json(j: &Json) -> Opt {
        Opt {
            shown: j.0.first().map(|(_, v)| *v).unwrap_or(0),
            secret: 0,
        }
    }
}

/// Enum codecs are out of scope for the field rule: must stay silent.
pub enum Mode {
    /// Plain.
    A,
    /// Fancy.
    B,
}

impl Mode {
    /// Encodes the discriminant.
    pub fn to_json(&self) -> Json {
        Json(vec![("mode".into(), matches!(self, Mode::B) as u64)])
    }

    /// Decodes the discriminant.
    pub fn from_json(j: &Json) -> Mode {
        if j.0.first().map(|(_, v)| *v).unwrap_or(0) == 1 {
            Mode::B
        } else {
            Mode::A
        }
    }
}
