//! Seeded violations for `snapshot-completeness`: a state struct
//! whose snapshot pairing drops a field in each direction.

#![forbid(unsafe_code)]

/// Session-ish state struct, paired with [`SessSnapshot`] below via
/// its `snapshot` method.
pub struct Sess {
    /// Captured and restored: silent.
    pub a: u64,
    /// Captured and restored: silent.
    pub b: u64,
    /// VIOLATION snapshot-completeness: no slot in `SessSnapshot`.
    pub c: u64,
    /// Suppressed: justified transient state.
    pub scratch: u64, // snug-lint: allow(snapshot-completeness, "fixture: derived per-run scratch, rebuilt on restore")
}

/// The snapshot of [`Sess`].
#[derive(Default)]
pub struct SessSnapshot {
    /// Round-trips: silent.
    pub a: u64,
    /// Round-trips: silent.
    pub b: u64,
    /// VIOLATION twice over: never populated in `snapshot`, never
    /// written back in `to_sess`.
    pub d: u64,
}

impl Sess {
    /// The capture method the rule keys on.
    pub fn snapshot(&self) -> SessSnapshot {
        SessSnapshot {
            a: self.a,
            b: self.b,
            ..SessSnapshot::default()
        }
    }
}

impl SessSnapshot {
    /// The restore method (body builds a `Sess`).
    pub fn to_sess(&self) -> Sess {
        Sess {
            a: self.a,
            b: self.b,
            c: 0,
            scratch: 0,
        }
    }
}

/// A snapshot struct with no capture method anywhere: out of scope,
/// must stay silent.
pub struct LoneSnapshot {
    /// Nothing pairs with this.
    pub p: u64,
}
