//! A non-key module: its string literals still count as live sites
//! for the registry's dead-entry check, which scans the whole
//! workspace (not just spec/codec/sweep).

/// Renders a marker that keeps the `elsewhere` registry entry live
/// even though no key module mentions it.
pub fn render_tag(run: u64) -> String {
    format!("run{run}|elsewhere")
}
