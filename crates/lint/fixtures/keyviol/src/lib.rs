//! Key-bearing fixture crate: clean except for the registry drift
//! seeded in `spec.rs` / `key_fragments.registry`.

#![forbid(unsafe_code)]

pub mod report;
pub mod spec;
