//! Fixture key construction: one registered fragment, one
//! unregistered fragment, against a registry with a stale entry, a
//! note-less entry, and a schema-version header that lags the source.

/// The fixture schema version — the registry header says v8.
pub const SCHEMA_VERSION: &str = "fixture/v9";

/// Builds a key using a fragment the registry knows about.
pub fn good_key(x: u32) -> String {
    format!("{SCHEMA_VERSION}|okfrag={x}")
}

/// VIOLATION key-fragment-registry: `|badfrag=` is not registered.
pub fn drifting_key(x: u32) -> String {
    format!("{SCHEMA_VERSION}|badfrag={x}")
}

/// Bare markers (no `=`) register too.
pub fn marker_key() -> String {
    format!("{SCHEMA_VERSION}|okmarker|tail")
}

#[cfg(test)]
mod tests {
    // Exempt: fragments in test strings are not key construction.
    #[test]
    fn test_strings_are_exempt() {
        assert!("x|testonly=1".contains("|testonly="));
    }
}
