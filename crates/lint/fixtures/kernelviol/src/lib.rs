//! Seeded-violation fixture for snug-lint: one violation per rule,
//! plus lexer traps that must NOT fire and pragmas that must.
//! This crate is never compiled; it only feeds the lint's tests.
//! (Deliberately missing `#![forbid(unsafe_code)]` — forbid-unsafe
//! must fire on this file.)

use std::collections::HashMap;
use std::time::Instant;

/// VIOLATION no-unordered-iteration: HashMap in library code.
pub fn unordered() -> HashMap<u32, u32> {
    HashMap::new()
}

/// VIOLATION no-wallclock-in-kernel: Instant in a sim-* crate.
pub fn wallclock() -> Instant {
    Instant::now()
}

/// VIOLATION panic-audit: unjustified unwrap in library code.
pub fn panics(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Suppressed: a justified expect must NOT surface.
pub fn justified(x: Option<u32>) -> u32 {
    // snug-lint: allow(panic-audit, "fixture: caller guarantees Some")
    x.expect("fixture invariant")
}

/// VIOLATION feature-cfg-audit: names a feature the manifest does not
/// declare.
pub fn cfg_ghost() -> bool {
    cfg!(feature = "nonexistent")
}

/// Lexer traps: none of these may fire.
/// A raw string containing HashMap is data, not code:
pub const RAW_TRAP: &str = r#"use std::collections::HashMap;"#;
// Nested block comment: /* outer /* HashMap Instant unwrap() */ done */
// Line comment trap: HashMap Instant SystemTime unwrap() panic!

/// Pragmas inside macro_rules! still parse and suppress.
macro_rules! fixture_macro {
    () => {
        // snug-lint: allow(panic-audit, "fixture: macro-expanded invariant")
        Option::<u32>::None.unwrap()
    };
}

/// Uses the macro so it is not dead in spirit.
pub fn via_macro() -> u32 {
    fixture_macro!()
}

// VIOLATION pragma: unknown rule name.
// snug-lint: allow(no-such-rule, "this rule does not exist")
pub fn unknown_rule_target() {}

// VIOLATION pragma: omits the reason string.
// snug-lint: allow(panic-audit)
pub fn missing_reason_target() {}

// VIOLATION pragma: suppresses nothing (stale allow).
// snug-lint: allow(no-wallclock-in-kernel, "stale: nothing on the next line uses time")
pub fn stale_pragma_target() {}

#[cfg(test)]
mod tests {
    // Exempt: test code may use HashSet and unwrap freely.
    use std::collections::HashSet;

    #[test]
    fn exempt() {
        let mut s = HashSet::new();
        s.insert(1);
        assert_eq!(s.iter().next().copied().unwrap(), 1);
    }
}
