//! The rule engine: per-file token rules, per-crate manifest rules,
//! the key-fragment registry check, and the `snug-lint: allow`
//! pragma escape hatch.
//!
//! Every rule exists because a runtime property of this repo was once
//! (or could silently become) violated by an innocent-looking edit;
//! the rationale strings below are part of the tool's contract and
//! surface in `--list-rules` and ARCHITECTURE.md.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, TokKind};
use crate::symbols::{Graph, SymbolTable};
use crate::workspace::{CrateInfo, FileKind, SourceFile, Workspace};

/// One lint finding, pointing at a file/line with a rule id.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of [`RULES`], or `pragma` for escape-hatch abuse).
    pub rule: String,
    /// Human-readable description of the violation.
    pub msg: String,
}

/// Static description of a rule, for `--list-rules` and docs.
pub struct RuleInfo {
    /// Rule id as used in pragmas.
    pub name: &'static str,
    /// One-line rationale.
    pub summary: &'static str,
}

/// The rule catalogue. `pragma` is engine-level and deliberately not
/// listed: it polices the escape hatch itself and cannot be allowed
/// away.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "no-unordered-iteration",
        summary: "HashMap/HashSet in library code: iteration order feeds stores, reports, \
                  and content keys — use BTreeMap/BTreeSet or pragma-justify keyed-only access",
    },
    RuleInfo {
        name: "no-wallclock-in-kernel",
        summary: "Instant/SystemTime banned in sim-* crates: simulated time is the only clock \
                  the kernel may read; wall time belongs to harness spans",
    },
    RuleInfo {
        name: "key-fragment-registry",
        summary: "every |frag content-key fragment in key-construction modules must appear in \
                  the committed key_fragments.registry with a schema-version note",
    },
    RuleInfo {
        name: "feature-cfg-audit",
        summary: "cfg(feature = ...) must name a declared feature; obs-bearing workspace deps \
                  keep default-features = false in [workspace.dependencies]",
    },
    RuleInfo {
        name: "panic-audit",
        summary: "unwrap/expect/panic!/unreachable!/todo! in library code require a \
                  justification pragma; bins, tests, benches, examples exempt",
    },
    RuleInfo {
        name: "forbid-unsafe",
        summary: "every first-party library crate keeps #![forbid(unsafe_code)] in lib.rs",
    },
    RuleInfo {
        name: "snapshot-completeness",
        summary: "every field of a session-state struct must be captured into its *Snapshot \
                  struct and written back in restore — state that escapes the snapshot breaks \
                  determinism",
    },
    RuleInfo {
        name: "codec-field-bijection",
        summary: "every field of a struct with a to_json/from_json pair must appear in both \
                  bodies — one-sided codecs drop data on the round trip",
    },
    RuleInfo {
        name: "obs-cfg-consistency",
        summary: "counter-tally sites in sim-* library code must be reachable only under the \
                  obs feature (cfg! block, !cfg! early return, or #[cfg]-gated fn)",
    },
    RuleInfo {
        name: "no-lossy-cast-in-kernel",
        summary: "truncating `as` casts (u8/u16/u32/i8/i16/i32) in sim-* library code need a \
                  pragma proving the value range",
    },
];

fn rule_exists(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// A parsed `// snug-lint: allow(RULE, "reason")` pragma.
#[derive(Debug)]
struct Pragma {
    file: String,
    rule: String,
    decl_line: u32,
    target_line: u32,
    used: bool,
}

/// Run every rule over the workspace. Findings come back sorted by
/// (file, line, rule) and already pragma-filtered.
///
/// The engine is two-phase: phase one lexes and item-parses every
/// file into the symbol [`Graph`], collects pragmas, and runs the
/// token rules; phase two runs the semantic rules over the graph.
/// Pragma suppression is applied globally at the end so a semantic
/// finding that crosses files (say, a codec impl in `snug-harness`
/// anchored at a field declared in `snug-metrics`) can still be
/// suppressed at the line it points to.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let graph = Graph::build(ws);
    let symtab = SymbolTable::build(&graph);

    // Non-suppressible findings (manifest/registry/pragma-engine).
    let mut findings = Vec::new();
    // Pragma-suppressible findings, filtered below.
    let mut raw: Vec<Finding> = Vec::new();
    let mut pragmas: Vec<Pragma> = Vec::new();
    // (fragment, file, line) occurrences inside key modules.
    let mut fragments: Vec<(String, String, u32)> = Vec::new();
    // Fragments with any non-test code site, workspace-wide: the
    // live-site set for dead-entry detection.
    let mut live: BTreeSet<String> = BTreeSet::new();
    let mut schema_version: Option<String> = None;

    for krate in &ws.crates {
        forbid_unsafe(krate, &mut findings);
        feature_declarations(krate, &mut findings);
    }

    for ctx in &graph.files {
        pragmas.extend(collect_pragmas(ctx.file, &ctx.toks, &mut findings));
        unordered_iteration(ctx.krate, ctx.file, &ctx.toks, &ctx.mask, &mut raw);
        wallclock_in_kernel(ctx.krate, ctx.file, &ctx.toks, &mut raw);
        panic_audit(ctx.file, &ctx.toks, &ctx.mask, &mut raw);
        cfg_feature_names(ctx.krate, ctx.file, &ctx.toks, &mut raw);
        if ctx.krate.is_key_bearing() && is_key_module(ctx.file) {
            collect_fragments(ctx.file, &ctx.toks, &ctx.mask, &mut fragments);
            if ctx.file.rel.ends_with("spec.rs") && schema_version.is_none() {
                schema_version = extract_schema_version(&ctx.toks);
            }
        }
        if matches!(ctx.file.kind, FileKind::Lib | FileKind::Bin) {
            let mut sites = Vec::new();
            collect_fragments(ctx.file, &ctx.toks, &ctx.mask, &mut sites);
            live.extend(sites.into_iter().map(|(frag, _, _)| frag));
        }
    }

    workspace_default_features(ws, &mut findings);
    for krate in &ws.crates {
        if krate.is_key_bearing() {
            key_fragment_registry(
                krate,
                &fragments,
                &live,
                schema_version.as_deref(),
                &mut findings,
            );
        }
    }

    crate::semantic::snapshot_completeness(&graph, &symtab, &mut raw);
    crate::semantic::codec_field_bijection(&graph, &symtab, &mut raw);
    crate::semantic::obs_cfg_consistency(&graph, &mut raw);
    crate::semantic::lossy_cast_in_kernel(&graph, &mut raw);

    // Suppression: a finding is dropped when a pragma in the same
    // file, for the same rule, targets its line.
    raw.retain(|f| {
        let suppressed = pragmas
            .iter_mut()
            .find(|p| p.rule == f.rule && p.file == f.file && p.target_line == f.line);
        match suppressed {
            Some(p) => {
                p.used = true;
                false
            }
            None => true,
        }
    });
    findings.append(&mut raw);

    for p in &pragmas {
        if !p.used {
            findings.push(Finding {
                file: p.file.clone(),
                line: p.decl_line,
                rule: "pragma".into(),
                msg: format!(
                    "allow({}) suppresses nothing on line {} — remove the stale pragma",
                    p.rule, p.target_line
                ),
            });
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Parse pragmas out of line comments. Malformed pragmas (wrong
/// shape, unknown rule, missing/empty reason) are findings under the
/// non-suppressible `pragma` rule.
fn collect_pragmas(file: &SourceFile, toks: &[Tok], findings: &mut Vec<Finding>) -> Vec<Pragma> {
    // Lines that carry at least one non-comment token, for resolving
    // what a standalone pragma line targets.
    let code_lines: BTreeSet<u32> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|t| t.line)
        .collect();
    let mut pragmas = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("snug-lint:") else {
            continue;
        };
        let mut bad = |msg: String| {
            findings.push(Finding {
                file: file.rel.clone(),
                line: t.line,
                rule: "pragma".into(),
                msg,
            });
        };
        let rest = rest.trim();
        let inner = rest
            .strip_prefix("allow(")
            .and_then(|s| s.strip_suffix(')'));
        let Some(inner) = inner else {
            bad(format!(
                "malformed pragma `{rest}` — expected `allow(RULE, \"reason\")`"
            ));
            continue;
        };
        let Some((rule, reason)) = inner.split_once(',') else {
            bad(format!(
                "pragma `allow({inner})` omits the reason string — every allow must say why"
            ));
            continue;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        if !rule_exists(rule) {
            bad(format!(
                "pragma names unknown rule `{rule}` — known rules: {}",
                RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
            ));
            continue;
        }
        let quoted = reason.len() >= 2 && reason.starts_with('"') && reason.ends_with('"');
        if !quoted || reason.len() == 2 {
            bad(format!(
                "pragma for `{rule}` has an empty or unquoted reason — write a real justification"
            ));
            continue;
        }
        // Trailing pragma annotates its own line; a standalone comment
        // line annotates the next line that carries code.
        let target_line = if code_lines.contains(&t.line) {
            t.line
        } else {
            code_lines
                .range(t.line + 1..)
                .next()
                .copied()
                .unwrap_or(t.line + 1)
        };
        pragmas.push(Pragma {
            file: file.rel.clone(),
            rule: rule.to_string(),
            decl_line: t.line,
            target_line,
            used: false,
        });
    }
    pragmas
}

/// `no-unordered-iteration`: HashMap/HashSet identifiers in library
/// (non-test) code. `use` items are skipped — the usage site, not the
/// import, is what carries iteration-order risk.
fn unordered_iteration(
    _krate: &CrateInfo,
    file: &SourceFile,
    toks: &[Tok],
    mask: &[bool],
    out: &mut Vec<Finding>,
) {
    if file.kind != FileKind::Lib {
        return;
    }
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        if t.is_ident("use") {
            in_use = true;
        } else if t.is_punct(';') {
            in_use = false;
        }
        if mask[i] || in_use {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(Finding {
                file: file.rel.clone(),
                line: t.line,
                rule: "no-unordered-iteration".into(),
                msg: format!(
                    "`{}` in library code: iteration order is nondeterministic and this \
                     repo's stores/reports/keys must be byte-stable — use BTreeMap/BTreeSet, \
                     sort explicitly, or pragma-justify keyed-only access",
                    t.text
                ),
            });
        }
    }
}

/// `no-wallclock-in-kernel`: Instant/SystemTime anywhere in a
/// `sim-*` crate, tests included — the kernel's only clock is
/// simulated cycles.
fn wallclock_in_kernel(krate: &CrateInfo, file: &SourceFile, toks: &[Tok], out: &mut Vec<Finding>) {
    if !krate.is_kernel() {
        return;
    }
    for t in toks {
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            out.push(Finding {
                file: file.rel.clone(),
                line: t.line,
                rule: "no-wallclock-in-kernel".into(),
                msg: format!(
                    "`{}` in kernel crate `{}`: wall-clock reads make simulation results \
                     timing-dependent — kernels count simulated cycles only; spans/timing \
                     belong to the harness",
                    t.text, krate.name
                ),
            });
        }
    }
}

/// `panic-audit`: panicking constructs in library (non-bin, non-test)
/// code need a justification pragma. `assert!`-family macros are
/// deliberately exempt: they state invariants, and clippy already
/// polices their use.
fn panic_audit(file: &SourceFile, toks: &[Tok], mask: &[bool], out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    for (ci, &i) in code.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        let next = code.get(ci + 1).map(|&j| &toks[j]);
        let method_call = (t.is_ident("unwrap") || t.is_ident("expect"))
            && next.map(|n| n.is_punct('(')).unwrap_or(false);
        let macro_call = (t.is_ident("panic")
            || t.is_ident("unreachable")
            || t.is_ident("todo")
            || t.is_ident("unimplemented"))
            && next.map(|n| n.is_punct('!')).unwrap_or(false);
        if method_call || macro_call {
            out.push(Finding {
                file: file.rel.clone(),
                line: t.line,
                rule: "panic-audit".into(),
                msg: format!(
                    "`{}{}` in library code: panics tear down sweep workers and corrupt \
                     partial stores — return an error, or pragma-justify why this cannot fire",
                    t.text,
                    if macro_call { "!" } else { "()" }
                ),
            });
        }
    }
}

/// `feature-cfg-audit` (source half): every `feature = "X"` token
/// triple must name a feature declared in the crate's manifest.
fn cfg_feature_names(krate: &CrateInfo, file: &SourceFile, toks: &[Tok], out: &mut Vec<Finding>) {
    let declared: BTreeSet<&str> = krate.manifest.keys("features").into_iter().collect();
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for w in code.windows(3) {
        if w[0].is_ident("feature") && w[1].is_punct('=') && w[2].kind == TokKind::Str {
            let name = w[2].str_content();
            if !declared.contains(name) {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: w[0].line,
                    rule: "feature-cfg-audit".into(),
                    msg: format!(
                        "cfg names feature `{name}` which `{}` does not declare in [features] \
                         — the cfg'd code would silently never (or always) compile",
                        krate.name
                    ),
                });
            }
        }
    }
}

/// `feature-cfg-audit` (manifest half, per crate): catch a `default`
/// feature list referencing undeclared features.
fn feature_declarations(krate: &CrateInfo, out: &mut Vec<Finding>) {
    let declared: BTreeSet<&str> = krate.manifest.keys("features").into_iter().collect();
    for dep in krate.manifest.string_array("features", "default") {
        if !declared.contains(dep.as_str()) && !dep.contains('/') {
            out.push(Finding {
                file: manifest_rel(krate),
                line: 1,
                rule: "feature-cfg-audit".into(),
                msg: format!(
                    "`{}` lists default feature `{dep}` which is not declared in [features]",
                    krate.name
                ),
            });
        }
    }
}

/// `feature-cfg-audit` (workspace half): any first-party crate with a
/// non-empty `default` feature set must be pinned with
/// `default-features = false` in `[workspace.dependencies]` — cargo
/// silently ignores the member-table override otherwise (the PR 6
/// obs-weld bug class).
fn workspace_default_features(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(root) = &ws.root_manifest else {
        return;
    };
    for krate in &ws.crates {
        if krate
            .manifest
            .string_array("features", "default")
            .is_empty()
        {
            continue;
        }
        let Some(value) = root.get("workspace.dependencies", &krate.name) else {
            continue; // leaf crate, nobody depends on it via the workspace table
        };
        let pinned = value.contains("default-features") && value.contains("false");
        if !pinned {
            out.push(Finding {
                file: "Cargo.toml".into(),
                line: root
                    .line_of_key("workspace.dependencies", &krate.name)
                    .unwrap_or(1),
                rule: "feature-cfg-audit".into(),
                msg: format!(
                    "[workspace.dependencies] entry for `{}` leaves default features on; \
                     consumers' `default-features = false` is silently ignored, welding \
                     `{}`'s defaults (obs) into every build",
                    krate.name, krate.name
                ),
            });
        }
    }
}

/// `forbid-unsafe`: every first-party crate with a `src/lib.rs` must
/// carry the inner attribute `#![forbid(unsafe_code)]`.
fn forbid_unsafe(krate: &CrateInfo, out: &mut Vec<Finding>) {
    let Some(lib) = krate
        .files
        .iter()
        .find(|f| f.kind == FileKind::Lib && f.rel.ends_with("src/lib.rs"))
    else {
        return;
    };
    let toks = lex(&lib.text);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let found = code.windows(6).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
    });
    if !found {
        out.push(Finding {
            file: lib.rel.clone(),
            line: 1,
            rule: "forbid-unsafe".into(),
            msg: format!(
                "`{}` is missing `#![forbid(unsafe_code)]` — every library crate in this \
                 workspace forbids unsafe so determinism arguments stay local",
                krate.name
            ),
        });
    }
}

/// True for the modules where content keys are constructed; the
/// fragment registry rule scans only these. A new key-building module
/// must be added here (and documented in ARCHITECTURE.md) to come
/// under the rule.
fn is_key_module(file: &SourceFile) -> bool {
    file.kind == FileKind::Lib
        && (file.rel.ends_with("src/spec.rs")
            || file.rel.ends_with("src/codec.rs")
            || file.rel.ends_with("src/sweep.rs"))
}

/// Extract `|frag=` / `|frag` fragments from string literals in
/// non-test code: a `|` immediately followed by an identifier-like
/// name (letters first, then letters/digits/`_`/`-`), capturing a
/// trailing `=` when present.
fn collect_fragments(
    file: &SourceFile,
    toks: &[Tok],
    mask: &[bool],
    out: &mut Vec<(String, String, u32)>,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !matches!(t.kind, TokKind::Str | TokKind::RawStr) {
            continue;
        }
        let content = t.str_content();
        let bytes: Vec<char> = content.chars().collect();
        let mut k = 0;
        while k < bytes.len() {
            if bytes[k] == '|' && k + 1 < bytes.len() && bytes[k + 1].is_ascii_alphabetic() {
                let start = k + 1;
                let mut end = start;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric()
                        || bytes[end] == '_'
                        || bytes[end] == '-')
                {
                    end += 1;
                }
                let mut frag: String = bytes[start..end].iter().collect();
                if bytes.get(end) == Some(&'=') {
                    frag.push('=');
                    end += 1;
                }
                out.push((frag, file.rel.clone(), t.line));
                k = end;
            } else {
                k += 1;
            }
        }
    }
}

/// Find the `SCHEMA_VERSION` const's string value: the identifier
/// followed (through `: &str =` shaped tokens only) by a string.
fn extract_schema_version(toks: &[Tok]) -> Option<String> {
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("SCHEMA_VERSION") {
            continue;
        }
        let mut j = i + 1;
        while let Some(n) = code.get(j) {
            match n.kind {
                TokKind::Str => return Some(n.str_content().to_string()),
                TokKind::Punct if n.is_punct(':') || n.is_punct('&') || n.is_punct('=') => {}
                TokKind::Ident if n.is_ident("str") || n.is_ident("static") => {}
                TokKind::Lifetime => {}
                _ => break,
            }
            j += 1;
        }
    }
    None
}

/// `key-fragment-registry`: reconcile fragments found in key modules
/// against the committed `key_fragments.registry` in the crate root.
///
/// Registration flows one way (every key-module fragment must be in
/// the registry); liveness flows the other (every registry entry must
/// have a code site *somewhere in the workspace* — `live` is the
/// union over all first-party Lib/Bin files, not just key modules, so
/// an entry referenced from a report renderer still counts). An entry
/// whose note starts with `reserved:` is exempt from the dead-entry
/// check: that is the committed way to park a fragment (pragmas
/// cannot annotate `.registry` files).
fn key_fragment_registry(
    krate: &CrateInfo,
    fragments: &[(String, String, u32)],
    live: &BTreeSet<String>,
    schema_version: Option<&str>,
    out: &mut Vec<Finding>,
) {
    let reg_rel = if krate.rel_dir == "." {
        "key_fragments.registry".to_string()
    } else {
        format!("{}/key_fragments.registry", krate.rel_dir)
    };
    let reg_path = krate.dir.join("key_fragments.registry");
    let text = match std::fs::read_to_string(&reg_path) {
        Ok(t) => t,
        Err(_) => {
            out.push(Finding {
                file: reg_rel,
                line: 1,
                rule: "key-fragment-registry".into(),
                msg: format!(
                    "`{}` builds content keys but has no committed key_fragments.registry — \
                     every key fragment must be registered with a schema-version note",
                    krate.name
                ),
            });
            return;
        }
    };
    // Registry format: `# schema: <version>` header, then
    // `<fragment><whitespace><note>` entry lines; `#` lines are comments.
    let mut registered: BTreeMap<String, (u32, String)> = BTreeMap::new();
    let mut header_schema: Option<String> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(v) = rest.trim().strip_prefix("schema:") {
                header_schema = Some(v.trim().to_string());
            }
            continue;
        }
        let mut parts = line.splitn(2, char::is_whitespace);
        let frag = parts.next().unwrap_or_default().to_string();
        let note = parts.next().unwrap_or("").trim();
        if note.is_empty() {
            out.push(Finding {
                file: reg_rel.clone(),
                line: lineno,
                rule: "key-fragment-registry".into(),
                msg: format!("registry entry `{frag}` is missing its schema-version note"),
            });
        }
        registered.insert(frag, (lineno, note.to_string()));
    }
    match (&header_schema, schema_version) {
        (Some(h), Some(s)) if h != s => out.push(Finding {
            file: reg_rel.clone(),
            line: 1,
            rule: "key-fragment-registry".into(),
            msg: format!(
                "registry header says `schema: {h}` but SCHEMA_VERSION in spec.rs is `{s}` — \
                 bump the registry alongside the schema"
            ),
        }),
        (None, _) => out.push(Finding {
            file: reg_rel.clone(),
            line: 1,
            rule: "key-fragment-registry".into(),
            msg: "registry is missing its `# schema: <version>` header line".into(),
        }),
        _ => {}
    }
    for (frag, file, line) in fragments {
        if !registered.contains_key(frag) {
            out.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "key-fragment-registry".into(),
                msg: format!(
                    "content-key fragment `|{frag}` is not in {reg_rel} — register it with a \
                     schema-version note (unregistered fragments are how key drift ships silently)"
                ),
            });
        }
    }
    for (frag, (lineno, note)) in &registered {
        if note.starts_with("reserved:") {
            continue;
        }
        if !live.contains(frag) {
            out.push(Finding {
                file: reg_rel.clone(),
                line: *lineno,
                rule: "key-fragment-registry".into(),
                msg: format!(
                    "registry entry `{frag}` has no remaining code site anywhere in the \
                     workspace — delete the dead entry, or change its note to \
                     `reserved: <why>` to park the fragment deliberately"
                ),
            });
        }
    }
}

fn manifest_rel(krate: &CrateInfo) -> String {
    if krate.rel_dir == "." {
        "Cargo.toml".to_string()
    } else {
        format!("{}/Cargo.toml", krate.rel_dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use crate::workspace::Workspace;
    use std::path::PathBuf;

    fn file(rel: &str, kind: FileKind, text: &str) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            kind,
            text: text.into(),
        }
    }

    fn krate(name: &str, rel_dir: &str, manifest: &str, files: Vec<SourceFile>) -> CrateInfo {
        CrateInfo {
            name: name.into(),
            rel_dir: rel_dir.into(),
            dir: PathBuf::from(rel_dir),
            manifest: Manifest::parse(manifest),
            files,
        }
    }

    fn ws(root_manifest: Option<&str>, crates: Vec<CrateInfo>) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            crates,
            root_manifest: root_manifest.map(Manifest::parse),
        }
    }

    #[test]
    fn workspace_dep_without_default_features_false_is_the_pr6_bug() {
        let member = "[package]\nname = \"obsful\"\n[features]\ndefault = [\"obs\"]\nobs = []\n";
        let lib = file(
            "crates/obsful/src/lib.rs",
            FileKind::Lib,
            "#![forbid(unsafe_code)]\n",
        );
        let bad_root =
            "[workspace]\n[workspace.dependencies]\nobsful = { path = \"crates/obsful\" }\n";
        let w = ws(
            Some(bad_root),
            vec![krate("obsful", "crates/obsful", member, vec![lib])],
        );
        let findings = run(&w);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "feature-cfg-audit" && f.msg.contains("default features on")),
            "{findings:#?}"
        );

        let good_root = "[workspace]\n[workspace.dependencies]\nobsful = { path = \"crates/obsful\", default-features = false }\n";
        let lib = file(
            "crates/obsful/src/lib.rs",
            FileKind::Lib,
            "#![forbid(unsafe_code)]\n",
        );
        let w = ws(
            Some(good_root),
            vec![krate("obsful", "crates/obsful", member, vec![lib])],
        );
        assert!(run(&w).is_empty(), "{:#?}", run(&w));
    }

    #[test]
    fn trailing_pragma_targets_its_own_line() {
        let src = "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // snug-lint: allow(panic-audit, \"test: trailing\")\n}\n";
        let lib = file("crates/t/src/lib.rs", FileKind::Lib, src);
        let w = ws(
            None,
            vec![krate(
                "t",
                "crates/t",
                "[package]\nname = \"t\"\n",
                vec![lib],
            )],
        );
        assert!(run(&w).is_empty(), "{:#?}", run(&w));
    }

    #[test]
    fn standalone_pragma_targets_next_code_line_across_blank_and_comment() {
        let src = "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    // snug-lint: allow(panic-audit, \"test: standalone\")\n    // an interleaved ordinary comment\n\n    x.unwrap()\n}\n";
        let lib = file("crates/t/src/lib.rs", FileKind::Lib, src);
        let w = ws(
            None,
            vec![krate(
                "t",
                "crates/t",
                "[package]\nname = \"t\"\n",
                vec![lib],
            )],
        );
        assert!(run(&w).is_empty(), "{:#?}", run(&w));
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_suppress() {
        let src = "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // snug-lint: allow(forbid-unsafe, \"wrong rule\")\n}\n";
        let lib = file("crates/t/src/lib.rs", FileKind::Lib, src);
        let w = ws(
            None,
            vec![krate(
                "t",
                "crates/t",
                "[package]\nname = \"t\"\n",
                vec![lib],
            )],
        );
        let findings = run(&w);
        // The unwrap still fires AND the mismatched pragma is stale.
        assert!(findings.iter().any(|f| f.rule == "panic-audit"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "pragma" && f.msg.contains("suppresses nothing")));
    }

    #[test]
    fn bins_tests_benches_are_panic_exempt() {
        for kind in [
            FileKind::Bin,
            FileKind::Test,
            FileKind::Bench,
            FileKind::Example,
        ] {
            let f = file("crates/t/x.rs", kind, "fn main() { None::<u32>.unwrap(); }");
            let w = ws(
                None,
                vec![krate("t", "crates/t", "[package]\nname = \"t\"\n", vec![f])],
            );
            assert!(
                run(&w).iter().all(|f| f.rule != "panic-audit"),
                "{kind:?} should be exempt"
            );
        }
    }

    #[test]
    fn schema_version_extraction_reads_the_const() {
        let toks = lex("pub const SCHEMA_VERSION: &str = \"snug-harness/v2\";");
        assert_eq!(
            extract_schema_version(&toks).as_deref(),
            Some("snug-harness/v2")
        );
    }
}
