//! Finding renderers: human (terminal), markdown (CI summary table),
//! and JSON (machine-readable, hand-rolled like the harness codecs).

use crate::rules::{Finding, RULES};

/// Render findings as `path:line: [rule] message` lines plus a
/// summary, mirroring compiler diagnostics so editors can jump.
pub fn human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.rule, f.msg));
    }
    if findings.is_empty() {
        out.push_str("snug-lint: clean (0 findings)\n");
    } else {
        out.push_str(&format!(
            "snug-lint: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Render findings as a GitHub-flavoured markdown table for the CI
/// step summary, followed by a per-rule finding-count table covering
/// every rule in the catalogue (zero rows included) — the count table
/// is emitted even on a clean run, so CI summaries prove each rule
/// actually executed rather than silently vanishing.
pub fn markdown(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("### snug-lint findings\n\n");
    if findings.is_empty() {
        out.push_str("clean: 0 findings across the workspace.\n");
    } else {
        out.push_str("| file | line | rule | finding |\n");
        out.push_str("| --- | ---: | --- | --- |\n");
        for f in findings {
            let msg = f.msg.replace('|', "\\|");
            out.push_str(&format!(
                "| `{}` | {} | `{}` | {} |\n",
                f.file, f.line, f.rule, msg
            ));
        }
        out.push_str(&format!("\n{} finding(s).\n", findings.len()));
    }
    out.push_str("\n### snug-lint findings per rule\n\n");
    out.push_str("| rule | findings |\n");
    out.push_str("| --- | ---: |\n");
    for r in RULES {
        let n = findings.iter().filter(|f| f.rule == r.name).count();
        out.push_str(&format!("| `{}` | {n} |\n", r.name));
    }
    // `pragma` findings (stale/malformed escapes) are engine-level,
    // not catalogue rules, but count them the same way.
    let stale = findings.iter().filter(|f| f.rule == "pragma").count();
    out.push_str(&format!("| `pragma` | {stale} |\n"));
    out
}

/// Render findings as a JSON array (stable field order, sorted input).
pub fn json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"msg\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(&f.rule),
            json_str(&f.msg)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// The rule catalogue, one rule per line, for `--list-rules`.
pub fn rule_list() -> String {
    let mut out = String::new();
    for r in RULES {
        out.push_str(&format!("{:<24} {}\n", r.name, r.summary));
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "panic-audit".into(),
            msg: "a \"quoted\" | piped".into(),
        }]
    }

    #[test]
    fn human_clean_and_dirty() {
        assert!(human(&[]).contains("clean (0 findings)"));
        let h = human(&sample());
        assert!(h.contains("crates/x/src/lib.rs:7: [panic-audit]"));
        assert!(h.contains("1 finding\n"));
    }

    #[test]
    fn markdown_escapes_pipes() {
        let md = markdown(&sample());
        assert!(md.contains("\\|"));
        assert!(md.starts_with("### snug-lint findings"));
    }

    #[test]
    fn markdown_counts_every_rule_even_when_clean() {
        for md in [markdown(&[]), markdown(&sample())] {
            assert!(md.contains("### snug-lint findings per rule"), "{md}");
            for r in RULES {
                assert!(md.contains(&format!("| `{}` | ", r.name)), "{md}");
            }
            assert!(md.contains("| `pragma` | 0 |"), "{md}");
        }
        assert!(markdown(&sample()).contains("| `panic-audit` | 1 |"));
        assert!(markdown(&[]).contains("| `panic-audit` | 0 |"));
    }

    #[test]
    fn json_escapes_quotes() {
        let j = json(&sample());
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.trim_end().ends_with(']'));
    }

    #[test]
    fn rule_list_names_all_rules() {
        let l = rule_list();
        for r in RULES {
            assert!(l.contains(r.name));
        }
    }
}
