//! A minimal Cargo manifest reader — just enough TOML for the lint
//! rules: section headers, `key = value` pairs (string, inline table,
//! and possibly multi-line array values), comment stripping outside
//! strings. No external parser crates, matching the repo's hand-rolled
//! JSON codec discipline.

use std::collections::BTreeMap;

/// A parsed manifest: section name → ordered `(key, raw value, line)`
/// triples. Dotted headers like `[workspace.dependencies]` keep their
/// full dotted name as the section key.
#[derive(Debug, Default)]
pub struct Manifest {
    sections: BTreeMap<String, Vec<(String, String, u32)>>,
}

impl Manifest {
    /// Parse manifest text. Unknown or oddly-shaped lines are skipped
    /// rather than rejected — rustc/cargo own real validation.
    pub fn parse(src: &str) -> Manifest {
        let mut m = Manifest::default();
        let mut section = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                if let Some(name) = rest.strip_suffix(']') {
                    // `[[bin]]` array-of-tables headers come through as
                    // `[bin]`-like after trimming one bracket layer.
                    section = name
                        .trim_matches(|c| c == '[' || c == ']')
                        .trim()
                        .to_string();
                    m.sections.entry(section.clone()).or_default();
                }
                continue;
            }
            if let Some(eq) = line.find('=') {
                let key = line[..eq].trim().trim_matches('"').to_string();
                let mut value = line[eq + 1..].trim().to_string();
                // Multi-line array values: keep consuming lines until
                // brackets balance.
                while bracket_depth(&value) > 0 {
                    match lines.next() {
                        Some((_, next)) => {
                            value.push(' ');
                            value.push_str(strip_comment(next).trim());
                        }
                        None => break,
                    }
                }
                m.sections
                    .entry(section.clone())
                    .or_default()
                    .push((key, value, lineno));
            }
        }
        m
    }

    /// Raw value for `key` in `section`, if present.
    pub fn get(&self, section: &str, key: &str) -> Option<&str> {
        self.sections
            .get(section)?
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v.as_str())
    }

    /// 1-based manifest line where `key` is declared in `section`.
    pub fn line_of_key(&self, section: &str, key: &str) -> Option<u32> {
        self.sections
            .get(section)?
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, _, l)| *l)
    }

    /// All keys declared in `section` (empty if the section is absent).
    pub fn keys(&self, section: &str) -> Vec<&str> {
        self.sections
            .get(section)
            .map(|kv| kv.iter().map(|(k, _, _)| k.as_str()).collect())
            .unwrap_or_default()
    }

    /// True if the manifest declares the section at all.
    pub fn has_section(&self, section: &str) -> bool {
        self.sections.contains_key(section)
    }

    /// The `[package] name` value, unquoted.
    pub fn package_name(&self) -> Option<&str> {
        self.get("package", "name").map(unquote)
    }

    /// String elements of an array value like `["a", "b"]`.
    pub fn string_array(&self, section: &str, key: &str) -> Vec<String> {
        let Some(v) = self.get(section, key) else {
            return Vec::new();
        };
        parse_string_array(v)
    }
}

/// Strip a `#` comment, respecting basic double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => {
                escaped = !escaped;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn bracket_depth(value: &str) -> i64 {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in value.chars() {
        match c {
            '\\' if in_str => {
                escaped = !escaped;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth
}

fn unquote(s: &str) -> &str {
    s.trim().trim_matches('"')
}

fn parse_string_array(v: &str) -> Vec<String> {
    let inner = v.trim().trim_start_matches('[').trim_end_matches(']');
    inner
        .split(',')
        .map(|s| unquote(s).to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "snug-harness" # the orchestration crate
version.workspace = true

[features]
default = ["obs"]
obs = ["sim-cache/obs", "sim-cmp/obs"]

[workspace.dependencies]
sim-cache = { path = "crates/sim-cache", default-features = false }
snug-metrics = { path = "crates/metrics" }

[workspace]
members = [
    "crates/*",
    "vendor/*", # offline shims
]
"#;

    #[test]
    fn package_name_unquoted_with_trailing_comment() {
        let m = Manifest::parse(SAMPLE);
        assert_eq!(m.package_name(), Some("snug-harness"));
    }

    #[test]
    fn feature_keys() {
        let m = Manifest::parse(SAMPLE);
        assert_eq!(m.keys("features"), vec!["default", "obs"]);
    }

    #[test]
    fn workspace_dep_values() {
        let m = Manifest::parse(SAMPLE);
        let v = m.get("workspace.dependencies", "sim-cache").expect("dep");
        assert!(v.contains("default-features = false"));
        let v = m
            .get("workspace.dependencies", "snug-metrics")
            .expect("dep");
        assert!(!v.contains("default-features"));
    }

    #[test]
    fn multiline_member_array() {
        let m = Manifest::parse(SAMPLE);
        assert_eq!(
            m.string_array("workspace", "members"),
            vec!["crates/*", "vendor/*"]
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let m = Manifest::parse("[package]\nname = \"has#hash\"\n");
        assert_eq!(m.package_name(), Some("has#hash"));
    }
}
