//! The workspace symbol graph: every first-party file lexed, masked,
//! and item-parsed once, plus a cross-file symbol table resolving
//! first-party type names to their defining struct/enum.
//!
//! Semantic rules walk this graph instead of re-lexing: a rule that
//! sees `impl JsonCodec for SimCounters` in `snug-harness` resolves
//! `SimCounters` through the table to its field list in
//! `snug-metrics`, crossing crate boundaries the way the compiler
//! does (by name, not by path — first-party type names are unique
//! enough in practice, and ambiguous names resolve same-crate first
//! or not at all, so a collision can never mis-attribute fields).

use std::collections::BTreeMap;

use crate::items::{parse_items, ParsedFile, StructItem};
use crate::lexer::{lex, test_mask, Tok};
use crate::workspace::{CrateInfo, FileKind, SourceFile, Workspace};

/// One file's full analysis context: tokens, test mask, and parsed
/// items, with its crate attached.
pub struct FileCtx<'ws> {
    /// The owning crate.
    pub krate: &'ws CrateInfo,
    /// The source file.
    pub file: &'ws SourceFile,
    /// Lexed token stream (comments included).
    pub toks: Vec<Tok>,
    /// Per-token test mask (same length as `toks`).
    pub mask: Vec<bool>,
    /// Parsed item structure; spans index into `toks`.
    pub items: ParsedFile,
}

/// The whole-workspace analysis graph.
pub struct Graph<'ws> {
    /// Every first-party source file, in workspace discovery order.
    pub files: Vec<FileCtx<'ws>>,
}

impl<'ws> Graph<'ws> {
    /// Lex and item-parse every file of the workspace.
    pub fn build(ws: &'ws Workspace) -> Self {
        let mut files = Vec::new();
        for krate in &ws.crates {
            for file in &krate.files {
                let toks = lex(&file.text);
                let mask = test_mask(&toks);
                let items = parse_items(&toks);
                files.push(FileCtx {
                    krate,
                    file,
                    toks,
                    mask,
                    items,
                });
            }
        }
        Graph { files }
    }
}

/// Cross-file symbol table: first-party type names, library code
/// only (test/bench-local types must never shadow the real ones).
pub struct SymbolTable {
    /// Struct name → defining `(file, struct)` indices into the graph.
    structs: BTreeMap<String, Vec<(usize, usize)>>,
    /// Enum name → defining `(file, enum)` indices.
    enums: BTreeMap<String, Vec<(usize, usize)>>,
}

impl SymbolTable {
    /// Index every struct and enum defined in library files.
    pub fn build(graph: &Graph<'_>) -> Self {
        let mut structs: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        let mut enums: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, ctx) in graph.files.iter().enumerate() {
            if ctx.file.kind != FileKind::Lib {
                continue;
            }
            for (si, s) in ctx.items.structs.iter().enumerate() {
                structs.entry(s.name.clone()).or_default().push((fi, si));
            }
            for (ei, e) in ctx.items.enums.iter().enumerate() {
                enums.entry(e.name.clone()).or_default().push((fi, ei));
            }
        }
        SymbolTable { structs, enums }
    }

    /// Resolve a struct name as seen from `from_file` (a graph index):
    /// a definition in the same crate wins, otherwise the name must be
    /// workspace-unique. Ambiguous foreign names resolve to `None` —
    /// a semantic rule must stay silent rather than guess.
    pub fn resolve_struct<'g>(
        &self,
        graph: &'g Graph<'_>,
        from_file: usize,
        name: &str,
    ) -> Option<(usize, &'g StructItem)> {
        let candidates = self.structs.get(name)?;
        let from_crate = &graph.files[from_file].krate.name;
        let same_crate: Vec<&(usize, usize)> = candidates
            .iter()
            .filter(|(fi, _)| &graph.files[*fi].krate.name == from_crate)
            .collect();
        let (fi, si) = match (same_crate.len(), candidates.len()) {
            (1, _) => *same_crate[0],
            (0, 1) => candidates[0],
            _ => return None,
        };
        Some((fi, &graph.files[fi].items.structs[si]))
    }

    /// True when `name` is a known first-party enum (used by rules to
    /// skip non-struct codec impls without guessing).
    pub fn is_enum(&self, name: &str) -> bool {
        self.enums.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use std::path::PathBuf;

    fn ws_two_crates() -> Workspace {
        let mk = |name: &str, rel: &str, src: &str| CrateInfo {
            name: name.into(),
            rel_dir: rel.into(),
            dir: PathBuf::from(rel),
            manifest: Manifest::parse(&format!("[package]\nname = \"{name}\"\n")),
            files: vec![SourceFile {
                rel: format!("{rel}/src/lib.rs"),
                kind: FileKind::Lib,
                text: src.into(),
            }],
        };
        Workspace {
            root: PathBuf::from("."),
            crates: vec![
                mk(
                    "metrics",
                    "crates/metrics",
                    "pub struct Counters { pub hits: u64 }\npub struct Local { pub x: u64 }",
                ),
                mk(
                    "harness",
                    "crates/harness",
                    "pub struct Local { pub y: u64 }\npub enum Kind { A, B }",
                ),
            ],
            root_manifest: None,
        }
    }

    #[test]
    fn unique_foreign_names_resolve_across_crates() {
        let ws = ws_two_crates();
        let graph = Graph::build(&ws);
        let tab = SymbolTable::build(&graph);
        // From the harness file (index 1), `Counters` resolves into metrics.
        let (fi, s) = tab.resolve_struct(&graph, 1, "Counters").expect("resolves");
        assert_eq!(graph.files[fi].krate.name, "metrics");
        assert_eq!(s.fields[0].name, "hits");
    }

    #[test]
    fn ambiguous_names_resolve_same_crate_or_not_at_all() {
        let ws = ws_two_crates();
        let graph = Graph::build(&ws);
        let tab = SymbolTable::build(&graph);
        // `Local` exists in both crates: same-crate wins from each side.
        let (fi, s) = tab
            .resolve_struct(&graph, 0, "Local")
            .expect("metrics side");
        assert_eq!(fi, 0);
        assert_eq!(s.fields[0].name, "x");
        let (fi, s) = tab
            .resolve_struct(&graph, 1, "Local")
            .expect("harness side");
        assert_eq!(fi, 1);
        assert_eq!(s.fields[0].name, "y");
        assert!(tab.is_enum("Kind"));
        assert!(!tab.is_enum("Counters"));
    }
}
