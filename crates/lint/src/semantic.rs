//! Semantic rules over the workspace symbol graph: checks that need
//! item structure and cross-file type resolution, not just a token
//! stream.
//!
//! Each rule here guards a historical bug class of this repo:
//! session state missed by `snapshot()` (the PR 3–6 determinism
//! fixes), codec fields silently dropped from JSON round-trips (the
//! PR 6 `SimCounters` bijection bug), counter tallies escaping the
//! `obs` feature gate (the PR 6 silent-feature-weld), and truncating
//! casts in kernel hot paths. Findings are pragma-suppressible like
//! any token rule — the engine applies suppression globally after
//! all rules have run.

use crate::items::FnItem;
use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::symbols::{FileCtx, Graph, SymbolTable};
use crate::workspace::FileKind;

/// True when the token span `[lo, hi]` of `ctx` mentions `name` as a
/// field: a string literal with exactly that content (codec keys), an
/// identifier preceded by `.` (field access), or an identifier
/// followed by `:`/`,`/`}`/`;` (struct-literal init or shorthand).
/// Deliberately syntactic: deleting the line that reads or writes the
/// field removes every qualifying mention.
fn mentions_field(ctx: &FileCtx<'_>, span: (usize, usize), name: &str) -> bool {
    let hi = span.1.min(ctx.toks.len().saturating_sub(1));
    let idx: Vec<usize> = (span.0..=hi)
        .filter(|&i| {
            !matches!(
                ctx.toks[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect();
    for (k, &i) in idx.iter().enumerate() {
        let t = &ctx.toks[i];
        match t.kind {
            TokKind::Str | TokKind::RawStr if t.str_content() == name => {
                return true;
            }
            TokKind::Ident if t.text == name => {
                let prev_dot = k > 0 && ctx.toks[idx[k - 1]].is_punct('.');
                let next_ok = idx
                    .get(k + 1)
                    .map(|&j| {
                        let n = &ctx.toks[j];
                        n.is_punct(':') || n.is_punct(',') || n.is_punct('}') || n.is_punct(';')
                    })
                    .unwrap_or(false);
                if prev_dot || next_ok {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// True when the signature span mentions `name` as an identifier.
fn sig_mentions(ctx: &FileCtx<'_>, sig: (usize, usize), name: &str) -> bool {
    let hi = sig.1.min(ctx.toks.len());
    ctx.toks[sig.0..hi].iter().any(|t| t.is_ident(name))
}

/// `snapshot-completeness`: for every `*Snapshot` struct, the paired
/// state struct's fields must all be captured, and every snapshot
/// field must be read in the capture method and written back in the
/// restore method.
///
/// Pairing is conventional and documented: the capture is a method
/// named `snapshot` (on some other type — the state) whose signature
/// mentions the snapshot type; the restore is any method of the
/// snapshot type whose body mentions the state type (it builds one).
/// Snapshot structs with no such capture method are out of scope.
pub fn snapshot_completeness(graph: &Graph<'_>, symtab: &SymbolTable, out: &mut Vec<Finding>) {
    for (fi, ctx) in graph.files.iter().enumerate() {
        if ctx.file.kind != FileKind::Lib {
            continue;
        }
        for snap in &ctx.items.structs {
            if !snap.name.ends_with("Snapshot") || !snap.has_named_fields || snap.fields.is_empty()
            {
                continue;
            }
            let Some((cap_fi, state_name, capture)) = find_capture(graph, &snap.name) else {
                continue;
            };
            let cap_ctx = &graph.files[cap_fi];
            let snap_fields: Vec<&str> = snap.fields.iter().map(|f| f.name.as_str()).collect();

            // Every state field must have a slot in the snapshot.
            if let Some((sfi, state)) = symtab.resolve_struct(graph, cap_fi, &state_name) {
                let state_ctx = &graph.files[sfi];
                for f in &state.fields {
                    if !snap_fields.contains(&f.name.as_str()) {
                        out.push(Finding {
                            file: state_ctx.file.rel.clone(),
                            line: f.line,
                            rule: "snapshot-completeness".into(),
                            msg: format!(
                                "field `{}` of `{}` has no slot in `{}` — state that escapes \
                                 the snapshot breaks restore determinism; capture it or \
                                 pragma-justify why it is derived/transient",
                                f.name, state_name, snap.name
                            ),
                        });
                    }
                }
            }

            // Every snapshot field must be read in the capture body…
            if let Some(body) = capture.body {
                for f in &snap.fields {
                    if !mentions_field(cap_ctx, body, &f.name) {
                        out.push(Finding {
                            file: ctx.file.rel.clone(),
                            line: f.line,
                            rule: "snapshot-completeness".into(),
                            msg: format!(
                                "snapshot field `{}` is never populated in `{}::snapshot` — \
                                 the capture silently drops it",
                                f.name, state_name
                            ),
                        });
                    }
                }
            }

            // …and written back in the restore.
            match find_restore(graph, fi, &snap.name, &state_name) {
                Some((r_fi, restore)) => {
                    let r_ctx = &graph.files[r_fi];
                    if let Some(body) = restore.body {
                        for f in &snap.fields {
                            if !mentions_field(r_ctx, body, &f.name) {
                                out.push(Finding {
                                    file: ctx.file.rel.clone(),
                                    line: f.line,
                                    rule: "snapshot-completeness".into(),
                                    msg: format!(
                                        "snapshot field `{}` is never written back in \
                                         `{}::{}` — restore would lose it",
                                        f.name, snap.name, restore.name
                                    ),
                                });
                            }
                        }
                    }
                }
                None => out.push(Finding {
                    file: ctx.file.rel.clone(),
                    line: snap.line,
                    rule: "snapshot-completeness".into(),
                    msg: format!(
                        "`{}` is captured from `{}` but no method of `{}` builds a `{}` back — \
                         restore is missing or unrecognizable",
                        snap.name, state_name, snap.name, state_name
                    ),
                }),
            }
        }
    }
}

/// Find the capture: a bodied method named `snapshot` in a lib-file
/// impl of some *other* type, whose signature mentions `snap_name`.
/// Returns (file index, state type name, the method).
fn find_capture<'g>(graph: &'g Graph<'_>, snap_name: &str) -> Option<(usize, String, &'g FnItem)> {
    for (fi, ctx) in graph.files.iter().enumerate() {
        if ctx.file.kind != FileKind::Lib {
            continue;
        }
        for imp in &ctx.items.impls {
            if imp.self_ty == snap_name {
                continue;
            }
            for m in &imp.methods {
                if m.name == "snapshot" && m.body.is_some() && sig_mentions(ctx, m.sig, snap_name) {
                    return Some((fi, imp.self_ty.clone(), m));
                }
            }
        }
    }
    None
}

/// Find the restore: a bodied method in an impl of the snapshot type
/// whose body mentions the state type. The defining file is searched
/// first so a same-file `to_session` wins over helpers elsewhere.
fn find_restore<'g>(
    graph: &'g Graph<'_>,
    snap_fi: usize,
    snap_name: &str,
    state_name: &str,
) -> Option<(usize, &'g FnItem)> {
    let order = std::iter::once(snap_fi).chain(0..graph.files.len());
    for fi in order {
        let ctx = &graph.files[fi];
        if ctx.file.kind != FileKind::Lib {
            continue;
        }
        for imp in &ctx.items.impls {
            if imp.self_ty != snap_name {
                continue;
            }
            for m in &imp.methods {
                if let Some(body) = m.body {
                    if ctx.toks[body.0..=body.1]
                        .iter()
                        .any(|t| t.is_ident(state_name))
                    {
                        return Some((fi, m));
                    }
                }
            }
        }
    }
    None
}

/// `codec-field-bijection`: an impl carrying both `to_json` and
/// `from_json` for a first-party struct with named fields must
/// mention every field in both bodies. Enums and unresolvable types
/// are out of scope (a rule must not guess).
pub fn codec_field_bijection(graph: &Graph<'_>, symtab: &SymbolTable, out: &mut Vec<Finding>) {
    for (fi, ctx) in graph.files.iter().enumerate() {
        if ctx.file.kind != FileKind::Lib {
            continue;
        }
        for imp in &ctx.items.impls {
            let bodied = |name: &str| {
                imp.methods
                    .iter()
                    .find(|m| m.name == name)
                    .and_then(|m| m.body.map(|b| (m, b)))
            };
            let (Some(to), Some(from)) = (bodied("to_json"), bodied("from_json")) else {
                continue;
            };
            if symtab.is_enum(&imp.self_ty) {
                continue;
            }
            let Some((_, s)) = symtab.resolve_struct(graph, fi, &imp.self_ty) else {
                continue;
            };
            if !s.has_named_fields {
                continue;
            }
            for ((m, body), dir) in [(to, "to_json"), (from, "from_json")] {
                for f in &s.fields {
                    if !mentions_field(ctx, body, &f.name) {
                        out.push(Finding {
                            file: ctx.file.rel.clone(),
                            line: m.line,
                            rule: "codec-field-bijection".into(),
                            msg: format!(
                                "field `{}` of `{}` does not appear in `{dir}` — a one-sided \
                                 codec drops data on the round trip (the PR 6 SimCounters bug \
                                 class); encode it or pragma-justify the omission",
                                f.name, s.name
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// One `self.tally.<field> += …` (or `tally.<field>[i] += …`) site.
struct TallySite {
    raw: usize,
    line: u32,
    field: String,
}

/// `obs-cfg-consistency`: every counter-tally site in kernel library
/// code must be reachable only under the `obs` feature — inside an
/// `if cfg!(feature = "obs")` block, after a `!cfg!(…obs…)` early
/// return, or in a `#[cfg(feature = "obs")]`-gated fn/impl.
pub fn obs_cfg_consistency(graph: &Graph<'_>, out: &mut Vec<Finding>) {
    for ctx in &graph.files {
        if !ctx.krate.is_kernel() || ctx.file.kind != FileKind::Lib {
            continue;
        }
        let sites = tally_sites(ctx);
        if sites.is_empty() {
            continue;
        }
        // All bodied fns of the file with their effective cfg gate.
        let mut bodies: Vec<((usize, usize), bool)> = Vec::new();
        for f in &ctx.items.fns {
            if let Some(b) = f.body {
                bodies.push((b, f.cfg_feature.as_deref() == Some("obs")));
            }
        }
        for imp in &ctx.items.impls {
            let imp_gated = imp.cfg_feature.as_deref() == Some("obs");
            for m in &imp.methods {
                if let Some(b) = m.body {
                    bodies.push((b, imp_gated || m.cfg_feature.as_deref() == Some("obs")));
                }
            }
        }
        for site in sites {
            // Innermost containing body (nested fns are not parsed,
            // so smallest span wins trivially).
            let hit = bodies
                .iter()
                .filter(|((lo, hi), _)| *lo <= site.raw && site.raw <= *hi)
                .min_by_key(|((lo, hi), _)| hi - lo);
            let gated = match hit {
                Some(&(body, whole_fn_gated)) => {
                    whole_fn_gated
                        || gated_ranges(ctx, body)
                            .iter()
                            .any(|(lo, hi)| *lo <= site.raw && site.raw <= *hi)
                }
                None => false,
            };
            if !gated {
                out.push(Finding {
                    file: ctx.file.rel.clone(),
                    line: site.line,
                    rule: "obs-cfg-consistency".into(),
                    msg: format!(
                        "counter tally `tally.{} += …` is reachable with the `obs` feature \
                         compiled out — gate it under `if cfg!(feature = \"obs\")` (or a \
                         `!cfg!` early return) so the zero-cost build stays zero-cost",
                        site.field
                    ),
                });
            }
        }
    }
}

/// Collect `tally.<field> … += …` sites in non-test code.
fn tally_sites(ctx: &FileCtx<'_>) -> Vec<TallySite> {
    let code: Vec<usize> = ctx
        .toks
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) && !ctx.mask[*i]
        })
        .map(|(i, _)| i)
        .collect();
    let tok = |k: usize| &ctx.toks[code[k]];
    let mut sites = Vec::new();
    let mut k = 0;
    while k + 3 < code.len() {
        if tok(k).is_ident("tally") && tok(k + 1).is_punct('.') && tok(k + 2).kind == TokKind::Ident
        {
            let field = tok(k + 2).text.clone();
            let mut j = k + 3;
            // Optional index expression: `tally.buckets[d] += 1`.
            if j < code.len() && tok(j).is_punct('[') {
                let mut depth = 0i64;
                while j < code.len() {
                    if tok(j).is_punct('[') {
                        depth += 1;
                    } else if tok(j).is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if j + 1 < code.len() && tok(j).is_punct('+') && tok(j + 1).is_punct('=') {
                sites.push(TallySite {
                    raw: code[k],
                    line: tok(k).line,
                    field,
                });
            }
        }
        k += 1;
    }
    sites
}

/// Token ranges (raw indices) within `body` that are only reachable
/// under the `obs` feature: `if cfg!(feature = "obs") { … }` blocks,
/// and everything after an `if !cfg!(feature = "obs") { … return … }`
/// guard.
fn gated_ranges(ctx: &FileCtx<'_>, body: (usize, usize)) -> Vec<(usize, usize)> {
    let code: Vec<usize> = (body.0..=body.1.min(ctx.toks.len().saturating_sub(1)))
        .filter(|&i| {
            !matches!(
                ctx.toks[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect();
    let tok = |k: usize| &ctx.toks[code[k]];
    let mut ranges = Vec::new();
    let mut k = 0;
    while k + 2 < code.len() {
        if !(tok(k).is_ident("cfg") && tok(k + 1).is_punct('!') && tok(k + 2).is_punct('(')) {
            k += 1;
            continue;
        }
        let negated = k > 0 && tok(k - 1).is_punct('!');
        // The cfg condition group; it must actually name "obs".
        let mut j = k + 2;
        let mut depth = 0i64;
        let mut names_obs = false;
        while j < code.len() {
            if tok(j).is_punct('(') {
                depth += 1;
            } else if tok(j).is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tok(j).kind == TokKind::Str && tok(j).str_content() == "obs" {
                names_obs = true;
            }
            j += 1;
        }
        if !names_obs {
            k = j + 1;
            continue;
        }
        // The branch block: the next `{` at this statement (further
        // `&&`-joined conditions may sit in between).
        let mut b = j + 1;
        while b < code.len() && !tok(b).is_punct('{') && !tok(b).is_punct(';') {
            b += 1;
        }
        if b >= code.len() || !tok(b).is_punct('{') {
            k = j + 1;
            continue;
        }
        let open = b;
        let mut bd = 0i64;
        while b < code.len() {
            if tok(b).is_punct('{') {
                bd += 1;
            } else if tok(b).is_punct('}') {
                bd -= 1;
                if bd == 0 {
                    break;
                }
            }
            b += 1;
        }
        let close = b.min(code.len() - 1);
        if !negated {
            ranges.push((code[open], code[close]));
        } else {
            // Guard form: the block must bail out for the rest of the
            // body to count as gated.
            let bails = (open..=close).any(|x| tok(x).is_ident("return"));
            if bails && close + 1 < code.len() {
                ranges.push((code[close + 1], body.1));
            }
        }
        k = close + 1;
    }
    ranges
}

/// `no-lossy-cast-in-kernel`: `as u8/u16/u32/i8/i16/i32` in kernel
/// library code truncates silently on out-of-range values — each site
/// needs a pragma arguing the range. `as usize`/`as u64`/`as f64`
/// stay exempt: they are widening or address arithmetic in this
/// workspace's kernels.
pub fn lossy_cast_in_kernel(graph: &Graph<'_>, out: &mut Vec<Finding>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    for ctx in &graph.files {
        if !ctx.krate.is_kernel() || ctx.file.kind != FileKind::Lib {
            continue;
        }
        let code: Vec<usize> = ctx
            .toks
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) && !ctx.mask[*i]
            })
            .map(|(i, _)| i)
            .collect();
        for w in code.windows(2) {
            let (a, b) = (&ctx.toks[w[0]], &ctx.toks[w[1]]);
            if a.is_ident("as") && NARROW.iter().any(|n| b.is_ident(n)) {
                out.push(Finding {
                    file: ctx.file.rel.clone(),
                    line: a.line,
                    rule: "no-lossy-cast-in-kernel".into(),
                    msg: format!(
                        "`as {}` in kernel code truncates silently when the value outgrows \
                         the target — prove the range in a pragma or widen the type",
                        b.text
                    ),
                });
            }
        }
    }
}
