//! The `snug-lint` binary: lint the workspace and exit nonzero on
//! findings. See `--help` for flags.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "snug-lint — workspace determinism & schema static analysis

USAGE:
    snug-lint [--root PATH] [--format human|md|json] [--list-rules]

OPTIONS:
    --root PATH      workspace root (default: walk up from the current
                     directory to the first [workspace] Cargo.toml)
    --format FMT     output format: human (default), md, json
    --list-rules     print the rule catalogue and exit
    -h, --help       show this help

EXIT STATUS:
    0  clean          1  findings          2  usage or I/O error
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("human");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--format" => match args.next() {
                Some(f) => format = f,
                None => return usage_error("--format needs human|md|json"),
            },
            "--list-rules" => {
                print!("{}", snug_lint::report::rule_list());
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !matches!(format.as_str(), "human" | "md" | "json") {
        return usage_error(&format!("unknown format `{format}`"));
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match snug_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return usage_error("no [workspace] Cargo.toml found above cwd"),
            }
        }
    };
    match snug_lint::lint_workspace(&root) {
        Ok(findings) => {
            let rendered = match format.as_str() {
                "md" => snug_lint::report::markdown(&findings),
                "json" => snug_lint::report::json(&findings),
                _ => snug_lint::report::human(&findings),
            };
            print!("{rendered}");
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("snug-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("snug-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
