//! `snug-lint`: the workspace's determinism & schema static-analysis
//! pass.
//!
//! Every hard-won runtime property of this reproduction — byte-stable
//! stores across `--jobs N`, probed/unprobed counter identity,
//! bit-stable v2 content keys — depends on source-level disciplines
//! that used to live only in reviewers' heads: no unordered iteration
//! near stores or keys, no wall-clock reads in the simulation kernel,
//! feature graphs that actually compile out, panics justified rather
//! than sprinkled. This crate machine-checks those disciplines with a
//! hand-rolled, comment/string/raw-string-aware Rust lexer (no
//! external parser crates) feeding a small rule engine.
//!
//! Run it as `cargo run -p snug-lint`, via the `snug lint`
//! passthrough, or from CI (`--format md` renders a summary table).
//! Violations that are intentional carry an inline escape hatch:
//!
//! ```text
//! some_call(); // snug-lint: allow(panic-audit, "slot is write-once; poisoning is unreachable")
//! ```
//!
//! The pragma must name a known rule and give a non-empty reason, and
//! it fails the lint when it suppresses nothing — the escape hatch
//! cannot rot into a blanket mute. See ARCHITECTURE.md § Static
//! analysis for the rule catalogue and how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod items;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod symbols;
pub mod workspace;

use std::path::{Path, PathBuf};

pub use rules::{Finding, RULES};

/// Lint the workspace rooted at `root`: discover first-party crates,
/// run every rule, and return pragma-filtered findings sorted by
/// (file, line, rule).
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let ws = workspace::discover(root)?;
    Ok(rules::run(&ws))
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the root the lint should run against
/// regardless of the invocation directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        let toml = dir.join("Cargo.toml");
        if toml.is_file() {
            if let Ok(text) = std::fs::read_to_string(&toml) {
                if manifest::Manifest::parse(&text).has_section("workspace") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
