//! Item-level parser over the lexed token stream: structs with named
//! fields, enums with variants, impl blocks with per-method body
//! spans, and free functions — each with any `#[cfg(feature = "…")]`
//! gate attached.
//!
//! Like the lexer, this is not a Rust front end. It recognises just
//! enough item structure for the semantic rules: field names and
//! rendered types, method names with their signature/body token
//! ranges, and the self/trait type names of impl blocks. Everything
//! it does not understand is skipped by balanced-delimiter scanning,
//! so it never fails and never panics: unterminated constructs close
//! at end of input and rustc reports the real error.

use crate::lexer::{Tok, TokKind};

/// One named struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// The field's type, rendered as space-joined tokens
    /// (`Vec < u64 >`); compare whitespace-insensitively.
    pub ty: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// Feature name when the field carries `#[cfg(feature = "X")]`.
    pub cfg_feature: Option<String>,
}

/// A struct item. Tuple and unit structs are recorded with
/// `has_named_fields == false` and an empty field list.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields, in declaration order.
    pub fields: Vec<Field>,
    /// True for `struct S { … }` (even when empty), false for tuple
    /// and unit structs.
    pub has_named_fields: bool,
    /// Feature name when the item carries `#[cfg(feature = "X")]`.
    pub cfg_feature: Option<String>,
}

/// An enum item (variant names only — payloads are skipped).
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Type name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
}

/// A function: free or an impl method. Token ranges index into the
/// *original* token slice handed to [`parse_items`] (comments
/// included), so rules can scan spans against the same stream they
/// lexed.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Signature token range `[start, end)`: from the `fn` keyword up
    /// to (excluding) the body's `{` or the terminating `;`.
    pub sig: (usize, usize),
    /// Body token range `[open, close]` inclusive of both braces;
    /// `None` for bodyless declarations (trait methods, externs).
    pub body: Option<(usize, usize)>,
    /// Feature name when the fn carries `#[cfg(feature = "X")]`.
    pub cfg_feature: Option<String>,
}

/// An `impl` block with its methods.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// Bare self-type name (`UnitSpan` for
    /// `impl JsonCodec for crate::sweep::UnitSpan`), generics and path
    /// qualifiers stripped.
    pub self_ty: String,
    /// Bare trait name for trait impls, `None` for inherent impls.
    pub trait_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Methods declared directly in the block.
    pub methods: Vec<FnItem>,
    /// Feature name when the block carries `#[cfg(feature = "X")]`.
    pub cfg_feature: Option<String>,
}

/// Everything the parser extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Structs, in source order (module nesting flattened).
    pub structs: Vec<StructItem>,
    /// Enums, in source order.
    pub enums: Vec<EnumItem>,
    /// Impl blocks, in source order.
    pub impls: Vec<ImplItem>,
    /// Free functions (module level; fns nested in bodies are not
    /// recorded).
    pub fns: Vec<FnItem>,
}

/// Parse the item structure out of a lexed token stream.
pub fn parse_items(toks: &[Tok]) -> ParsedFile {
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let mut p = Parser {
        toks,
        code,
        pos: 0,
        out: ParsedFile::default(),
    };
    p.items(None);
    p.out
}

struct Parser<'a> {
    toks: &'a [Tok],
    /// Indices of non-comment tokens in `toks`.
    code: Vec<usize>,
    /// Cursor into `code`.
    pos: usize,
    out: ParsedFile,
}

impl<'a> Parser<'a> {
    fn tok(&self, ahead: usize) -> Option<&'a Tok> {
        self.code.get(self.pos + ahead).map(|&i| &self.toks[i])
    }

    /// Raw index (into `toks`) of the token `ahead` positions from the
    /// cursor; `toks.len()` past the end.
    fn raw(&self, ahead: usize) -> usize {
        self.code
            .get(self.pos + ahead)
            .copied()
            .unwrap_or(self.toks.len())
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_punct(&self, c: char) -> bool {
        self.tok(0).map(|t| t.is_punct(c)).unwrap_or(false)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.tok(0).map(|t| t.is_ident(s)).unwrap_or(false)
    }

    fn eof(&self) -> bool {
        self.pos >= self.code.len()
    }

    /// Parse items until `until` (consumed) or end of input. `until`
    /// is the closing brace of a `mod`/`impl` body, `None` at file
    /// level.
    fn items(&mut self, until: Option<char>) {
        while !self.eof() {
            if let Some(close) = until {
                if self.at_punct(close) {
                    self.bump();
                    return;
                }
            }
            self.item();
        }
    }

    fn item(&mut self) {
        let cfg = self.attributes();
        self.visibility();
        self.modifiers();
        if self.at_ident("struct") {
            self.struct_item(cfg);
        } else if self.at_ident("enum") {
            self.enum_item();
        } else if self.at_ident("impl") {
            self.impl_item(cfg);
        } else if self.at_ident("fn") {
            if let Some(f) = self.fn_item(cfg) {
                self.out.fns.push(f);
            }
        } else if self.at_ident("mod") {
            self.bump();
            if self
                .tok(0)
                .map(|t| t.kind == TokKind::Ident)
                .unwrap_or(false)
            {
                self.bump();
            }
            if self.at_punct('{') {
                self.bump();
                self.items(Some('}'));
            } else if self.at_punct(';') {
                self.bump();
            }
        } else if self.at_ident("trait") || self.at_ident("union") || self.at_ident("extern") {
            // Bounds/bodies are irrelevant to the rules; skip the
            // whole item by its brace group.
            self.bump();
            self.skip_to_body_or_semi();
        } else if self.at_ident("macro_rules") {
            self.bump();
            if self.at_punct('!') {
                self.bump();
            }
            if self
                .tok(0)
                .map(|t| t.kind == TokKind::Ident)
                .unwrap_or(false)
            {
                self.bump();
            }
            self.skip_group();
        } else if self.at_ident("use")
            || self.at_ident("type")
            || self.at_ident("static")
            || self.at_ident("const")
        {
            self.bump();
            self.skip_to_semi();
        } else if self.at_punct('{') || self.at_punct('(') || self.at_punct('[') {
            self.skip_group();
        } else if !self.eof() {
            self.bump();
        }
    }

    /// Consume leading attributes, returning the feature gated on by a
    /// plain positive `#[cfg(feature = "X")]` / `#[cfg(all(…))]` when
    /// one is present (negated `not(…)` forms return `None`).
    fn attributes(&mut self) -> Option<String> {
        let mut cfg = None;
        while self.at_punct('#') {
            let inner = self.tok(1).map(|t| t.is_punct('!')).unwrap_or(false);
            self.bump();
            if inner {
                self.bump();
            }
            if !self.at_punct('[') {
                continue;
            }
            // Scan the bracket group for `cfg(… feature = "X" …)`.
            let start = self.pos;
            self.skip_group();
            if inner {
                continue;
            }
            let group: Vec<&Tok> = self.code[start..self.pos]
                .iter()
                .map(|&i| &self.toks[i])
                .collect();
            let is_cfg = group.get(1).map(|t| t.is_ident("cfg")).unwrap_or(false);
            let negated = group.iter().any(|t| t.is_ident("not"));
            if is_cfg && !negated && cfg.is_none() {
                for w in group.windows(3) {
                    if w[0].is_ident("feature") && w[1].is_punct('=') && w[2].kind == TokKind::Str {
                        cfg = Some(w[2].str_content().to_string());
                        break;
                    }
                }
            }
        }
        cfg
    }

    /// Skip `pub`, `pub(crate)`, `pub(in …)`.
    fn visibility(&mut self) {
        if self.at_ident("pub") {
            self.bump();
            if self.at_punct('(') {
                self.skip_group();
            }
        }
    }

    /// Skip fn/item qualifiers that may precede the defining keyword.
    /// `const` is only a qualifier when `fn` follows — `const NAME:`
    /// stays for `item()` to route to the skip-to-semi arm.
    fn modifiers(&mut self) {
        loop {
            if self.at_ident("unsafe")
                || self.at_ident("async")
                || self.at_ident("default")
                || (self.at_ident("const")
                    && self.tok(1).map(|t| t.is_ident("fn")).unwrap_or(false))
            {
                self.bump();
            } else if self.at_ident("extern")
                && self.tok(1).map(|t| t.kind == TokKind::Str).unwrap_or(false)
                && self.tok(2).map(|t| t.is_ident("fn")).unwrap_or(false)
            {
                self.bump();
                self.bump();
            } else {
                return;
            }
        }
    }

    /// Skip one balanced `{}`/`()`/`[]` group (cursor on the opener);
    /// returns `(open, close)` raw indices. Anywhere else: bumps once.
    fn skip_group(&mut self) -> (usize, usize) {
        let open_raw = self.raw(0);
        let (open, close) = match self.tok(0) {
            Some(t) if t.is_punct('{') => ('{', '}'),
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            _ => {
                self.bump();
                return (open_raw, open_raw);
            }
        };
        let mut depth = 0i64;
        let mut close_raw = open_raw;
        while let Some(t) = self.tok(0) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    close_raw = self.raw(0);
                    self.bump();
                    break;
                }
            }
            close_raw = self.raw(0);
            self.bump();
        }
        (open_raw, close_raw)
    }

    /// Skip a `<…>` generics group (cursor on `<`), treating `->` as
    /// an arrow and balanced delimiter groups as opaque so const
    /// generic expressions and `Fn(…) -> T` bounds can't desync the
    /// angle depth.
    fn skip_generics(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.tok(0) {
            if t.is_punct('-') && self.tok(1).map(|n| n.is_punct('>')).unwrap_or(false) {
                self.bump();
                self.bump();
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                self.skip_group();
                continue;
            }
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skip to (and consume) the next `;` at group depth 0.
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.tok(0) {
            if t.is_punct(';') {
                self.bump();
                return;
            }
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                self.skip_group();
            } else if t.is_punct('<') {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
    }

    /// Skip an item of unknown shape: either a `{…}` body or a `;`.
    fn skip_to_body_or_semi(&mut self) {
        while let Some(t) = self.tok(0) {
            if t.is_punct(';') {
                self.bump();
                return;
            }
            if t.is_punct('{') {
                self.skip_group();
                return;
            }
            if t.is_punct('(') || t.is_punct('[') {
                self.skip_group();
            } else if t.is_punct('<') {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
    }

    fn struct_item(&mut self, cfg: Option<String>) {
        let line = self.tok(0).map(|t| t.line).unwrap_or(0);
        self.bump(); // struct
        let Some(name_tok) = self.tok(0) else { return };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        self.bump();
        if self.at_punct('<') {
            self.skip_generics();
        }
        if self.at_punct('(') {
            // Tuple struct: payload, optional where clause, `;`.
            self.skip_group();
            self.skip_to_semi();
            self.out.structs.push(StructItem {
                name,
                line,
                fields: Vec::new(),
                has_named_fields: false,
                cfg_feature: cfg,
            });
            return;
        }
        // Skip an optional where clause up to the body or `;`.
        while !self.eof() && !self.at_punct('{') && !self.at_punct(';') {
            if self.at_punct('<') {
                self.skip_generics();
            } else if self.at_punct('(') || self.at_punct('[') {
                self.skip_group();
            } else {
                self.bump();
            }
        }
        if self.at_punct(';') {
            self.bump(); // unit struct
            self.out.structs.push(StructItem {
                name,
                line,
                fields: Vec::new(),
                has_named_fields: false,
                cfg_feature: cfg,
            });
            return;
        }
        let mut fields = Vec::new();
        if self.at_punct('{') {
            self.bump();
            while !self.eof() && !self.at_punct('}') {
                let fcfg = self.attributes();
                self.visibility();
                let Some(t) = self.tok(0) else { break };
                if t.kind != TokKind::Ident {
                    self.bump();
                    continue;
                }
                let fname = t.text.clone();
                let fline = t.line;
                self.bump();
                if !self.at_punct(':') {
                    continue;
                }
                self.bump();
                let ty = self.scan_type();
                if self.at_punct(',') {
                    self.bump();
                }
                fields.push(Field {
                    name: fname,
                    ty,
                    line: fline,
                    cfg_feature: fcfg,
                });
            }
            if self.at_punct('}') {
                self.bump();
            }
        }
        self.out.structs.push(StructItem {
            name,
            line,
            fields,
            has_named_fields: true,
            cfg_feature: cfg,
        });
    }

    /// Scan a type up to a `,` or `}` at angle/group depth 0 (neither
    /// consumed). Renders the tokens space-joined.
    fn scan_type(&mut self) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut angle = 0i64;
        while let Some(t) = self.tok(0) {
            if angle == 0 && (t.is_punct(',') || t.is_punct('}')) {
                break;
            }
            if t.is_punct('-') && self.tok(1).map(|n| n.is_punct('>')).unwrap_or(false) {
                parts.push("->".into());
                self.bump();
                self.bump();
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                let start = self.pos;
                self.skip_group();
                for &i in &self.code[start..self.pos] {
                    parts.push(self.toks[i].text.clone());
                }
                continue;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
                if angle < 0 {
                    break;
                }
            }
            parts.push(t.text.clone());
            self.bump();
        }
        parts.join(" ")
    }

    fn enum_item(&mut self) {
        let line = self.tok(0).map(|t| t.line).unwrap_or(0);
        self.bump(); // enum
        let Some(name_tok) = self.tok(0) else { return };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        self.bump();
        if self.at_punct('<') {
            self.skip_generics();
        }
        while !self.eof() && !self.at_punct('{') && !self.at_punct(';') {
            if self.at_punct('<') {
                self.skip_generics();
            } else if self.at_punct('(') || self.at_punct('[') {
                self.skip_group();
            } else {
                self.bump();
            }
        }
        let mut variants = Vec::new();
        if self.at_punct('{') {
            self.bump();
            while !self.eof() && !self.at_punct('}') {
                self.attributes();
                let Some(t) = self.tok(0) else { break };
                if t.kind != TokKind::Ident {
                    self.bump();
                    continue;
                }
                variants.push(t.text.clone());
                self.bump();
                // Payload: tuple, struct-like, or a discriminant.
                if self.at_punct('(') || self.at_punct('{') {
                    self.skip_group();
                } else if self.at_punct('=') {
                    self.bump();
                    while !self.eof() && !self.at_punct(',') && !self.at_punct('}') {
                        if self.at_punct('(') || self.at_punct('[') || self.at_punct('{') {
                            self.skip_group();
                        } else {
                            self.bump();
                        }
                    }
                }
                if self.at_punct(',') {
                    self.bump();
                }
            }
            if self.at_punct('}') {
                self.bump();
            }
        } else if self.at_punct(';') {
            self.bump();
        }
        self.out.enums.push(EnumItem {
            name,
            line,
            variants,
        });
    }

    fn impl_item(&mut self, cfg: Option<String>) {
        let line = self.tok(0).map(|t| t.line).unwrap_or(0);
        self.bump(); // impl
        if self.at_punct('<') {
            self.skip_generics();
        }
        // The head: path idents at angle depth 0, `for` splitting the
        // trait from the self type, up to `where` or the body.
        let mut trait_name: Option<String> = None;
        let mut names: Vec<String> = Vec::new();
        while let Some(t) = self.tok(0) {
            if t.is_punct('{') {
                break;
            }
            if t.is_ident("for") {
                trait_name = names.last().cloned();
                names.clear();
                self.bump();
                continue;
            }
            if t.is_ident("where") {
                // Skip the clause to the body.
                while !self.eof() && !self.at_punct('{') {
                    if self.at_punct('<') {
                        self.skip_generics();
                    } else if self.at_punct('(') || self.at_punct('[') {
                        self.skip_group();
                    } else {
                        self.bump();
                    }
                }
                break;
            }
            if t.is_punct('<') {
                self.skip_generics();
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') {
                self.skip_group();
                continue;
            }
            if t.is_punct(';') {
                // `impl Trait for Type;` is not Rust; bail safely.
                self.bump();
                return;
            }
            if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("impl") {
                names.push(t.text.clone());
            }
            self.bump();
        }
        let self_ty = names.last().cloned().unwrap_or_default();
        let mut methods = Vec::new();
        if self.at_punct('{') {
            self.bump();
            while !self.eof() && !self.at_punct('}') {
                let mcfg = self.attributes();
                self.visibility();
                self.modifiers();
                if self.at_ident("fn") {
                    if let Some(f) = self.fn_item(mcfg) {
                        methods.push(f);
                    }
                } else if self.at_punct('{') {
                    self.skip_group();
                } else if self.at_ident("type") || self.at_ident("const") {
                    self.bump();
                    self.skip_to_semi();
                } else {
                    self.bump();
                }
            }
            if self.at_punct('}') {
                self.bump();
            }
        }
        self.out.impls.push(ImplItem {
            self_ty,
            trait_name,
            line,
            methods,
            cfg_feature: cfg,
        });
    }

    /// Parse a fn (cursor on the `fn` keyword): name, signature span,
    /// body span when present.
    fn fn_item(&mut self, cfg: Option<String>) -> Option<FnItem> {
        let sig_start = self.raw(0);
        let line = self.tok(0).map(|t| t.line).unwrap_or(0);
        self.bump(); // fn
        let name_tok = self.tok(0)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        let name = name_tok.text.clone();
        self.bump();
        if self.at_punct('<') {
            self.skip_generics();
        }
        if self.at_punct('(') {
            self.skip_group();
        }
        // Return type and where clause, up to the body or `;`.
        while !self.eof() && !self.at_punct('{') && !self.at_punct(';') {
            if self.at_punct('-') && self.tok(1).map(|n| n.is_punct('>')).unwrap_or(false) {
                self.bump();
                self.bump();
            } else if self.at_punct('<') {
                self.skip_generics();
            } else if self.at_punct('(') || self.at_punct('[') {
                self.skip_group();
            } else {
                self.bump();
            }
        }
        if self.at_punct(';') {
            let sig_end = self.raw(0);
            self.bump();
            return Some(FnItem {
                name,
                line,
                sig: (sig_start, sig_end),
                body: None,
                cfg_feature: cfg,
            });
        }
        let sig_end = self.raw(0);
        let body = if self.at_punct('{') {
            Some(self.skip_group())
        } else {
            None
        };
        Some(FnItem {
            name,
            line,
            sig: (sig_start, sig_end),
            body,
            cfg_feature: cfg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&lex(src))
    }

    #[test]
    fn named_struct_fields() {
        let p = parse(
            "pub struct S<O: Clone> where O: Default {\n    pub a: u64,\n    b: Vec<Option<u32>>,\n    c: [u64; 4],\n}",
        );
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "S");
        assert!(s.has_named_fields);
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(s.fields[1].ty.replace(' ', ""), "Vec<Option<u32>>");
        assert_eq!(s.fields[2].ty.replace(' ', ""), "[u64;4]");
    }

    #[test]
    fn tuple_and_unit_structs() {
        let p = parse("struct T(pub u32, String);\nstruct U;");
        assert_eq!(p.structs.len(), 2);
        assert!(!p.structs[0].has_named_fields);
        assert!(!p.structs[1].has_named_fields);
    }

    #[test]
    fn cfg_gated_field_and_struct() {
        let p = parse(
            "#[cfg(feature = \"obs\")]\nstruct G {\n    #[cfg(feature = \"obs\")]\n    x: u64,\n    #[cfg(not(feature = \"obs\"))]\n    y: u64,\n    z: u64,\n}",
        );
        let s = &p.structs[0];
        assert_eq!(s.cfg_feature.as_deref(), Some("obs"));
        assert_eq!(s.fields[0].cfg_feature.as_deref(), Some("obs"));
        assert_eq!(s.fields[1].cfg_feature, None); // negated
        assert_eq!(s.fields[2].cfg_feature, None);
    }

    #[test]
    fn impl_blocks_resolve_trait_and_self_type() {
        let p = parse(
            "impl<O: Clone> JsonCodec for crate::sweep::UnitSpan<O> {\n    fn to_json(&self) -> Value { Value::Null }\n    fn from_json(v: &Value) -> Result<Self, JsonError> { todo!() }\n}\nimpl Session<O> {\n    pub fn snapshot(&self) -> SessionSnapshot<O> { SessionSnapshot { a: 1 } }\n}",
        );
        assert_eq!(p.impls.len(), 2);
        assert_eq!(p.impls[0].trait_name.as_deref(), Some("JsonCodec"));
        assert_eq!(p.impls[0].self_ty, "UnitSpan");
        let m: Vec<&str> = p.impls[0].methods.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(m, ["to_json", "from_json"]);
        assert_eq!(p.impls[1].trait_name, None);
        assert_eq!(p.impls[1].self_ty, "Session");
        assert_eq!(p.impls[1].methods[0].name, "snapshot");
    }

    #[test]
    fn method_body_spans_cover_their_tokens() {
        let src = "impl A {\n    fn f(&self) -> u64 {\n        self.tally.hits += 1;\n        2\n    }\n}";
        let toks = lex(src);
        let p = parse_items(&toks);
        let m = &p.impls[0].methods[0];
        let (open, close) = m.body.expect("body");
        assert!(toks[open].is_punct('{') && toks[close].is_punct('}'));
        let span: Vec<&Tok> = toks[open..=close].iter().collect();
        assert!(span.iter().any(|t| t.is_ident("tally")));
        // The signature covers `fn f(&self) -> u64` and stops at the body.
        let sig: Vec<&Tok> = toks[m.sig.0..m.sig.1].iter().collect();
        assert!(sig.iter().any(|t| t.is_ident("u64")));
        assert!(!sig.iter().any(|t| t.is_ident("tally")));
    }

    #[test]
    fn enums_fns_mods_and_macros() {
        let p = parse(
            "mod inner {\n    pub enum E { A, B(u32), C { x: u64 }, D = 4 }\n    pub fn free<T: Into<u64>>(t: T) -> u64 { t.into() }\n}\nmacro_rules! m { ($x:expr) => { struct NotReal; } }\ntrait Tr { fn g(&self); }",
        );
        assert_eq!(p.enums.len(), 1);
        let v: Vec<&str> = p.enums[0].variants.iter().map(|s| s.as_str()).collect();
        assert_eq!(v, ["A", "B", "C", "D"]);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "free");
        // Macro bodies and traits must not leak phantom items.
        assert!(p.structs.iter().all(|s| s.name != "NotReal"));
    }

    #[test]
    fn fn_pointer_types_do_not_desync_angles() {
        let p = parse(
            "struct F {\n    cb: Box<dyn Fn(u32) -> Vec<u8>>,\n    next: Option<fn() -> u64>,\n}",
        );
        let s = &p.structs[0];
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].ty.replace(' ', ""), "Box<dynFn(u32)->Vec<u8>>");
    }

    #[test]
    fn unterminated_input_terminates() {
        for src in [
            "struct S { a: u64,",
            "impl X { fn f(",
            "enum E { A(",
            "fn f() -> Vec<",
        ] {
            let _ = parse(src); // must not hang or panic
        }
    }
}
