//! A small hand-rolled Rust lexer: comment-, string-, and
//! raw-string-aware, just enough structure for the lint rules.
//!
//! The lexer does not aim to be a full Rust front end. It produces a
//! flat token stream with line numbers, correctly skipping over the
//! three places where rule keywords could appear without meaning
//! anything: line/block comments (including nested block comments),
//! string literals (plain, byte, raw with arbitrary `#` fences), and
//! char literals. Everything the rules match on — identifiers,
//! punctuation, literal contents — comes out of this stream, so a
//! `HashMap` inside a doc comment or a raw string never trips a rule.

/// Token classes the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (includes raw identifiers, `r#type`).
    Ident,
    /// Lifetime, e.g. `'a` (without the quote in `text`? no — full lexeme).
    Lifetime,
    /// String literal: plain `"…"` or byte `b"…"`, escapes intact.
    Str,
    /// Raw string literal: `r"…"`, `r#"…"#`, `br#"…"#` with any fence.
    RawStr,
    /// Char or byte-char literal, e.g. `'x'`, `b'\n'`.
    Char,
    /// Numeric literal (integers, floats, with suffixes).
    Num,
    /// `// …` comment, text includes the slashes (doc comments too).
    LineComment,
    /// `/* … */` comment, nesting folded into one token.
    BlockComment,
    /// Single punctuation character (`{`, `}`, `!`, `.`, …).
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The full lexeme as it appears in the source.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// For `Str`/`RawStr` tokens: the literal's inner content with the
    /// quote/fence syntax stripped (escape sequences left as written).
    pub fn str_content(&self) -> &str {
        let mut s = self.text.as_str();
        // Strip prefixes: b, r, br (in that lexical order).
        s = s.strip_prefix('b').unwrap_or(s);
        s = s.strip_prefix('r').unwrap_or(s);
        let s = s.trim_matches('#');
        s.strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .unwrap_or(s)
    }

    /// True when this is a single-character punctuation token equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when this is an identifier token equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a flat token stream. Never fails: unterminated
/// constructs are closed at end of input (the rules run on whatever
/// was recognised, and rustc reports the real error).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(String::new(), line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string("b".into(), line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit("b".into(), line);
                }
                'b' if self.peek(1) == Some('r')
                    && matches!(self.peek(2), Some('"') | Some('#')) =>
                {
                    self.bump();
                    self.bump();
                    self.raw_string("br".into(), line);
                }
                'r' if matches!(self.peek(1), Some('"')) => {
                    self.bump();
                    self.raw_string("r".into(), line);
                }
                'r' if self.peek(1) == Some('#') => {
                    // Either a raw string fence `r#"…"#` or a raw
                    // identifier `r#type`.
                    let mut k = 1;
                    while self.peek(k) == Some('#') {
                        k += 1;
                    }
                    if self.peek(k) == Some('"') {
                        self.bump();
                        self.raw_string("r".into(), line);
                    } else {
                        // Raw identifier.
                        self.bump();
                        self.bump();
                        self.ident("r#".into(), line);
                    }
                }
                '\'' => self.quote(line),
                _ if is_ident_start(c) => self.ident(String::new(), line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.toks
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    fn string(&mut self, mut text: String, line: u32) {
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn raw_string(&mut self, mut text: String, line: u32) {
        // Positioned at the first `#` or the `"`.
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                // Need `fence` hashes to close.
                for k in 0..fence {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..fence {
                    text.push('#');
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::RawStr, text, line);
    }

    fn char_lit(&mut self, mut text: String, line: u32) {
        text.push('\'');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '\'' {
                break;
            }
        }
        self.push(TokKind::Char, text, line);
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime) from `'\n'` (char).
    fn quote(&mut self, line: u32) {
        match self.peek(1) {
            Some('\\') => self.char_lit(String::new(), line),
            Some(c) if is_ident_start(c) => {
                // Scan the identifier after the quote; a closing quote
                // right after makes it a char literal like 'a'.
                let mut k = 2;
                while self.peek(k).map(is_ident_continue).unwrap_or(false) {
                    k += 1;
                }
                if self.peek(k) == Some('\'') && k == 2 {
                    self.char_lit(String::new(), line);
                } else {
                    let mut text = String::from("'");
                    self.bump();
                    while self.peek(0).map(is_ident_continue).unwrap_or(false) {
                        text.push(self.bump().unwrap_or('\0'));
                    }
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            _ => self.char_lit(String::new(), line),
        }
    }

    fn ident(&mut self, mut text: String, line: u32) {
        while self.peek(0).map(is_ident_continue).unwrap_or(false) {
            text.push(self.bump().unwrap_or('\0'));
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while self.peek(0).map(is_ident_continue).unwrap_or(false) {
            text.push(self.bump().unwrap_or('\0'));
        }
        // Consume a decimal point only when a digit follows, so range
        // expressions like `0..n` stay punctuation.
        if self.peek(0) == Some('.') && self.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false) {
            text.push('.');
            self.bump();
            while self.peek(0).map(is_ident_continue).unwrap_or(false) {
                text.push(self.bump().unwrap_or('\0'));
            }
        }
        self.push(TokKind::Num, text, line);
    }
}

/// Per-token mask marking tokens inside test-only regions:
/// items under a `#[test]`-bearing attribute (`#[cfg(test)] mod`,
/// `#[test] fn`, `#[cfg(all(test, …))]`, …), from the item's opening
/// brace to its matching close. Comments are never marked.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut depth: i64 = 0;
    // Stack of brace depths at which a test item opened.
    let mut open_at: Vec<i64> = Vec::new();
    let mut pending_test = false;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            i += 1;
            continue;
        }
        if !open_at.is_empty() {
            mask[i] = true;
        }
        if t.is_punct('#') {
            // Attribute: `#[…]` or `#![…]`. Scan its bracket group for
            // the `test` identifier.
            let mut j = i + 1;
            if toks.get(j).map(|t| t.is_punct('!')).unwrap_or(false) {
                j += 1;
            }
            if toks.get(j).map(|t| t.is_punct('[')).unwrap_or(false) {
                let mut bd = 0i64;
                let mut saw_test = false;
                let mut k = j;
                while let Some(tk) = toks.get(k) {
                    if tk.is_punct('[') {
                        bd += 1;
                    } else if tk.is_punct(']') {
                        bd -= 1;
                        if bd == 0 {
                            break;
                        }
                    } else if tk.is_ident("test") {
                        saw_test = true;
                    }
                    k += 1;
                }
                if saw_test {
                    pending_test = true;
                    // Mark the attribute tokens themselves.
                    for m in mask.iter_mut().take(k + 1).skip(i) {
                        *m = true;
                    }
                }
                i = k + 1;
                continue;
            }
        }
        if t.is_punct('{') {
            if pending_test {
                open_at.push(depth);
                pending_test = false;
                mask[i] = true;
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if open_at.last() == Some(&depth) {
                mask[i] = true;
                open_at.pop();
            }
        } else if t.is_punct(';') && open_at.is_empty() {
            // `#[cfg(test)] mod tests;` or an attribute on a
            // brace-less item: nothing to mark beyond the item itself.
            pending_test = false;
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = kinds("let x = y.unwrap();");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
        assert_eq!(t[2], (TokKind::Punct, "=".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "unwrap"));
    }

    #[test]
    fn line_comment_hides_idents() {
        let t = lex("// HashMap lives here\nlet a = 1;");
        assert_eq!(t[0].kind, TokKind::LineComment);
        assert!(!t.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(t[1].line, 2);
    }

    #[test]
    fn doc_comment_is_a_comment() {
        // The real sim-cmp source says "Instantaneous" in a doc
        // comment; neither it nor a literal `Instant` in prose may
        // surface as an identifier token.
        let t = lex("/// Instant gratification, Instantaneous.\nfn f() {}");
        assert!(!t.iter().any(|t| t.is_ident("Instant")));
    }

    #[test]
    fn nested_block_comments_fold() {
        let t = lex("/* outer /* inner HashMap */ still comment */ fn f() {}");
        assert_eq!(t[0].kind, TokKind::BlockComment);
        assert!(t[0].text.contains("inner HashMap"));
        assert!(t.iter().any(|t| t.is_ident("fn")));
        assert!(!t.iter().any(|t| t.is_ident("HashMap")));
    }

    #[test]
    fn string_hides_idents_and_tracks_escapes() {
        let t = lex(r#"let s = "HashMap \" still a string"; let x = 1;"#);
        assert!(!t.iter().any(|t| t.is_ident("HashMap")));
        let s = t.iter().find(|t| t.kind == TokKind::Str).expect("str tok");
        assert!(s.str_content().contains("still a string"));
    }

    #[test]
    fn raw_string_with_hashmap_inside() {
        let t = lex(r###"let s = r#"use std::collections::HashMap;"#;"###);
        assert!(!t.iter().any(|t| t.is_ident("HashMap")));
        let s = t
            .iter()
            .find(|t| t.kind == TokKind::RawStr)
            .expect("raw str tok");
        assert!(s.str_content().contains("HashMap"));
    }

    #[test]
    fn raw_string_fence_with_inner_quote() {
        let t = lex(r####"r##"a "# b"## trailing"####);
        assert_eq!(t[0].kind, TokKind::RawStr);
        assert_eq!(t[0].str_content(), r##"a "# b"##);
        assert!(t.iter().any(|t| t.is_ident("trailing")));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let t = lex(r###"let a = b"HashMap"; let b = br#"HashSet"#;"###);
        assert!(!t.iter().any(|t| t.is_ident("HashMap")));
        assert!(!t.iter().any(|t| t.is_ident("HashSet")));
        assert_eq!(
            t.iter().filter(|t| t.kind == TokKind::Str).count()
                + t.iter().filter(|t| t.kind == TokKind::RawStr).count(),
            2
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn raw_identifier() {
        let t = lex("let r#type = 1;");
        assert!(t
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "r#type"));
    }

    #[test]
    fn numbers_and_ranges() {
        let t = kinds("for i in 0..10 { let f = 1.5e3; let h = 0xFF_u8; }");
        assert!(t.contains(&(TokKind::Num, "0".into())));
        assert!(t.contains(&(TokKind::Num, "10".into())));
        assert!(t.contains(&(TokKind::Num, "1.5e3".into())));
        assert!(t.contains(&(TokKind::Num, "0xFF_u8".into())));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src =
            "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn more_lib() {}";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let ident_masked = |name: &str| {
            toks.iter()
                .zip(&mask)
                .find(|(t, _)| t.is_ident(name))
                .map(|(_, m)| *m)
        };
        assert_eq!(ident_masked("lib_code"), Some(false));
        assert_eq!(ident_masked("helper"), Some(true));
        assert_eq!(ident_masked("more_lib"), Some(false));
    }

    #[test]
    fn test_mask_covers_test_fn_only() {
        let src = "#[test]\nfn t() { body(); }\nfn lib() { other(); }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let masked = |name: &str| {
            toks.iter()
                .zip(&mask)
                .find(|(t, _)| t.is_ident(name))
                .map(|(_, m)| *m)
        };
        assert_eq!(masked("body"), Some(true));
        assert_eq!(masked("other"), Some(false));
    }

    #[test]
    fn test_mask_handles_cfg_all_test() {
        let src = "#[cfg(all(test, feature = \"obs\"))]\nmod t { fn inner() {} }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let inner = toks
            .iter()
            .zip(&mask)
            .find(|(t, _)| t.is_ident("inner"))
            .map(|(_, m)| *m);
        assert_eq!(inner, Some(true));
    }

    #[test]
    fn unterminated_string_does_not_hang() {
        let t = lex("let s = \"unterminated");
        assert!(t.iter().any(|t| t.kind == TokKind::Str));
    }
}
