//! Workspace discovery: enumerate first-party crates and classify
//! their source files so rules can scope themselves (library code vs
//! bins/tests/benches, kernel crates vs harness).
//!
//! First-party means the root package plus everything under
//! `crates/*`. The `vendor/*` members are offline stand-ins for
//! external dependencies and are exempt by design — they model
//! third-party API surfaces, not this repo's code.

use std::fs;
use std::path::{Path, PathBuf};

use crate::manifest::Manifest;

/// How a source file participates in the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` — the full rule set applies.
    Lib,
    /// Binary targets (`src/bin/*`, `src/main.rs`) — panic-audit exempt.
    Bin,
    /// Integration tests under `tests/`.
    Test,
    /// Benches under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

/// One source file, read into memory.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-root-relative path, `/`-separated, for display.
    pub rel: String,
    /// Build role of the file.
    pub kind: FileKind,
    /// Full file contents.
    pub text: String,
}

/// A first-party crate with its manifest and sources.
#[derive(Debug)]
pub struct CrateInfo {
    /// `[package] name` from the manifest.
    pub name: String,
    /// Crate directory relative to the workspace root (`.` for root).
    pub rel_dir: String,
    /// Absolute crate directory.
    pub dir: PathBuf,
    /// Parsed manifest.
    pub manifest: Manifest,
    /// All discovered `.rs` sources.
    pub files: Vec<SourceFile>,
}

impl CrateInfo {
    /// Kernel crates: the simulation substrate, where wall-clock time
    /// is banned. Keyed by naming convention so future `sim-*` crates
    /// inherit the rule automatically.
    pub fn is_kernel(&self) -> bool {
        self.name.starts_with("sim-")
    }

    /// Key-bearing crates: where content keys are constructed and the
    /// fragment registry applies.
    pub fn is_key_bearing(&self) -> bool {
        self.name.contains("harness")
    }
}

/// A discovered workspace: root path plus first-party crates.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// First-party crates, in deterministic (path) order.
    pub crates: Vec<CrateInfo>,
    /// The root workspace manifest, when one exists.
    pub root_manifest: Option<Manifest>,
}

/// Discover the workspace rooted at `root`.
///
/// With a root `Cargo.toml` declaring `[workspace] members`, the
/// first-party set is the root package (if any) plus members under
/// `crates/` (globs expanded). Without one — the fixture layout —
/// every direct subdirectory containing a `Cargo.toml` is a crate.
pub fn discover(root: &Path) -> Result<Workspace, String> {
    let root = root
        .canonicalize()
        .map_err(|e| format!("{}: {e}", root.display()))?;
    let root_toml = root.join("Cargo.toml");
    let mut crates = Vec::new();
    let mut root_manifest = None;
    if root_toml.is_file() {
        let text =
            fs::read_to_string(&root_toml).map_err(|e| format!("{}: {e}", root_toml.display()))?;
        let manifest = Manifest::parse(&text);
        let members = manifest.string_array("workspace", "members");
        let mut dirs: Vec<String> = Vec::new();
        if manifest.package_name().is_some() {
            dirs.push(".".to_string());
        }
        for member in members {
            if let Some(prefix) = member.strip_suffix("/*") {
                if !prefix.starts_with("crates") {
                    continue; // vendor/* and friends: not first-party
                }
                let mut found: Vec<String> = Vec::new();
                let base = root.join(prefix);
                let entries =
                    fs::read_dir(&base).map_err(|e| format!("{}: {e}", base.display()))?;
                for entry in entries.flatten() {
                    let p = entry.path();
                    if p.join("Cargo.toml").is_file() {
                        if let Some(name) = p.file_name().and_then(|n| n.to_str()) {
                            found.push(format!("{prefix}/{name}"));
                        }
                    }
                }
                found.sort();
                dirs.extend(found);
            } else if member.starts_with("crates/") || member == "." {
                dirs.push(member);
            }
        }
        for rel in dirs {
            crates.push(load_crate(&root, &rel)?);
        }
        root_manifest = Some(manifest);
    } else {
        // Fixture layout: a bare directory of crates.
        let mut found: Vec<String> = Vec::new();
        let entries = fs::read_dir(&root).map_err(|e| format!("{}: {e}", root.display()))?;
        for entry in entries.flatten() {
            let p = entry.path();
            if p.join("Cargo.toml").is_file() {
                if let Some(name) = p.file_name().and_then(|n| n.to_str()) {
                    found.push(name.to_string());
                }
            }
        }
        found.sort();
        for rel in found {
            crates.push(load_crate(&root, &rel)?);
        }
    }
    Ok(Workspace {
        root,
        crates,
        root_manifest,
    })
}

fn load_crate(root: &Path, rel: &str) -> Result<CrateInfo, String> {
    let dir = if rel == "." {
        root.to_path_buf()
    } else {
        root.join(rel)
    };
    let toml_path = dir.join("Cargo.toml");
    let text =
        fs::read_to_string(&toml_path).map_err(|e| format!("{}: {e}", toml_path.display()))?;
    let manifest = Manifest::parse(&text);
    let name = manifest
        .package_name()
        .ok_or_else(|| format!("{}: missing [package] name", toml_path.display()))?
        .to_string();
    let mut files = Vec::new();
    for (sub, kind) in [
        ("src", FileKind::Lib),
        ("tests", FileKind::Test),
        ("benches", FileKind::Bench),
        ("examples", FileKind::Example),
    ] {
        collect_rs(root, &dir.join(sub), kind, &mut files)?;
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(CrateInfo {
        name,
        rel_dir: rel.to_string(),
        dir,
        manifest,
        files,
    })
}

/// Recursively collect `.rs` files under `dir`, reclassifying
/// `src/bin/**` and `src/main.rs` as binaries.
fn collect_rs(
    root: &Path,
    dir: &Path,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            let sub_kind =
                if kind == FileKind::Lib && p.file_name().and_then(|n| n.to_str()) == Some("bin") {
                    FileKind::Bin
                } else {
                    kind
                };
            collect_rs(root, &p, sub_kind, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            let file_kind = if kind == FileKind::Lib
                && p.file_name().and_then(|n| n.to_str()) == Some("main.rs")
            {
                FileKind::Bin
            } else {
                kind
            };
            let text = fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                rel,
                kind: file_kind,
                text,
            });
        }
    }
    Ok(())
}
