//! Sweep orchestration: expand a spec, serve cached jobs from the
//! store, run the rest on the work-stealing executor, persist as they
//! finish.

use crate::exec::{self, ExecEvent};
use crate::spec::{SweepJob, SweepSpec};
use crate::store::{ResultStore, StoreError};
use snug_experiments::{run_combo, ComboResult};
use std::sync::Mutex;

/// Progress events streamed while a sweep runs.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepEvent {
    /// The sweep expanded into jobs: `(total, cache hits)`.
    Planned {
        /// Total jobs in the spec.
        total: usize,
        /// Jobs already present in the store.
        hits: usize,
    },
    /// A combo simulation started.
    JobStarted {
        /// Combo label.
        label: String,
    },
    /// A combo simulation finished: `(label, done, to_run)`.
    JobFinished {
        /// Combo label.
        label: String,
        /// Executed so far (cache hits excluded).
        done: usize,
        /// Total to execute this sweep.
        to_run: usize,
    },
}

/// One job's outcome within a [`SweepOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Content key of the job.
    pub key: String,
    /// Whether the result came from the store.
    pub from_cache: bool,
    /// The result (cached or fresh — indistinguishable by construction).
    pub result: ComboResult,
}

/// The outcome of a sweep, in spec (Table 8) order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Per-job outcomes.
    pub jobs: Vec<JobOutcome>,
    /// Number of jobs served from the store.
    pub cache_hits: usize,
    /// Number of jobs executed fresh.
    pub executed: usize,
}

impl SweepOutcome {
    /// The results alone, in spec order.
    pub fn results(&self) -> Vec<ComboResult> {
        self.jobs.iter().map(|j| j.result.clone()).collect()
    }
}

/// Run `spec` against `store`: cached jobs are served, missing jobs run
/// in parallel on up to `threads` workers (0 = all CPUs) and are
/// appended to the store as they complete.
pub fn run_sweep(
    spec: &SweepSpec,
    store: &mut ResultStore,
    threads: usize,
    mut progress: impl FnMut(SweepEvent) + Send,
) -> Result<SweepOutcome, StoreError> {
    let jobs = spec.jobs();
    let (cached, pending): (Vec<&SweepJob>, Vec<&SweepJob>) =
        jobs.iter().partition(|j| store.get(&j.key).is_some());
    progress(SweepEvent::Planned {
        total: jobs.len(),
        hits: cached.len(),
    });

    // Execute the missing jobs; results land in `pending` order. Each
    // result is appended to the store *as its job finishes* (under the
    // store lock), so an interrupted sweep keeps everything completed
    // so far.
    let progress_cell = Mutex::new(&mut progress);
    let store_cell = Mutex::new(&mut *store);
    let first_store_error: Mutex<Option<StoreError>> = Mutex::new(None);
    let fresh: Vec<ComboResult> = exec::run(
        pending.len(),
        threads,
        |i| {
            let job = pending[i];
            let result = run_combo(&job.combo, &job.config);
            let inserted = store_cell.lock().expect("store poisoned").insert(
                job.key.clone(),
                format!("{:?} | {:?}", job.combo, job.config),
                result.clone(),
            );
            if let Err(e) = inserted {
                first_store_error
                    .lock()
                    .expect("error slot poisoned")
                    .get_or_insert(e);
            }
            result
        },
        |event| {
            let mut p = progress_cell.lock().expect("progress poisoned");
            match event {
                ExecEvent::Started { index, .. } => (p)(SweepEvent::JobStarted {
                    label: pending[index].combo.label(),
                }),
                ExecEvent::Finished { index, done, total } => (p)(SweepEvent::JobFinished {
                    label: pending[index].combo.label(),
                    done,
                    to_run: total,
                }),
            }
        },
    );
    let _ = store_cell; // release the &mut store reborrow
    if let Some(e) = first_store_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }

    // Assemble outcomes in spec order, now that everything is stored.
    let executed: std::collections::HashSet<&str> =
        pending.iter().map(|j| j.key.as_str()).collect();
    let outcomes = jobs
        .iter()
        .map(|job| JobOutcome {
            key: job.key.clone(),
            from_cache: !executed.contains(job.key.as_str()),
            result: store
                .get(&job.key)
                .expect("job just stored or cached")
                .clone(),
        })
        .collect::<Vec<_>>();

    Ok(SweepOutcome {
        cache_hits: outcomes.iter().filter(|o| o.from_cache).count(),
        executed: fresh.len(),
        jobs: outcomes,
    })
}

/// Look up every job of `spec` in `store` without running anything.
/// Returns `None` if any job is missing (i.e. `snug sweep` has not been
/// run for this spec yet).
pub fn cached_results(spec: &SweepSpec, store: &ResultStore) -> Option<Vec<ComboResult>> {
    spec.jobs()
        .iter()
        .map(|j| store.get(&j.key).cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BudgetPreset;
    use snug_workloads::ComboClass;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny-c1".into(),
            classes: vec![ComboClass::C1],
            combos: Vec::new(),
            budget: BudgetPreset::Custom {
                warmup_cycles: 10_000,
                measure_cycles: 60_000,
            },
        }
    }

    fn tmp_store(tag: &str) -> (std::path::PathBuf, ResultStore) {
        let dir =
            std::env::temp_dir().join(format!("snug-sweep-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn second_run_is_all_cache_hits_and_identical() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("rerun");

        let first = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(first.executed, 3, "C1 has three combos");
        assert_eq!(first.cache_hits, 0);

        // Re-open from disk to prove persistence, then re-run.
        let mut reopened = ResultStore::open(&dir).unwrap();
        let second = run_sweep(&spec, &mut reopened, 2, |_| {}).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.cache_hits, 3);
        assert_eq!(
            second.results(),
            first.results(),
            "bit-identical from cache"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_change_invalidates_the_cache() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("invalidate");
        run_sweep(&spec, &mut store, 0, |_| {}).unwrap();

        let mut bigger = spec.clone();
        bigger.budget = BudgetPreset::Custom {
            warmup_cycles: 10_000,
            measure_cycles: 90_000,
        };
        let outcome = run_sweep(&bigger, &mut store, 0, |_| {}).unwrap();
        assert_eq!(outcome.cache_hits, 0, "different budget, different keys");
        assert_eq!(outcome.executed, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn events_report_plan_and_completion() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("events");
        let mut planned = None;
        let mut finished = 0usize;
        run_sweep(&spec, &mut store, 1, |e| match e {
            SweepEvent::Planned { total, hits } => planned = Some((total, hits)),
            SweepEvent::JobFinished { .. } => finished += 1,
            SweepEvent::JobStarted { .. } => {}
        })
        .unwrap();
        assert_eq!(planned, Some((3, 0)));
        assert_eq!(finished, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_results_requires_a_complete_sweep() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("partial");
        assert!(cached_results(&spec, &store).is_none(), "empty store");
        run_sweep(&spec, &mut store, 0, |_| {}).unwrap();
        let cached = cached_results(&spec, &store).unwrap();
        assert_eq!(cached.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
