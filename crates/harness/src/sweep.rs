//! Sweep orchestration: expand a spec into per-(combo, scheme point)
//! unit jobs, serve cached units from the store, migrate what a v1
//! store can still prove, run the rest on the work-stealing executor,
//! persist as they finish, and assemble per-combo results.

use crate::exec::{self, ExecEvent};
use crate::hash::content_key;
use crate::spec::{
    legacy_combo_key, unit_key_phased, ComboJob, SweepSpec, UnitJob, SCHEMA_VERSION,
};
use crate::store::{ResultStore, StoreError};
use snug_experiments::{
    assemble_combo, best_cc_index, pace_of, run_cc_points_shared_phased, run_point_paced,
    run_point_phased, ComboResult, Pace, SchemePoint, SchemeRun,
};
use std::sync::Mutex;
use std::time::Instant;

/// Progress events streamed while a sweep runs.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepEvent {
    /// The sweep expanded into unit jobs.
    Planned {
        /// Total unit jobs in the spec.
        total: usize,
        /// Units already present in the store (including migrated ones).
        hits: usize,
        /// Of the hits, units synthesised from v1 combo entries.
        migrated: usize,
    },
    /// A unit simulation started.
    JobStarted {
        /// Unit label (`"ammp+parser+swim+mesa [cc@50%]"`).
        label: String,
    },
    /// A unit simulation finished.
    JobFinished {
        /// Unit label.
        label: String,
        /// Executed so far (cache hits excluded).
        done: usize,
        /// Total to execute this sweep.
        to_run: usize,
        /// Wall-clock telemetry for the piece that just finished.
        span: UnitSpan,
    },
}

/// Wall-clock telemetry for one executed piece of a sweep: how long the
/// piece waited for a worker, how long it simulated, and how much
/// simulated work that wall time bought. Recorded by [`run_unit_jobs`]
/// around every executed piece (cache hits record nothing — they
/// cost no wall time worth charging), surfaced on
/// [`SweepEvent::JobFinished`], and persisted in the store as its own
/// record kind so `snug sweep` footers and later tooling can aggregate
/// throughput across sweeps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitSpan {
    /// Label of the executed piece (same shape as the progress lines).
    pub label: String,
    /// Nanoseconds between sweep submission and a worker picking the
    /// piece up.
    pub queue_nanos: u64,
    /// Nanoseconds of wall time the piece spent simulating.
    pub wall_nanos: u64,
    /// Simulated cycles the piece covered (warm-up + measured window,
    /// summed over every member unit).
    pub sim_cycles: u64,
    /// Instructions retired over the measured windows, reconstructed
    /// from the per-core IPCs each member unit reported.
    pub instructions: u64,
}

impl UnitSpan {
    /// Simulated cycles per wall-clock second (0 when nothing was
    /// timed).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.sim_cycles as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// Retired instructions per wall-clock second (0 when nothing was
    /// timed).
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.instructions as f64 / (self.wall_nanos as f64 / 1e9)
    }
}

/// One unit job's outcome within a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitOutcome {
    /// Content key of the unit job.
    pub key: String,
    /// Whether the result came from the store (fresh runs and cached
    /// results are indistinguishable by construction).
    pub from_cache: bool,
    /// The raw per-core IPCs.
    pub run: SchemeRun,
}

/// One combo's assembled outcome within a [`SweepOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComboOutcome {
    /// Combo label.
    pub label: String,
    /// Whether every unit of this combo was served from the store.
    pub from_cache: bool,
    /// The assembled five-scheme result.
    pub result: ComboResult,
}

/// The outcome of a sweep, in spec (Table 8) order. Counts are at unit
/// granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Per-combo assembled outcomes.
    pub combos: Vec<ComboOutcome>,
    /// Unit jobs served from the store (including migrated units).
    pub cache_hits: usize,
    /// Of the cache hits, units synthesised from v1 combo entries.
    pub migrated: usize,
    /// Unit jobs executed fresh.
    pub executed: usize,
    /// Cycles actually simulated across all units (warm-up + measured;
    /// early-stopped units count their recorded stop cycle, cached ones
    /// included).
    pub simulated_cycles: u64,
    /// Cycles the fixed budget would have simulated for the same units
    /// (warm-up + full measured window each). The gap is what
    /// convergence-based early exit saved.
    pub budgeted_cycles: u64,
}

impl SweepOutcome {
    /// The assembled results alone, in spec order.
    pub fn results(&self) -> Vec<ComboResult> {
        self.combos.iter().map(|c| c.result.clone()).collect()
    }
}

/// Migrate what a v1 store entry for `job`'s combo can still prove into
/// v2 unit entries: the L2P / L2S / DSR / SNUG points carry their full
/// per-core IPCs in a v1 `ComboResult`, and the winning CC point is
/// recoverable via [`best_cc_index`] — the same rule result assembly
/// uses, so re-assembly re-selects the identical point. The four losing
/// CC points are not reconstructible and stay pending. Returns the
/// number of units migrated.
fn migrate_v1_units(job: &ComboJob, store: &mut ResultStore) -> Result<usize, StoreError> {
    // v1 entries only ever described the stationary canonical
    // workload; a shifted combo's units must never be served from them.
    if job.units.iter().any(|u| u.phase.is_some()) {
        return Ok(0);
    }
    let legacy_key = legacy_combo_key(&job.combo, &job.config);
    let Some(old) = store.get_legacy_combo(&legacy_key).cloned() else {
        return Ok(0);
    };
    let best_cc_p = best_cc_index(&old.cc_sweep).map(|i| old.cc_sweep[i].0);
    let mut migrated = 0;
    for unit in &job.units {
        if unit.shared_warmup {
            // Shared-warm-up keys describe a different warm-up
            // semantics; canonical v1 values must not masquerade as
            // them.
            continue;
        }
        if store.get_unit(&unit.key).is_some() {
            continue;
        }
        let ipcs = match unit.point {
            SchemePoint::L2p => Some(old.baseline_ipcs.clone()),
            SchemePoint::L2s => scheme_ipcs(&old, "L2S"),
            SchemePoint::Dsr => scheme_ipcs(&old, "DSR"),
            SchemePoint::Snug => scheme_ipcs(&old, "SNUG"),
            SchemePoint::Cc { spill_probability } if Some(spill_probability) == best_cc_p => {
                scheme_ipcs(&old, "CC(Best)")
            }
            SchemePoint::Cc { .. } => None,
        };
        if let Some(ipcs) = ipcs {
            store.insert_unit(
                unit.key.clone(),
                format!("migrated from v1 entry {legacy_key}"),
                SchemeRun {
                    scheme: unit.point.label(),
                    ipcs,
                    measured_cycles: None,
                    stop_reason: None,
                    plateaus: Vec::new(),
                },
            )?;
            migrated += 1;
        }
    }
    Ok(migrated)
}

fn scheme_ipcs(result: &ComboResult, scheme: &str) -> Option<Vec<f64>> {
    result
        .schemes
        .iter()
        .find(|s| s.scheme == scheme)
        .map(|s| s.ipcs.clone())
}

/// One schedulable piece of pending work: a single unit simulation
/// (optionally paced to a fixed measured window a cached baseline set),
/// a combo's pending shared-warm-up CC points (which run together so
/// they share one warm-up snapshot — paced too when the combo's
/// converged baseline is already known), or a converged-plan combo
/// whose baseline is itself pending — the L2P unit runs the stop policy
/// first and every sibling then measures over the window it settled on.
enum ExecUnit<'a> {
    Single(&'a UnitJob),
    Paced(&'a UnitJob, Pace),
    CcShared(Vec<&'a UnitJob>, Option<Pace>),
    PacedCombo(Vec<&'a UnitJob>),
}

impl ExecUnit<'_> {
    fn label(&self) -> String {
        match self {
            ExecUnit::Single(job) => job.label(),
            ExecUnit::Paced(job, _) => format!("{} [paced]", job.label()),
            ExecUnit::CcShared(jobs, pace) => format!(
                "{} [cc sweep x{}, shared warmup{}]",
                jobs[0].combo.label(),
                jobs.len(),
                if pace.is_some() { ", paced" } else { "" },
            ),
            ExecUnit::PacedCombo(jobs) => format!(
                "{} [x{}, baseline-paced]",
                jobs[0].combo.label(),
                jobs.len()
            ),
        }
    }

    /// Simulate and return every (job, result) pair of this piece.
    fn run(&self) -> Vec<(&UnitJob, SchemeRun)> {
        match self {
            ExecUnit::Single(job) => {
                vec![(
                    *job,
                    run_point_phased(&job.combo, &job.point, &job.config, job.phase.as_ref()),
                )]
            }
            ExecUnit::Paced(job, pace) => {
                vec![(
                    *job,
                    run_point_paced(
                        &job.combo,
                        &job.point,
                        &job.config,
                        pace,
                        job.phase.as_ref(),
                    ),
                )]
            }
            ExecUnit::CcShared(jobs, pace) => run_cc_family(jobs, pace.as_ref()),
            ExecUnit::PacedCombo(jobs) => {
                let baseline_job = jobs
                    .iter()
                    .find(|j| j.point == SchemePoint::L2p)
                    .expect("paced combos include their pending baseline");
                let cfg = &baseline_job.config;
                let phase = baseline_job.phase.as_ref();
                let baseline = run_point_phased(&baseline_job.combo, &SchemePoint::L2p, cfg, phase);
                let pace = pace_of(&baseline, cfg);
                // Shared-warm-up CC members keep their one-snapshot
                // semantics inside a paced combo: they run as one
                // family over the baseline's window.
                let cc_shared: Vec<&UnitJob> =
                    jobs.iter().copied().filter(|j| j.shared_warmup).collect();
                let mut results: Vec<(&UnitJob, SchemeRun)> = jobs
                    .iter()
                    .filter(|j| !j.shared_warmup)
                    .map(|job| {
                        if job.point == SchemePoint::L2p {
                            (*job, baseline.clone())
                        } else {
                            (
                                *job,
                                run_point_paced(&job.combo, &job.point, cfg, &pace, phase),
                            )
                        }
                    })
                    .collect();
                if !cc_shared.is_empty() {
                    results.extend(run_cc_family(&cc_shared, Some(&pace)));
                }
                results
            }
        }
    }
}

/// Run a shared-warm-up CC family (optionally baseline-paced) and pair
/// each result back with its job.
fn run_cc_family<'a>(jobs: &[&'a UnitJob], pace: Option<&Pace>) -> Vec<(&'a UnitJob, SchemeRun)> {
    let points: Vec<SchemePoint> = jobs.iter().map(|j| j.point).collect();
    run_cc_points_shared_phased(
        &jobs[0].combo,
        &points,
        &jobs[0].config,
        jobs[0].phase.as_ref(),
        pace,
    )
    .into_iter()
    .zip(jobs.iter())
    .map(|((point, run), job)| {
        debug_assert_eq!(point, job.point);
        (*job, run)
    })
    .collect()
}

/// Group pending jobs into schedulable pieces:
///
/// * shared-warm-up CC units batch per (combo, configuration, phase) —
///   a family shares one warm-up, so every member must describe the
///   same simulation inputs — in first-appearance order; under an
///   early-exit plan with a cached baseline, the family runs paced to
///   the baseline's window (the `--shared-warmup --until-converged`
///   composition);
/// * other early-exit units batch per (combo, configuration, phase)
///   around their pending L2P baseline ([`ExecUnit::PacedCombo`]);
///   when the baseline is already in the store, its recorded window
///   paces each pending sibling individually ([`ExecUnit::Paced`]),
///   keeping unit granularity (a scheme-parameter edit re-runs that
///   scheme's units in parallel, paced by the cached baselines);
/// * everything else runs alone.
fn plan_exec_units<'a>(pending: &[&'a UnitJob], store: &ResultStore) -> Vec<ExecUnit<'a>> {
    let mut units: Vec<ExecUnit<'_>> = Vec::new();
    let mut family_index: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    let family_tag = |kind: &str, job: &UnitJob| {
        format!(
            "{kind}|{:?}|{:?}|{:?}",
            job.combo,
            job.config,
            job.phase.as_ref().map(|p| p.fingerprint())
        )
    };
    for job in pending {
        let cached_pace = job.config.plan.can_stop_early().then(|| {
            let baseline_key = unit_key_phased(
                &job.combo,
                &SchemePoint::L2p,
                &job.config,
                false,
                job.phase.as_ref(),
            );
            store
                .get_unit(&baseline_key)
                .map(|baseline| pace_of(baseline, &job.config))
        });
        if job.shared_warmup && matches!(job.point, SchemePoint::Cc { .. }) {
            match cached_pace {
                // Early-exit plan, baseline still pending: the CC
                // family joins the combo's baseline-paced piece.
                Some(None) => {
                    let combo = family_tag("paced", job);
                    match family_index.get(&combo) {
                        Some(&i) => match &mut units[i] {
                            ExecUnit::PacedCombo(jobs) => jobs.push(job),
                            _ => unreachable!("family index points at a paced combo"),
                        },
                        None => {
                            family_index.insert(combo, units.len());
                            units.push(ExecUnit::PacedCombo(vec![job]));
                        }
                    }
                }
                // Fixed plan (None) or cached baseline (Some(Some)):
                // one shared-warm-up family, paced if known.
                pace => {
                    let pace = pace.flatten();
                    let combo = family_tag("cc", job);
                    match family_index.get(&combo) {
                        Some(&i) => match &mut units[i] {
                            ExecUnit::CcShared(jobs, _) => jobs.push(job),
                            _ => unreachable!("family index points at a CC family"),
                        },
                        None => {
                            family_index.insert(combo, units.len());
                            units.push(ExecUnit::CcShared(vec![job], pace));
                        }
                    }
                }
            }
        } else if let Some(pace) = cached_pace {
            if let Some(pace) = pace {
                units.push(ExecUnit::Paced(job, pace));
                continue;
            }
            let combo = family_tag("paced", job);
            match family_index.get(&combo) {
                Some(&i) => match &mut units[i] {
                    ExecUnit::PacedCombo(jobs) => jobs.push(job),
                    _ => unreachable!("family index points at a paced combo"),
                },
                None => {
                    family_index.insert(combo, units.len());
                    units.push(ExecUnit::PacedCombo(vec![job]));
                }
            }
        } else {
            units.push(ExecUnit::Single(job));
        }
    }
    // A paced combo whose baseline is neither cached nor among the
    // pending jobs (a caller-supplied subset) cannot be paced; its
    // members fall back to independent converged runs — shared-warm-up
    // CC members still batch as one (unpaced) family.
    units
        .into_iter()
        .flat_map(|unit| match unit {
            ExecUnit::PacedCombo(jobs) if !jobs.iter().any(|j| j.point == SchemePoint::L2p) => {
                let (cc_shared, rest): (Vec<&UnitJob>, Vec<&UnitJob>) =
                    jobs.into_iter().partition(|j| j.shared_warmup);
                let mut out: Vec<ExecUnit<'_>> = rest.into_iter().map(ExecUnit::Single).collect();
                if !cc_shared.is_empty() {
                    out.push(ExecUnit::CcShared(cc_shared, None));
                }
                out
            }
            other => vec![other],
        })
        .collect()
}

/// Content key for the span record of the piece that executed the
/// member units with these keys. Derived from the member unit keys, so
/// re-running the same piece supersedes its previous span (newest
/// telemetry wins under the store's gc rule) instead of accumulating.
fn span_key(member_keys: &[&str]) -> String {
    content_key(&format!("{SCHEMA_VERSION}|span|{}", member_keys.join("+")))
}

/// Run `jobs` against `store`: cached units are served, missing units
/// run in parallel on up to `threads` workers (0 = all CPUs) and are
/// appended to the store as they complete. Shared-warm-up CC units of
/// one combo execute as a single piece around one warm-up snapshot.
/// Outcomes return in job order. This is the engine under
/// [`run_sweep`]; tests drive it directly to exercise ad-hoc
/// configurations.
pub fn run_unit_jobs(
    jobs: &[UnitJob],
    store: &mut ResultStore,
    threads: usize,
    progress: &mut (impl FnMut(SweepEvent) + Send),
) -> Result<Vec<UnitOutcome>, StoreError> {
    let submitted = Instant::now();
    let pending: Vec<&UnitJob> = jobs
        .iter()
        .filter(|j| store.get_unit(&j.key).is_none())
        .collect();
    let exec_units = plan_exec_units(&pending, store);

    // Execute the missing pieces; each result is appended to the store
    // *as its piece finishes* (under the store lock), so an interrupted
    // sweep keeps everything completed so far. Each piece's span slot is
    // filled inside the job closure, which the executor completes before
    // emitting `Finished` — the event handler can therefore take it.
    let progress_cell = Mutex::new(&mut *progress);
    let store_cell = Mutex::new(&mut *store);
    let first_store_error: Mutex<Option<StoreError>> = Mutex::new(None);
    let spans: Vec<Mutex<Option<UnitSpan>>> = exec_units.iter().map(|_| Mutex::new(None)).collect();
    exec::run(
        exec_units.len(),
        threads,
        |i| {
            let picked = Instant::now();
            let results = exec_units[i].run();
            let wall_nanos = picked.elapsed().as_nanos() as u64;
            let mut span = UnitSpan {
                label: exec_units[i].label(),
                queue_nanos: picked.duration_since(submitted).as_nanos() as u64,
                wall_nanos,
                sim_cycles: 0,
                instructions: 0,
            };
            let mut member_keys: Vec<&str> = Vec::with_capacity(results.len());
            for (job, run) in &results {
                let plan = job.config.plan;
                let measured = run.measured_cycles.unwrap_or(plan.measure_cycles());
                span.sim_cycles += plan.warmup_cycles + measured;
                span.instructions +=
                    (run.ipcs.iter().sum::<f64>() * measured as f64).round() as u64;
                member_keys.push(job.key.as_str());
            }
            for (job, run) in results {
                let mode = if job.shared_warmup {
                    " | shared-warmup"
                } else {
                    ""
                };
                let phase = job
                    .phase
                    .as_ref()
                    .map(|p| format!(" | phase={}", p.fingerprint()))
                    .unwrap_or_default();
                let inputs = format!(
                    "{:?} | {} | {:?}{mode}{phase}",
                    job.combo,
                    job.point.label(),
                    job.config
                );
                let inserted = store_cell.lock().expect("store poisoned").insert_unit(
                    job.key.clone(),
                    inputs,
                    run,
                );
                if let Err(e) = inserted {
                    first_store_error
                        .lock()
                        .expect("error slot poisoned")
                        .get_or_insert(e);
                }
            }
            let span_key = span_key(&member_keys);
            let inserted = store_cell.lock().expect("store poisoned").insert_span(
                span_key,
                format!("span | {}", span.label),
                span.clone(),
            );
            if let Err(e) = inserted {
                first_store_error
                    .lock()
                    .expect("error slot poisoned")
                    .get_or_insert(e);
            }
            *spans[i].lock().expect("span slot poisoned") = Some(span);
        },
        |event| {
            let mut p = progress_cell.lock().expect("progress poisoned");
            match event {
                ExecEvent::Started { index, .. } => (p)(SweepEvent::JobStarted {
                    label: exec_units[index].label(),
                }),
                ExecEvent::Finished { index, done, total } => (p)(SweepEvent::JobFinished {
                    label: exec_units[index].label(),
                    done,
                    to_run: total,
                    span: spans[index]
                        .lock()
                        .expect("span slot poisoned")
                        .take()
                        .unwrap_or_default(),
                }),
            }
        },
    );
    let _ = store_cell; // release the &mut store reborrow
    if let Some(e) = first_store_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }

    // Assemble outcomes in job order, now that everything is stored.
    let executed: std::collections::HashSet<&str> =
        pending.iter().map(|j| j.key.as_str()).collect();
    Ok(jobs
        .iter()
        .map(|job| UnitOutcome {
            key: job.key.clone(),
            from_cache: !executed.contains(job.key.as_str()),
            run: store
                .get_unit(&job.key)
                .expect("unit just stored or cached")
                .clone(),
        })
        .collect())
}

/// Run `spec` against `store`: v1 entries are migrated where possible,
/// cached units are served, missing units run in parallel on up to
/// `threads` workers (0 = all CPUs), and per-combo results are
/// assembled from the units.
pub fn run_sweep(
    spec: &SweepSpec,
    store: &mut ResultStore,
    threads: usize,
    mut progress: impl FnMut(SweepEvent) + Send,
) -> Result<SweepOutcome, StoreError> {
    let combo_jobs = spec.combo_jobs();

    let mut migrated = 0;
    for job in &combo_jobs {
        migrated += migrate_v1_units(job, store)?;
    }

    let all_units: Vec<UnitJob> = combo_jobs.iter().flat_map(|j| j.units.clone()).collect();
    let hits = all_units
        .iter()
        .filter(|j| store.get_unit(&j.key).is_some())
        .count();
    progress(SweepEvent::Planned {
        total: all_units.len(),
        hits,
        migrated,
    });

    let unit_outcomes = run_unit_jobs(&all_units, store, threads, &mut progress)?;

    // Assemble per combo, consuming unit outcomes in expansion order.
    let mut iter = unit_outcomes.into_iter();
    let mut combos = Vec::with_capacity(combo_jobs.len());
    let mut cache_hits = 0;
    let mut executed = 0;
    let mut simulated_cycles = 0u64;
    let mut budgeted_cycles = 0u64;
    for job in &combo_jobs {
        let units: Vec<UnitOutcome> = iter.by_ref().take(job.units.len()).collect();
        cache_hits += units.iter().filter(|u| u.from_cache).count();
        executed += units.iter().filter(|u| !u.from_cache).count();
        let plan = job.config.plan;
        for unit in &units {
            simulated_cycles +=
                plan.warmup_cycles + unit.run.measured_cycles.unwrap_or(plan.measure_cycles());
            budgeted_cycles += plan.warmup_cycles + plan.measure_cycles();
        }
        let runs: Vec<(SchemePoint, SchemeRun)> = job
            .units
            .iter()
            .map(|u| u.point)
            .zip(units.iter().map(|u| u.run.clone()))
            .collect();
        combos.push(ComboOutcome {
            label: job.combo.label(),
            from_cache: units.iter().all(|u| u.from_cache),
            result: assemble_combo(&job.combo, &runs),
        });
    }

    Ok(SweepOutcome {
        combos,
        cache_hits,
        migrated,
        executed,
        simulated_cycles,
        budgeted_cycles,
    })
}

/// Look up every unit of `spec` in `store` without running anything and
/// assemble the per-combo results. Returns `None` if any unit is
/// missing (i.e. `snug sweep` has not completed for this spec yet).
pub fn cached_results(spec: &SweepSpec, store: &ResultStore) -> Option<Vec<ComboResult>> {
    spec.combo_jobs()
        .iter()
        .map(|job| {
            let runs: Vec<(SchemePoint, SchemeRun)> = job
                .units
                .iter()
                .map(|u| Some((u.point, store.get_unit(&u.key)?.clone())))
                .collect::<Option<Vec<_>>>()?;
            Some(assemble_combo(&job.combo, &runs))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BudgetPreset;
    use snug_workloads::ComboClass;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny-c1".into(),
            classes: vec![ComboClass::C1],
            combos: Vec::new(),
            budget: BudgetPreset::Custom {
                warmup_cycles: 10_000,
                measure_cycles: 60_000,
            },
            stop: crate::spec::StopPreset::Fixed,
            phase_shift: None,
            shared_warmup: false,
        }
    }

    fn tmp_store(tag: &str) -> (std::path::PathBuf, ResultStore) {
        let dir =
            std::env::temp_dir().join(format!("snug-sweep-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        (dir, store)
    }

    const UNITS_PER_COMBO: usize = SchemePoint::COUNT;

    #[test]
    fn second_run_is_all_cache_hits_and_identical() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("rerun");

        let first = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(
            first.executed,
            3 * UNITS_PER_COMBO,
            "C1 has three combos of nine units"
        );
        assert_eq!(first.cache_hits, 0);

        // Re-open from disk to prove persistence, then re-run.
        let mut reopened = ResultStore::open(&dir).unwrap();
        let second = run_sweep(&spec, &mut reopened, 2, |_| {}).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.cache_hits, 3 * UNITS_PER_COMBO);
        assert!(second.combos.iter().all(|c| c.from_cache));
        assert_eq!(
            second.results(),
            first.results(),
            "bit-identical from cache"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_change_invalidates_the_cache() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("invalidate");
        run_sweep(&spec, &mut store, 0, |_| {}).unwrap();

        let mut bigger = spec.clone();
        bigger.budget = BudgetPreset::Custom {
            warmup_cycles: 10_000,
            measure_cycles: 90_000,
        };
        let outcome = run_sweep(&bigger, &mut store, 0, |_| {}).unwrap();
        assert_eq!(outcome.cache_hits, 0, "different budget, different keys");
        assert_eq!(outcome.executed, 3 * UNITS_PER_COMBO);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn events_report_plan_and_completion() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("events");
        let mut planned = None;
        let mut finished = 0usize;
        run_sweep(&spec, &mut store, 1, |e| match e {
            SweepEvent::Planned { total, hits, .. } => planned = Some((total, hits)),
            SweepEvent::JobFinished { .. } => finished += 1,
            SweepEvent::JobStarted { .. } => {}
        })
        .unwrap();
        assert_eq!(planned, Some((3 * UNITS_PER_COMBO, 0)));
        assert_eq!(finished, 3 * UNITS_PER_COMBO);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_results_requires_a_complete_sweep() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("partial");
        assert!(cached_results(&spec, &store).is_none(), "empty store");
        run_sweep(&spec, &mut store, 0, |_| {}).unwrap();
        let cached = cached_results(&spec, &store).unwrap();
        assert_eq!(cached.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_warmup_sweep_batches_cc_and_caches_separately() {
        let mut spec = tiny_spec();
        spec.shared_warmup = true;
        let (dir, mut store) = tmp_store("shared-warmup");

        // The CC points of each combo run as one batched piece.
        let mut labels = Vec::new();
        let first = run_sweep(&spec, &mut store, 2, |e| {
            if let SweepEvent::JobStarted { label } = e {
                labels.push(label);
            }
        })
        .unwrap();
        assert_eq!(first.executed, 3 * UNITS_PER_COMBO);
        assert_eq!(
            labels
                .iter()
                .filter(|l| l.contains("shared warmup"))
                .count(),
            3,
            "one batched CC piece per combo: {labels:?}"
        );

        // Second shared run: all cache hits, identical results.
        let second = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.results(), first.results());

        // A canonical sweep shares the non-CC units but re-runs CC under
        // its own keys — the two modes never serve each other.
        let canonical = run_sweep(&tiny_spec(), &mut store, 2, |_| {}).unwrap();
        let cc_points = snug_core::SchemeSpec::CC_SPILL_SWEEP.len();
        assert_eq!(canonical.cache_hits, 3 * (UNITS_PER_COMBO - cc_points));
        assert_eq!(canonical.executed, 3 * cc_points);

        // Both runs agree on the baseline by construction; CC numbers
        // may differ (different warm-up semantics) but stay plausible.
        for (s, c) in first.results().iter().zip(&canonical.results()) {
            assert_eq!(s.baseline_ipcs, c.baseline_ipcs);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_warmup_families_never_mix_configs() {
        // Same combo at two budgets: the CC families must batch per
        // (combo, config), or one budget's results would silently be
        // simulated under the other's.
        let (dir, mut store) = tmp_store("shared-mixed-config");
        let combo = snug_workloads::all_combos()
            .into_iter()
            .find(|c| c.class == ComboClass::C1)
            .unwrap();
        let quick = BudgetPreset::Custom {
            warmup_cycles: 10_000,
            measure_cycles: 60_000,
        }
        .compare_config();
        let mut bigger = quick;
        bigger.plan = snug_experiments::RunPlan::fixed(10_000, 90_000);
        let jobs: Vec<UnitJob> = crate::spec::unit_jobs_for_mode(&combo, &quick, true)
            .into_iter()
            .chain(crate::spec::unit_jobs_for_mode(&combo, &bigger, true))
            .filter(|j| j.shared_warmup)
            .collect();

        let mut family_labels = 0;
        let outcomes = run_unit_jobs(&jobs, &mut store, 2, &mut |e| {
            if let SweepEvent::JobStarted { label } = e {
                if label.contains("shared warmup") {
                    family_labels += 1;
                }
            }
        })
        .unwrap();
        assert_eq!(family_labels, 2, "one family per (combo, config)");

        // Same point, different budget => different IPCs: proof the
        // second family really ran under its own config.
        let cc_pairs: Vec<(&UnitOutcome, &UnitOutcome)> = outcomes
            .iter()
            .zip(outcomes.iter().skip(jobs.len() / 2))
            .take(jobs.len() / 2)
            .collect();
        assert!(
            cc_pairs.iter().any(|(a, b)| a.run.ipcs != b.run.ipcs),
            "budgets produced distinguishable results"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn converged_sweep_caches_separately_and_reports_the_saving() {
        let mut spec = tiny_spec();
        let (dir, mut store) = tmp_store("converged");
        let fixed = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(
            fixed.simulated_cycles, fixed.budgeted_cycles,
            "fixed runs use their whole budget"
        );

        // A very loose epsilon so the tiny synthetic runs all converge:
        // 4 windows of 6 K cycles → stop at ~24 K of the 60 K window.
        spec.stop = crate::spec::StopPreset::Converged {
            window_cycles: None,
            rel_epsilon: Some(0.9),
        };
        let mut labels = Vec::new();
        let converged = run_sweep(&spec, &mut store, 2, |e| {
            if let SweepEvent::JobStarted { label } = e {
                labels.push(label);
            }
        })
        .unwrap();
        assert_eq!(
            converged.executed,
            3 * UNITS_PER_COMBO,
            "converged runs never reuse fixed entries"
        );
        assert_eq!(
            labels
                .iter()
                .filter(|l| l.contains("baseline-paced"))
                .count(),
            3,
            "one baseline-paced piece per combo: {labels:?}"
        );
        assert!(
            converged.simulated_cycles < converged.budgeted_cycles,
            "early exit saved cycles: {} vs {}",
            converged.simulated_cycles,
            converged.budgeted_cycles
        );
        // Baseline pacing: within each combo every unit measured the
        // same window — the one its L2P baseline converged at.
        for job in spec.combo_jobs() {
            let windows: std::collections::HashSet<Option<u64>> = job
                .units
                .iter()
                .map(|u| store.get_unit(&u.key).expect("unit stored").measured_cycles)
                .collect();
            assert_eq!(
                windows.len(),
                1,
                "{}: one window per combo",
                job.combo.label()
            );
        }

        // Re-running the converged sweep is all cache hits with the
        // identical saving (measured_cycles persisted per unit).
        let rerun = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(rerun.executed, 0);
        assert_eq!(rerun.simulated_cycles, converged.simulated_cycles);
        assert_eq!(rerun.results(), converged.results());

        // And the fixed entries are still served untouched.
        let fixed_again = run_sweep(&tiny_spec(), &mut store, 2, |_| {}).unwrap();
        assert_eq!(fixed_again.executed, 0);
        assert_eq!(fixed_again.results(), fixed.results());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_warmup_composes_with_converged_stops() {
        // The PR-4 follow-up: one warm-up snapshot per combo AND
        // baseline-paced converged measurement, composed instead of
        // rejected.
        let mut spec = tiny_spec();
        spec.shared_warmup = true;
        spec.stop = crate::spec::StopPreset::Converged {
            window_cycles: None,
            rel_epsilon: Some(0.9),
        };
        let (dir, mut store) = tmp_store("shared-converged");
        let mut labels = Vec::new();
        let outcome = run_sweep(&spec, &mut store, 2, |e| {
            if let SweepEvent::JobStarted { label } = e {
                labels.push(label);
            }
        })
        .unwrap();
        assert_eq!(outcome.executed, 3 * UNITS_PER_COMBO);
        assert_eq!(
            labels
                .iter()
                .filter(|l| l.contains("baseline-paced"))
                .count(),
            3,
            "one paced piece per combo: {labels:?}"
        );
        assert!(
            outcome.simulated_cycles < outcome.budgeted_cycles,
            "early exit still saves cycles"
        );
        // Baseline pacing holds across the shared CC family too: one
        // window and one stop reason per combo, on every unit.
        for job in spec.combo_jobs() {
            let runs: Vec<&SchemeRun> = job
                .units
                .iter()
                .map(|u| store.get_unit(&u.key).expect("unit stored"))
                .collect();
            let windows: std::collections::HashSet<Option<u64>> =
                runs.iter().map(|r| r.measured_cycles).collect();
            assert_eq!(windows.len(), 1, "{}", job.combo.label());
            assert!(
                runs.iter().all(|r| r.stop_reason.is_some()),
                "every early-exit-capable unit records its stop reason"
            );
        }

        // Re-run: all cache hits; and the plain shared-warmup fixed
        // sweep still runs under its own keys.
        let rerun = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(rerun.executed, 0);
        let mut fixed_shared = tiny_spec();
        fixed_shared.shared_warmup = true;
        let fixed = run_sweep(&fixed_shared, &mut store, 2, |_| {}).unwrap();
        assert_eq!(
            fixed.executed,
            3 * UNITS_PER_COMBO,
            "converged and fixed shared runs never share keys"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shifted_reconverged_sweep_is_keyed_apart_and_records_reasons() {
        let mut spec = tiny_spec();
        // One demand-doubling shift mid-measurement (warm-up 10 K +
        // 60 K window → shift at 40 K), reconverged stop with a loose
        // epsilon so the tiny streams re-stabilise.
        spec.phase_shift = Some("40000:demand=200".into());
        spec.stop = crate::spec::StopPreset::Reconverged {
            window_cycles: None,
            rel_epsilon: Some(0.9),
        };
        let (dir, mut store) = tmp_store("shifted-reconverged");
        let stationary = run_sweep(&tiny_spec(), &mut store, 2, |_| {}).unwrap();
        let shifted = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(
            shifted.executed,
            3 * UNITS_PER_COMBO,
            "shifted runs never reuse stationary entries"
        );
        assert_ne!(
            shifted.results(),
            stationary.results(),
            "the workload shift changes the measured results"
        );
        // Every unit persists an explicit stop reason; baselines under
        // the re-convergence policy record per-phase plateau means.
        for job in spec.combo_jobs() {
            for unit in &job.units {
                let run = store.get_unit(&unit.key).expect("unit stored");
                assert!(run.stop_reason.is_some(), "{}", unit.label());
                if unit.point == SchemePoint::L2p {
                    assert_eq!(
                        run.plateaus.len(),
                        2,
                        "{}: one plateau per workload phase",
                        unit.label()
                    );
                }
            }
        }
        // Deterministic: a rerun is all cache hits and bit-identical.
        let rerun = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(rerun.executed, 0);
        assert_eq!(rerun.results(), shifted.results());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn converged_units_persist_stop_reasons() {
        let mut spec = tiny_spec();
        spec.stop = crate::spec::StopPreset::Converged {
            window_cycles: None,
            rel_epsilon: Some(0.9),
        };
        let (dir, mut store) = tmp_store("stop-reasons");
        run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        for job in spec.combo_jobs() {
            for unit in &job.units {
                let run = store.get_unit(&unit.key).expect("unit stored");
                let reason = run.stop_reason.expect("early-exit-capable run");
                // The loose epsilon converges everything here, and the
                // recorded reason must agree with the recorded window.
                assert_eq!(
                    reason == snug_experiments::StopReason::Converged,
                    run.measured_cycles.is_some(),
                    "{}",
                    unit.label()
                );
            }
        }
        // Fixed-plan entries stay bare: no stop reason at all.
        run_sweep(&tiny_spec(), &mut store, 2, |_| {}).unwrap();
        for job in tiny_spec().combo_jobs() {
            for unit in &job.units {
                assert_eq!(store.get_unit(&unit.key).unwrap().stop_reason, None);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scheme_config_edit_reruns_only_that_schemes_units() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("scheme-edit");
        run_sweep(&spec, &mut store, 0, |_| {}).unwrap();

        // Edit the SNUG configuration only and re-expand the unit jobs
        // by hand (the spec's presets cannot express this, which is the
        // point: the key schema must keep every non-SNUG unit cached).
        let mut edited = spec.compare_config();
        edited.snug.stage2_cycles += 1;
        let jobs: Vec<UnitJob> = spec
            .combos()
            .iter()
            .flat_map(|combo| crate::spec::unit_jobs_for(combo, &edited))
            .collect();
        let outcomes = run_unit_jobs(&jobs, &mut store, 0, &mut |_| {}).unwrap();

        let mut snug_units = 0;
        for (outcome, job) in outcomes.iter().zip(&jobs) {
            if job.point == SchemePoint::Snug {
                snug_units += 1;
                assert!(!outcome.from_cache, "every SNUG unit re-ran");
            } else {
                assert!(outcome.from_cache, "non-SNUG unit stayed cached");
            }
        }
        assert_eq!(snug_units, 3, "one SNUG unit per C1 combo");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
