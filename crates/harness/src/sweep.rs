//! Sweep orchestration: expand a spec into per-(combo, scheme point)
//! unit jobs, serve cached units from the store, migrate what a v1
//! store can still prove, run the rest as a dependency graph on the
//! parallel executor, and assemble per-combo results.
//!
//! Parallel execution is the default path and must never change the
//! store: workers append completed entries to per-worker shard files
//! (crash durability), results are merged into the main store in
//! pending-job order at sweep end (schedule-independent bytes), and
//! baseline pacing is an explicit dependency edge — a combo's L2P unit
//! gates its paced siblings, everything else runs free.

use crate::exec::{self, ExecEvent, JobOutcome};
use crate::hash::content_key;
use crate::spec::{
    legacy_combo_key, unit_key_phased, ComboJob, SweepSpec, UnitJob, SCHEMA_VERSION,
};
use crate::store::{ResultStore, ShardWriter, StoreEntry, StoreError, StoredResult, SHARDS_DIR};
use snug_experiments::{
    assemble_combo, best_cc_index, pace_of, run_cc_points_shared_phased, run_point_paced,
    run_point_phased, ComboResult, Pace, SchemePoint, SchemeRun,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Progress events streamed while a sweep runs.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepEvent {
    /// The sweep expanded into unit jobs.
    Planned {
        /// Total unit jobs in the spec.
        total: usize,
        /// Units already present in the store (including migrated ones).
        hits: usize,
        /// Of the hits, units synthesised from v1 combo entries.
        migrated: usize,
    },
    /// A unit simulation started.
    JobStarted {
        /// Unit label (`"ammp+parser+swim+mesa [cc@50%]"`).
        label: String,
    },
    /// A unit simulation finished.
    JobFinished {
        /// Unit label.
        label: String,
        /// Executed so far (cache hits excluded).
        done: usize,
        /// Total to execute this sweep.
        to_run: usize,
        /// Wall-clock telemetry for the piece that just finished.
        span: UnitSpan,
    },
    /// A unit simulation panicked; the sweep surfaces the failure as
    /// [`SweepError::UnitFailed`] after the pool drains.
    JobFailed {
        /// Unit label.
        label: String,
        /// The panic payload, rendered.
        error: String,
    },
    /// A unit never ran because the baseline it is paced by failed.
    JobSkipped {
        /// Unit label.
        label: String,
        /// Label of the failed baseline piece that doomed it.
        failed_dep: String,
    },
}

/// Wall-clock telemetry for one executed piece of a sweep: how long the
/// piece waited for a worker, how long it simulated, how much simulated
/// work that wall time bought, and which worker ran it. Recorded by
/// [`run_unit_jobs`] around every executed piece (cache hits record
/// nothing — they cost no wall time worth charging), surfaced on
/// [`SweepEvent::JobFinished`], and persisted in the store as its own
/// record kind so `snug sweep` footers and later tooling can aggregate
/// throughput and per-worker utilisation across sweeps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitSpan {
    /// Label of the executed piece (same shape as the progress lines).
    pub label: String,
    /// Nanoseconds between sweep submission and a worker picking the
    /// piece up.
    pub queue_nanos: u64,
    /// Nanoseconds of wall time the piece spent simulating.
    pub wall_nanos: u64,
    /// Simulated cycles the piece covered (warm-up + measured window,
    /// summed over every member unit).
    pub sim_cycles: u64,
    /// Instructions retired over the measured windows, reconstructed
    /// from the per-core IPCs each member unit reported.
    pub instructions: u64,
    /// Worker that executed the piece (0-based; 0 on spans recorded
    /// before parallel provenance existed).
    pub worker: usize,
    /// Shard file the piece's results were first appended to
    /// (`"worker-0.jsonl"`; empty on pre-parallel spans).
    pub shard: String,
}

impl UnitSpan {
    /// Simulated cycles per wall-clock second (0 when nothing was
    /// timed).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.sim_cycles as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// Retired instructions per wall-clock second (0 when nothing was
    /// timed).
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.instructions as f64 / (self.wall_nanos as f64 / 1e9)
    }
}

/// Errors surfaced by a sweep: the backing store failed, or a unit
/// piece panicked (its baseline-paced dependents are skipped, everything
/// unrelated completes and persists before the error returns).
#[derive(Debug)]
pub enum SweepError {
    /// Reading or writing the result store failed.
    Store(StoreError),
    /// A unit piece panicked mid-simulation.
    UnitFailed {
        /// Label of the failed piece.
        label: String,
        /// The panic payload, rendered.
        error: String,
        /// Labels of the pieces skipped because they were paced by the
        /// failed one.
        skipped: Vec<String>,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Store(e) => e.fmt(f),
            SweepError::UnitFailed {
                label,
                error,
                skipped,
            } => {
                write!(f, "unit `{label}` failed: {error}")?;
                if !skipped.is_empty() {
                    write!(
                        f,
                        " ({} dependent piece(s) skipped: {})",
                        skipped.len(),
                        skipped.join(", ")
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Store(e) => Some(e),
            SweepError::UnitFailed { .. } => None,
        }
    }
}

impl From<StoreError> for SweepError {
    fn from(e: StoreError) -> Self {
        SweepError::Store(e)
    }
}

/// One unit job's outcome within a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitOutcome {
    /// Content key of the unit job.
    pub key: String,
    /// Whether the result came from the store (fresh runs and cached
    /// results are indistinguishable by construction).
    pub from_cache: bool,
    /// The raw per-core IPCs.
    pub run: SchemeRun,
}

/// One combo's assembled outcome within a [`SweepOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComboOutcome {
    /// Combo label.
    pub label: String,
    /// Whether every unit of this combo was served from the store.
    pub from_cache: bool,
    /// The assembled five-scheme result.
    pub result: ComboResult,
}

/// The outcome of a sweep, in spec (Table 8) order. Counts are at unit
/// granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Per-combo assembled outcomes.
    pub combos: Vec<ComboOutcome>,
    /// Unit jobs served from the store (including migrated units).
    pub cache_hits: usize,
    /// Of the cache hits, units synthesised from v1 combo entries.
    pub migrated: usize,
    /// Unit jobs executed fresh.
    pub executed: usize,
    /// Cycles actually simulated across all units (warm-up + measured;
    /// early-stopped units count their recorded stop cycle, cached ones
    /// included).
    pub simulated_cycles: u64,
    /// Cycles the fixed budget would have simulated for the same units
    /// (warm-up + full measured window each). The gap is what
    /// convergence-based early exit saved.
    pub budgeted_cycles: u64,
}

impl SweepOutcome {
    /// The assembled results alone, in spec order.
    pub fn results(&self) -> Vec<ComboResult> {
        self.combos.iter().map(|c| c.result.clone()).collect()
    }
}

/// Migrate what a v1 store entry for `job`'s combo can still prove into
/// v2 unit entries: the L2P / L2S / DSR / SNUG points carry their full
/// per-core IPCs in a v1 `ComboResult`, and the winning CC point is
/// recoverable via [`best_cc_index`] — the same rule result assembly
/// uses, so re-assembly re-selects the identical point. The four losing
/// CC points are not reconstructible and stay pending. Returns the
/// number of units migrated.
fn migrate_v1_units(job: &ComboJob, store: &mut ResultStore) -> Result<usize, StoreError> {
    // v1 entries only ever described the stationary canonical
    // workload; a shifted combo's units must never be served from them.
    if job.units.iter().any(|u| u.phase.is_some()) {
        return Ok(0);
    }
    let legacy_key = legacy_combo_key(&job.combo, &job.config);
    let Some(old) = store.get_legacy_combo(&legacy_key).cloned() else {
        return Ok(0);
    };
    let best_cc_p = best_cc_index(&old.cc_sweep).map(|i| old.cc_sweep[i].0);
    let mut migrated = 0;
    for unit in &job.units {
        if unit.shared_warmup {
            // Shared-warm-up keys describe a different warm-up
            // semantics; canonical v1 values must not masquerade as
            // them.
            continue;
        }
        if store.get_unit(&unit.key).is_some() {
            continue;
        }
        let ipcs = match unit.point {
            SchemePoint::L2p => Some(old.baseline_ipcs.clone()),
            SchemePoint::L2s => scheme_ipcs(&old, "L2S"),
            SchemePoint::Dsr => scheme_ipcs(&old, "DSR"),
            SchemePoint::Snug => scheme_ipcs(&old, "SNUG"),
            SchemePoint::Cc { spill_probability } if Some(spill_probability) == best_cc_p => {
                scheme_ipcs(&old, "CC(Best)")
            }
            SchemePoint::Cc { .. } => None,
        };
        if let Some(ipcs) = ipcs {
            store.insert_unit(
                unit.key.clone(),
                format!("migrated from v1 entry {legacy_key}"),
                SchemeRun {
                    scheme: unit.point.label(),
                    ipcs,
                    measured_cycles: None,
                    stop_reason: None,
                    plateaus: Vec::new(),
                },
            )?;
            migrated += 1;
        }
    }
    Ok(migrated)
}

fn scheme_ipcs(result: &ComboResult, scheme: &str) -> Option<Vec<f64>> {
    result
        .schemes
        .iter()
        .find(|s| s.scheme == scheme)
        .map(|s| s.ipcs.clone())
}

/// Where a paced node's measurement window comes from: the baseline's
/// pace read from the store up front, or a baseline node running this
/// sweep — its pace is published into the pace slot when it completes,
/// and the dependency edge guarantees that happens first.
#[derive(Clone, Copy)]
enum PaceSource {
    Cached(Pace),
    Node(usize),
}

impl PaceSource {
    fn resolve(&self, paces: &[Mutex<Option<Pace>>]) -> Pace {
        match self {
            PaceSource::Cached(pace) => *pace,
            PaceSource::Node(baseline) => paces[*baseline]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                // snug-lint: allow(panic-audit, "pacing edges make the baseline a dependency; the executor runs dependents only after it completed and published")
                .expect("a baseline node completes before its dependents run"),
        }
    }
}

/// One schedulable node of the sweep's dependency graph: a single unit
/// simulation, a unit paced to its combo baseline's measured window, or
/// a combo's shared-warm-up CC points (which run together so they share
/// one warm-up snapshot — paced too under an early-exit plan).
enum ExecNode<'a> {
    Single(&'a UnitJob),
    Paced(&'a UnitJob, PaceSource),
    CcShared(Vec<&'a UnitJob>, Option<PaceSource>),
}

impl<'a> ExecNode<'a> {
    fn label(&self) -> String {
        match self {
            ExecNode::Single(job) => job.label(),
            ExecNode::Paced(job, _) => format!("{} [paced]", job.label()),
            ExecNode::CcShared(jobs, pace) => format!(
                "{} [cc sweep x{}, shared warmup{}]",
                jobs[0].combo.label(),
                jobs.len(),
                if pace.is_some() { ", paced" } else { "" },
            ),
        }
    }

    /// The node's first member — every member shares one (combo,
    /// configuration, phase), so this is where per-node plan facts come
    /// from. Only the test failpoint needs it today.
    #[cfg(test)]
    fn first_job(&self) -> &'a UnitJob {
        match self {
            ExecNode::Single(job) | ExecNode::Paced(job, _) => job,
            ExecNode::CcShared(jobs, _) => jobs[0],
        }
    }

    /// Simulate and return every (job, result) pair of this node.
    fn run(&self, paces: &[Mutex<Option<Pace>>]) -> Vec<(&'a UnitJob, SchemeRun)> {
        match self {
            ExecNode::Single(job) => {
                vec![(
                    *job,
                    run_point_phased(&job.combo, &job.point, &job.config, job.phase.as_ref()),
                )]
            }
            ExecNode::Paced(job, source) => {
                let pace = source.resolve(paces);
                vec![(
                    *job,
                    run_point_paced(
                        &job.combo,
                        &job.point,
                        &job.config,
                        &pace,
                        job.phase.as_ref(),
                    ),
                )]
            }
            ExecNode::CcShared(jobs, source) => {
                let pace = source.as_ref().map(|s| s.resolve(paces));
                run_cc_family(jobs, pace.as_ref())
            }
        }
    }
}

/// Run a shared-warm-up CC family (optionally baseline-paced) and pair
/// each result back with its job.
fn run_cc_family<'a>(jobs: &[&'a UnitJob], pace: Option<&Pace>) -> Vec<(&'a UnitJob, SchemeRun)> {
    let points: Vec<SchemePoint> = jobs.iter().map(|j| j.point).collect();
    run_cc_points_shared_phased(
        &jobs[0].combo,
        &points,
        &jobs[0].config,
        jobs[0].phase.as_ref(),
        pace,
    )
    .into_iter()
    .zip(jobs.iter())
    .map(|((point, run), job)| {
        debug_assert_eq!(point, job.point);
        (*job, run)
    })
    .collect()
}

/// Build the sweep's dependency graph from the pending jobs:
///
/// * fixed-plan units run free ([`ExecNode::Single`], no edges), with
///   a combo's shared-warm-up CC units batched into one
///   [`ExecNode::CcShared`] node (a family shares one warm-up, so every
///   member must describe the same simulation inputs);
/// * early-exit units group per (combo, configuration, phase). When the
///   combo's L2P baseline is itself pending it becomes a free
///   [`ExecNode::Single`] node and every sibling node depends on it
///   ([`PaceSource::Node`]) — combos parallelize against each other,
///   only the intra-combo pacing order is sequenced. When the baseline
///   is already in the store, its recorded window paces each sibling
///   with no edges at all ([`PaceSource::Cached`]), keeping unit
///   granularity (a scheme-parameter edit re-runs that scheme's units
///   in parallel, paced by the cached baselines);
/// * an early-exit subset whose baseline is neither cached nor pending
///   (a caller-supplied subset) cannot be paced; its members fall back
///   to independent converged runs — shared-warm-up CC members still
///   batch as one (unpaced) family.
///
/// Returns the nodes plus, per node, the indices of the nodes it
/// depends on — the exact shape [`exec::run_graph`] consumes.
fn plan_exec_nodes<'a>(
    pending: &[&'a UnitJob],
    store: &ResultStore,
) -> (Vec<ExecNode<'a>>, Vec<Vec<usize>>) {
    enum Item<'a> {
        Free(&'a UnitJob),
        CcFamily(Vec<&'a UnitJob>),
        EarlyFamily(Vec<&'a UnitJob>),
    }
    let family_tag = |kind: &str, job: &UnitJob| {
        format!(
            "{kind}|{:?}|{:?}|{:?}",
            job.combo,
            job.config,
            job.phase.as_ref().map(|p| p.fingerprint())
        )
    };
    let mut items: Vec<Item<'a>> = Vec::new();
    let mut family_index: BTreeMap<String, usize> = BTreeMap::new();
    for &job in pending {
        let (tag, make): (String, fn(Vec<&'a UnitJob>) -> Item<'a>) =
            if job.config.plan.can_stop_early() {
                (family_tag("early", job), Item::EarlyFamily)
            } else if job.shared_warmup && matches!(job.point, SchemePoint::Cc { .. }) {
                (family_tag("cc", job), Item::CcFamily)
            } else {
                items.push(Item::Free(job));
                continue;
            };
        match family_index.get(&tag) {
            Some(&i) => match &mut items[i] {
                Item::CcFamily(jobs) | Item::EarlyFamily(jobs) => jobs.push(job),
                // snug-lint: allow(panic-audit, "the index is only written when a family item is pushed, two lines below")
                Item::Free(_) => unreachable!("family index never points at a free job"),
            },
            None => {
                family_index.insert(tag, items.len());
                items.push(make(vec![job]));
            }
        }
    }

    let mut nodes: Vec<ExecNode<'a>> = Vec::new();
    let mut deps: Vec<Vec<usize>> = Vec::new();
    for item in items {
        match item {
            Item::Free(job) => {
                nodes.push(ExecNode::Single(job));
                deps.push(Vec::new());
            }
            Item::CcFamily(jobs) => {
                nodes.push(ExecNode::CcShared(jobs, None));
                deps.push(Vec::new());
            }
            Item::EarlyFamily(jobs) => {
                let probe = jobs[0];
                let source = if let Some(p) = jobs.iter().position(|j| j.point == SchemePoint::L2p)
                {
                    let baseline = nodes.len();
                    nodes.push(ExecNode::Single(jobs[p]));
                    deps.push(Vec::new());
                    Some(PaceSource::Node(baseline))
                } else {
                    let baseline_key = unit_key_phased(
                        &probe.combo,
                        &SchemePoint::L2p,
                        &probe.config,
                        false,
                        probe.phase.as_ref(),
                    );
                    store
                        .get_unit(&baseline_key)
                        .map(|baseline| PaceSource::Cached(pace_of(baseline, &probe.config)))
                };
                let edges: Vec<usize> = match source {
                    Some(PaceSource::Node(baseline)) => vec![baseline],
                    _ => Vec::new(),
                };
                let cc_shared: Vec<&UnitJob> =
                    jobs.iter().copied().filter(|j| j.shared_warmup).collect();
                for &job in jobs
                    .iter()
                    .filter(|j| !j.shared_warmup && j.point != SchemePoint::L2p)
                {
                    match source {
                        Some(src) => {
                            nodes.push(ExecNode::Paced(job, src));
                            deps.push(edges.clone());
                        }
                        None => {
                            nodes.push(ExecNode::Single(job));
                            deps.push(Vec::new());
                        }
                    }
                }
                if !cc_shared.is_empty() {
                    nodes.push(ExecNode::CcShared(cc_shared, source));
                    deps.push(edges);
                }
            }
        }
    }
    (nodes, deps)
}

/// Content key for the span record of the piece that executed the
/// member units with these keys. Derived from the member unit keys, so
/// re-running the same piece supersedes its previous span (newest
/// telemetry wins under the store's gc rule) instead of accumulating.
fn span_key(member_keys: &[&str]) -> String {
    content_key(&format!("{SCHEMA_VERSION}|span|{}", member_keys.join("+")))
}

/// The human-readable input description recorded beside a unit's
/// content key — shared by the shard and main-store paths so a shard
/// line and the store line it merges into are byte-identical.
fn unit_inputs(job: &UnitJob) -> String {
    let mode = if job.shared_warmup {
        " | shared-warmup"
    } else {
        ""
    };
    let phase = job
        .phase
        .as_ref()
        .map(|p| format!(" | phase={}", p.fingerprint()))
        .unwrap_or_default();
    format!(
        "{:?} | {} | {:?}{mode}{phase}",
        job.combo,
        job.point.label(),
        job.config
    )
}

/// Format `x` with an engineering suffix and a trailing space when a
/// prefix is used, so call sites can append a unit: `1_234_567.0` →
/// `"1.23 M"`.
pub fn fmt_eng(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} k", x / 1e3)
    } else {
        format!("{x:.0} ")
    }
}

/// Render the end-of-sweep telemetry footer from the executed spans: a
/// throughput roll-up plus one utilisation line per worker. A pure,
/// order-independent function of the span set — two sweeps that
/// executed the same pieces print the same footer no matter how the
/// schedule interleaved them.
pub fn telemetry_footer(spans: &[UnitSpan]) -> String {
    if spans.is_empty() {
        return "telemetry: all units served from cache (no simulation wall time)".into();
    }
    let wall_nanos: u64 = spans.iter().map(|s| s.wall_nanos).sum();
    let sim_cycles: u64 = spans.iter().map(|s| s.sim_cycles).sum();
    let instructions: u64 = spans.iter().map(|s| s.instructions).sum();
    let secs = wall_nanos as f64 / 1e9;
    let rate = |x: u64| {
        if secs > 0.0 {
            x as f64 / secs
        } else {
            0.0
        }
    };
    let mut out = format!(
        "telemetry: {:.2} s simulation wall across {} pieces · {}cycles/s · {}ops/s",
        secs,
        spans.len(),
        fmt_eng(rate(sim_cycles)),
        fmt_eng(rate(instructions)),
    );
    // Per-worker utilisation against the sweep's span of wall time: the
    // latest point any piece was still simulating, measured from
    // submission (queue + wall of that piece).
    let elapsed_nanos = spans
        .iter()
        .map(|s| s.queue_nanos + s.wall_nanos)
        .max()
        .unwrap_or(0);
    let mut workers: BTreeMap<usize, (usize, u64)> = BTreeMap::new();
    for span in spans {
        let slot = workers.entry(span.worker).or_default();
        slot.0 += 1;
        slot.1 += span.wall_nanos;
    }
    for (worker, (pieces, busy_nanos)) in workers {
        let util = if elapsed_nanos == 0 {
            0.0
        } else {
            100.0 * busy_nanos as f64 / elapsed_nanos as f64
        };
        out.push_str(&format!(
            "\n  worker {worker}: {pieces} pieces, {:.2} s busy ({util:.0}% utilisation)",
            busy_nanos as f64 / 1e9,
        ));
    }
    out
}

#[cfg(test)]
pub(crate) mod failpoint {
    //! A test-only failure injector: when armed with a label substring
    //! and a warm-up cycle count, any piece matching *both* panics
    //! before simulating. Keying on a test's unique custom warm-up
    //! budget means concurrently running tests in the same process
    //! never trip each other's failpoints.
    use std::sync::Mutex;

    pub(crate) static ARMED: Mutex<Option<(String, u64)>> = Mutex::new(None);

    pub(crate) fn maybe_panic(label: &str, warmup_cycles: u64) {
        // Clone and release the lock before panicking so an injected
        // failure never poisons the failpoint itself.
        let armed = ARMED.lock().expect("failpoint poisoned").clone();
        if let Some((pattern, warmup)) = armed {
            if warmup_cycles == warmup && label.contains(&pattern) {
                panic!("injected failure for {label}");
            }
        }
    }
}

/// Run `jobs` against `store`: cached units are served, missing units
/// run as a dependency graph on up to `threads` workers (0 = all CPUs).
/// Workers append each completed piece to their own shard file under
/// `results/shards/` the moment it finishes (an interrupted sweep keeps
/// everything completed so far — the next run recovers the shards and
/// re-runs only what is missing); the main store is written once, at
/// sweep end, in pending-job order, so its bytes never depend on the
/// schedule or the worker count. Outcomes return in job order. This is
/// the engine under [`run_sweep`]; tests drive it directly to exercise
/// ad-hoc configurations.
pub fn run_unit_jobs(
    jobs: &[UnitJob],
    store: &mut ResultStore,
    threads: usize,
    progress: &mut (impl FnMut(SweepEvent) + Send),
) -> Result<Vec<UnitOutcome>, SweepError> {
    store.recover_shards()?;
    let submitted = Instant::now();
    let pending: Vec<&UnitJob> = jobs
        .iter()
        .filter(|j| store.get_unit(&j.key).is_none())
        .collect();
    let (nodes, deps) = plan_exec_nodes(&pending, store);
    let workers = exec::effective_threads(threads, nodes.len());
    let shards_dir = store.dir().join(SHARDS_DIR);
    let shard_writers: Vec<Mutex<ShardWriter>> = (0..workers)
        .map(|w| {
            Mutex::new(ShardWriter::new(
                shards_dir.join(format!("worker-{w}.jsonl")),
            ))
        })
        .collect();
    let shard_error: Mutex<Option<StoreError>> = Mutex::new(None);
    let paces: Vec<Mutex<Option<Pace>>> = nodes.iter().map(|_| Mutex::new(None)).collect();
    let spans: Vec<Mutex<Option<UnitSpan>>> = nodes.iter().map(|_| Mutex::new(None)).collect();
    let progress_cell = Mutex::new(&mut *progress);
    let outcomes = exec::run_graph(
        nodes.len(),
        &deps,
        workers,
        |i, worker| {
            let node = &nodes[i];
            #[cfg(test)]
            failpoint::maybe_panic(&node.label(), node.first_job().config.plan.warmup_cycles);
            let picked = Instant::now();
            let results = node.run(&paces);
            let wall_nanos = picked.elapsed().as_nanos() as u64;
            // Publish the baseline's pace before this node is marked
            // complete: the executor unblocks dependents only after this
            // closure returns, so paced siblings always find it.
            if let ExecNode::Single(job) = node {
                if job.point == SchemePoint::L2p && job.config.plan.can_stop_early() {
                    *paces[i].lock().unwrap_or_else(PoisonError::into_inner) =
                        Some(pace_of(&results[0].1, &job.config));
                }
            }
            let mut span = UnitSpan {
                label: node.label(),
                queue_nanos: picked.duration_since(submitted).as_nanos() as u64,
                wall_nanos,
                sim_cycles: 0,
                instructions: 0,
                worker,
                shard: format!("worker-{worker}.jsonl"),
            };
            let mut member_keys: Vec<&str> = Vec::with_capacity(results.len());
            for (job, run) in &results {
                let plan = job.config.plan;
                let measured = run.measured_cycles.unwrap_or(plan.measure_cycles());
                span.sim_cycles += plan.warmup_cycles + measured;
                span.instructions +=
                    (run.ipcs.iter().sum::<f64>() * measured as f64).round() as u64;
                member_keys.push(job.key.as_str());
            }
            let span_key = span_key(&member_keys);
            // Crash durability: every completed entry reaches this
            // worker's shard before the piece reports done.
            {
                let mut shard = shard_writers[worker]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let mut append = |entry: StoreEntry| {
                    if let Err(e) = shard.append(&entry) {
                        shard_error
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .get_or_insert(e);
                    }
                };
                for (job, run) in &results {
                    append(StoreEntry {
                        key: job.key.clone(),
                        inputs: unit_inputs(job),
                        result: StoredResult::Unit(run.clone()),
                    });
                }
                append(StoreEntry {
                    key: span_key.clone(),
                    inputs: format!("span | {}", span.label),
                    result: StoredResult::Span(span.clone()),
                });
            }
            *spans[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(span.clone());
            (results, span_key, span)
        },
        |event| {
            let mut p = progress_cell.lock().unwrap_or_else(PoisonError::into_inner);
            match event {
                ExecEvent::Started { index, .. } => (*p)(SweepEvent::JobStarted {
                    label: nodes[index].label(),
                }),
                ExecEvent::Finished {
                    index, done, total, ..
                } => (*p)(SweepEvent::JobFinished {
                    label: nodes[index].label(),
                    done,
                    to_run: total,
                    span: spans[index]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone()
                        .unwrap_or_default(),
                }),
                ExecEvent::Failed { index, error, .. } => (*p)(SweepEvent::JobFailed {
                    label: nodes[index].label(),
                    error,
                }),
                ExecEvent::Skipped {
                    index, failed_dep, ..
                } => (*p)(SweepEvent::JobSkipped {
                    label: nodes[index].label(),
                    failed_dep: nodes[failed_dep].label(),
                }),
            }
        },
    );

    // Fold the terminal states: completed runs merge into the main
    // store, the first failure (plus everything it doomed) is surfaced
    // after persistence so an interrupted sweep still keeps its
    // completed work.
    let mut completed: BTreeMap<String, SchemeRun> = BTreeMap::new();
    let mut finished_spans: Vec<(String, UnitSpan)> = Vec::new();
    let mut failure: Option<(String, String)> = None;
    let mut skipped: Vec<String> = Vec::new();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            JobOutcome::Done((results, span_key, span)) => {
                for (job, run) in results {
                    completed.insert(job.key.clone(), run);
                }
                finished_spans.push((span_key, span));
            }
            JobOutcome::Failed(error) => {
                if failure.is_none() {
                    failure = Some((nodes[i].label(), error));
                }
            }
            JobOutcome::Skipped { .. } => skipped.push(nodes[i].label()),
        }
    }
    // Deterministic merge: completed units land in the main store in
    // pending-job order — never in completion order — so the store's
    // bytes are identical for every `--jobs` value.
    for job in &pending {
        if let Some(run) = completed.remove(&job.key) {
            store.insert_unit(job.key.clone(), unit_inputs(job), run)?;
        }
    }
    for (key, span) in finished_spans {
        store.insert_span(key, format!("span | {}", span.label), span)?;
    }
    // The shards' contents are now in the main store; drop them.
    let mut shard_io: Option<StoreError> = None;
    for writer in shard_writers {
        let writer = writer.into_inner().unwrap_or_else(PoisonError::into_inner);
        if writer.written() {
            if let Err(e) = std::fs::remove_file(writer.path()) {
                shard_io.get_or_insert(StoreError::Io(
                    writer.path().display().to_string(),
                    e.to_string(),
                ));
            }
        }
    }
    let _ = std::fs::remove_dir(&shards_dir);
    if let Some((label, error)) = failure {
        return Err(SweepError::UnitFailed {
            label,
            error,
            skipped,
        });
    }
    if let Some(e) = shard_error
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(e.into());
    }
    if let Some(e) = shard_io {
        return Err(e.into());
    }

    // Assemble outcomes in job order, now that everything is stored.
    let executed: BTreeSet<&str> = pending.iter().map(|j| j.key.as_str()).collect();
    Ok(jobs
        .iter()
        .map(|job| UnitOutcome {
            key: job.key.clone(),
            from_cache: !executed.contains(job.key.as_str()),
            run: store
                .get_unit(&job.key)
                // snug-lint: allow(panic-audit, "every pending unit was persisted above and cached units were present before the sweep started")
                .expect("unit just stored or cached")
                .clone(),
        })
        .collect())
}

/// Run `spec` against `store`: leftover shards from a killed sweep are
/// recovered first, v1 entries are migrated where possible, cached
/// units are served, missing units run as a dependency graph on up to
/// `threads` workers (0 = all CPUs), and per-combo results are
/// assembled from the units.
pub fn run_sweep(
    spec: &SweepSpec,
    store: &mut ResultStore,
    threads: usize,
    mut progress: impl FnMut(SweepEvent) + Send,
) -> Result<SweepOutcome, SweepError> {
    // Recover before counting cache hits so units a killed sweep
    // completed are reported as hits, not re-planned.
    store.recover_shards()?;
    let combo_jobs = spec.combo_jobs();

    let mut migrated = 0;
    for job in &combo_jobs {
        migrated += migrate_v1_units(job, store)?;
    }

    let all_units: Vec<UnitJob> = combo_jobs.iter().flat_map(|j| j.units.clone()).collect();
    let hits = all_units
        .iter()
        .filter(|j| store.get_unit(&j.key).is_some())
        .count();
    progress(SweepEvent::Planned {
        total: all_units.len(),
        hits,
        migrated,
    });

    let unit_outcomes = run_unit_jobs(&all_units, store, threads, &mut progress)?;

    // Assemble per combo, consuming unit outcomes in expansion order.
    let mut iter = unit_outcomes.into_iter();
    let mut combos = Vec::with_capacity(combo_jobs.len());
    let mut cache_hits = 0;
    let mut executed = 0;
    let mut simulated_cycles = 0u64;
    let mut budgeted_cycles = 0u64;
    for job in &combo_jobs {
        let units: Vec<UnitOutcome> = iter.by_ref().take(job.units.len()).collect();
        cache_hits += units.iter().filter(|u| u.from_cache).count();
        executed += units.iter().filter(|u| !u.from_cache).count();
        let plan = job.config.plan;
        for unit in &units {
            simulated_cycles +=
                plan.warmup_cycles + unit.run.measured_cycles.unwrap_or(plan.measure_cycles());
            budgeted_cycles += plan.warmup_cycles + plan.measure_cycles();
        }
        let runs: Vec<(SchemePoint, SchemeRun)> = job
            .units
            .iter()
            .map(|u| u.point)
            .zip(units.iter().map(|u| u.run.clone()))
            .collect();
        combos.push(ComboOutcome {
            label: job.combo.label(),
            from_cache: units.iter().all(|u| u.from_cache),
            result: assemble_combo(&job.combo, &runs),
        });
    }

    Ok(SweepOutcome {
        combos,
        cache_hits,
        migrated,
        executed,
        simulated_cycles,
        budgeted_cycles,
    })
}

/// Look up every unit of `spec` in `store` without running anything and
/// assemble the per-combo results. Returns `None` if any unit is
/// missing (i.e. `snug sweep` has not completed for this spec yet).
pub fn cached_results(spec: &SweepSpec, store: &ResultStore) -> Option<Vec<ComboResult>> {
    spec.combo_jobs()
        .iter()
        .map(|job| {
            let runs: Vec<(SchemePoint, SchemeRun)> = job
                .units
                .iter()
                .map(|u| Some((u.point, store.get_unit(&u.key)?.clone())))
                .collect::<Option<Vec<_>>>()?;
            Some(assemble_combo(&job.combo, &runs))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BudgetPreset, StopPreset};
    use snug_workloads::ComboClass;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny-c1".into(),
            classes: vec![ComboClass::C1],
            combos: Vec::new(),
            budget: BudgetPreset::Custom {
                warmup_cycles: 10_000,
                measure_cycles: 60_000,
            },
            stop: StopPreset::Fixed,
            phase_shift: None,
            shared_warmup: false,
        }
    }

    fn tmp_store(tag: &str) -> (std::path::PathBuf, ResultStore) {
        let dir =
            std::env::temp_dir().join(format!("snug-sweep-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        (dir, store)
    }

    const UNITS_PER_COMBO: usize = SchemePoint::COUNT;

    #[test]
    fn second_run_is_all_cache_hits_and_identical() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("rerun");

        let first = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(
            first.executed,
            3 * UNITS_PER_COMBO,
            "C1 has three combos of nine units"
        );
        assert_eq!(first.cache_hits, 0);

        // Re-open from disk to prove persistence, then re-run.
        let mut reopened = ResultStore::open(&dir).unwrap();
        let second = run_sweep(&spec, &mut reopened, 2, |_| {}).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.cache_hits, 3 * UNITS_PER_COMBO);
        assert!(second.combos.iter().all(|c| c.from_cache));
        assert_eq!(
            second.results(),
            first.results(),
            "bit-identical from cache"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_change_invalidates_the_cache() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("invalidate");
        run_sweep(&spec, &mut store, 0, |_| {}).unwrap();

        let mut bigger = spec.clone();
        bigger.budget = BudgetPreset::Custom {
            warmup_cycles: 10_000,
            measure_cycles: 90_000,
        };
        let outcome = run_sweep(&bigger, &mut store, 0, |_| {}).unwrap();
        assert_eq!(outcome.cache_hits, 0, "different budget, different keys");
        assert_eq!(outcome.executed, 3 * UNITS_PER_COMBO);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn events_report_plan_and_completion() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("events");
        let mut planned = None;
        let mut finished = 0usize;
        run_sweep(&spec, &mut store, 1, |e| match e {
            SweepEvent::Planned { total, hits, .. } => planned = Some((total, hits)),
            SweepEvent::JobFinished { .. } => finished += 1,
            _ => {}
        })
        .unwrap();
        assert_eq!(planned, Some((3 * UNITS_PER_COMBO, 0)));
        assert_eq!(finished, 3 * UNITS_PER_COMBO);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_results_requires_a_complete_sweep() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("partial");
        assert!(cached_results(&spec, &store).is_none(), "empty store");
        run_sweep(&spec, &mut store, 0, |_| {}).unwrap();
        let cached = cached_results(&spec, &store).unwrap();
        assert_eq!(cached.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_run_persists_the_same_store_bytes_as_sequential() {
        let spec = tiny_spec();
        let (dir_seq, mut store_seq) = tmp_store("bytes-seq");
        let (dir_par, mut store_par) = tmp_store("bytes-par");
        let sequential = run_sweep(&spec, &mut store_seq, 1, |_| {}).unwrap();
        let parallel = run_sweep(&spec, &mut store_par, 4, |_| {}).unwrap();
        assert_eq!(sequential.results(), parallel.results());
        let seq_bytes = std::fs::read(dir_seq.join(crate::store::STORE_FILE)).unwrap();
        let par_bytes = std::fs::read(dir_par.join(crate::store::STORE_FILE)).unwrap();
        assert_eq!(
            seq_bytes, par_bytes,
            "store bytes must not depend on the worker count"
        );
        std::fs::remove_dir_all(&dir_seq).unwrap();
        std::fs::remove_dir_all(&dir_par).unwrap();
    }

    #[test]
    fn spans_record_worker_and_shard_provenance() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("provenance");
        let mut spans = Vec::new();
        run_sweep(&spec, &mut store, 2, |e| {
            if let SweepEvent::JobFinished { span, .. } = e {
                spans.push(span);
            }
        })
        .unwrap();
        assert_eq!(spans.len(), 3 * UNITS_PER_COMBO);
        for span in &spans {
            assert!(span.worker < 2, "{}: worker {}", span.label, span.worker);
            assert_eq!(span.shard, format!("worker-{}.jsonl", span.worker));
        }
        // Persisted spans carry the same provenance, and the shards
        // themselves are gone (their contents merged into the store).
        assert_eq!(store.span_count(), 3 * UNITS_PER_COMBO);
        for span in store.spans() {
            assert_eq!(span.shard, format!("worker-{}.jsonl", span.worker));
        }
        assert!(!dir.join(SHARDS_DIR).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_footer_is_order_independent_and_pinned() {
        let span =
            |label: &str, queue: u64, wall: u64, cycles: u64, instr: u64, worker: usize| UnitSpan {
                label: label.into(),
                queue_nanos: queue,
                wall_nanos: wall,
                sim_cycles: cycles,
                instructions: instr,
                worker,
                shard: format!("worker-{worker}.jsonl"),
            };
        let spans = vec![
            span("a", 0, 2_000_000_000, 3_000_000, 1_500_000, 0),
            span("b", 500_000_000, 1_500_000_000, 1_000_000, 500_000, 1),
            span("c", 2_000_000_000, 1_000_000_000, 2_000_000, 1_000_000, 0),
        ];
        let footer = telemetry_footer(&spans);
        assert_eq!(
            footer,
            "telemetry: 4.50 s simulation wall across 3 pieces · 1.33 Mcycles/s · 666.67 kops/s\n  \
             worker 0: 2 pieces, 3.00 s busy (100% utilisation)\n  \
             worker 1: 1 pieces, 1.50 s busy (50% utilisation)"
        );
        let mut reversed = spans.clone();
        reversed.reverse();
        assert_eq!(
            telemetry_footer(&reversed),
            footer,
            "the footer is a pure function of the span set, not its order"
        );
        assert_eq!(
            telemetry_footer(&[]),
            "telemetry: all units served from cache (no simulation wall time)"
        );
    }

    #[test]
    fn crash_recovery_reruns_only_missing_units() {
        let spec = tiny_spec();
        let (dir_ref, mut store_ref) = tmp_store("crash-ref");
        let reference = run_sweep(&spec, &mut store_ref, 2, |_| {}).unwrap();

        // Simulate a killed sweep: a leftover shard holding the first
        // five completed units plus the partial trailing line the crash
        // cut short.
        let (dir, mut store) = tmp_store("crash-shard");
        let text = std::fs::read_to_string(dir_ref.join(crate::store::STORE_FILE)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let shards = dir.join(SHARDS_DIR);
        std::fs::create_dir_all(&shards).unwrap();
        std::fs::write(
            shards.join("worker-0.jsonl"),
            format!("{}\n{}", lines[..5].join("\n"), "{\"key\":\"k6\",\"inp"),
        )
        .unwrap();

        let outcome = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(outcome.cache_hits, 5, "recovered units serve as hits");
        assert_eq!(outcome.executed, 3 * UNITS_PER_COMBO - 5);
        assert_eq!(outcome.results(), reference.results());
        assert!(!shards.exists(), "recovery consumed the shards");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir_ref).unwrap();
    }

    #[test]
    fn paced_siblings_never_start_before_their_baseline_finishes() {
        let mut spec = tiny_spec();
        spec.stop = StopPreset::Converged {
            window_cycles: None,
            rel_epsilon: Some(0.9),
        };
        let (dir, mut store) = tmp_store("pacing-graph");
        let mut finished: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut paced_started = 0usize;
        run_sweep(&spec, &mut store, 4, |e| match e {
            SweepEvent::JobStarted { label }
                if label.contains("[paced]") || label.contains("shared warmup, paced") =>
            {
                paced_started += 1;
                let combo = label.split(" [").next().unwrap().to_string();
                assert!(
                    finished.contains(&format!("{combo} [l2p]")),
                    "paced piece `{label}` started before its baseline finished"
                );
            }
            SweepEvent::JobFinished { label, .. } => {
                finished.insert(label);
            }
            _ => {}
        })
        .unwrap();
        assert_eq!(paced_started, 3 * (UNITS_PER_COMBO - 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failing_baseline_fails_dependents_with_a_clear_error() {
        let mut spec = tiny_spec();
        // A warm-up budget unique to this test keys the failpoint so no
        // concurrently running sweep can trip it.
        spec.budget = BudgetPreset::Custom {
            warmup_cycles: 11_000,
            measure_cycles: 66_000,
        };
        spec.stop = StopPreset::Converged {
            window_cycles: None,
            rel_epsilon: Some(0.9),
        };
        let (dir, mut store) = tmp_store("failing-baseline");
        let victim = spec.combos()[0].label();
        let mut events: Vec<SweepEvent> = Vec::new();
        *failpoint::ARMED.lock().unwrap() = Some((format!("{victim} [l2p]"), 11_000));
        let err = run_sweep(&spec, &mut store, 2, |e| events.push(e)).unwrap_err();
        *failpoint::ARMED.lock().unwrap() = None;
        match &err {
            SweepError::UnitFailed {
                label,
                error,
                skipped,
            } => {
                assert_eq!(label, &format!("{victim} [l2p]"));
                assert!(error.contains("injected failure"), "{error}");
                assert_eq!(
                    skipped.len(),
                    UNITS_PER_COMBO - 1,
                    "every paced sibling of the failed baseline: {skipped:?}"
                );
            }
            other => panic!("expected UnitFailed, got {other:?}"),
        }
        assert!(
            err.to_string().contains("failed: injected failure"),
            "{err}"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, SweepEvent::JobFailed { .. })));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, SweepEvent::JobSkipped { .. }))
                .count(),
            UNITS_PER_COMBO - 1
        );

        // The pool drained: the two healthy combos completed and
        // persisted, so the disarmed re-run re-runs only the victim.
        let outcome = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(outcome.cache_hits, 2 * UNITS_PER_COMBO);
        assert_eq!(outcome.executed, UNITS_PER_COMBO);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_warmup_sweep_batches_cc_and_caches_separately() {
        let mut spec = tiny_spec();
        spec.shared_warmup = true;
        let (dir, mut store) = tmp_store("shared-warmup");

        // The CC points of each combo run as one batched piece.
        let mut labels = Vec::new();
        let first = run_sweep(&spec, &mut store, 2, |e| {
            if let SweepEvent::JobStarted { label } = e {
                labels.push(label);
            }
        })
        .unwrap();
        assert_eq!(first.executed, 3 * UNITS_PER_COMBO);
        assert_eq!(
            labels
                .iter()
                .filter(|l| l.contains("shared warmup"))
                .count(),
            3,
            "one batched CC piece per combo: {labels:?}"
        );

        // Second shared run: all cache hits, identical results.
        let second = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.results(), first.results());

        // A canonical sweep shares the non-CC units but re-runs CC under
        // its own keys — the two modes never serve each other.
        let canonical = run_sweep(&tiny_spec(), &mut store, 2, |_| {}).unwrap();
        let cc_points = snug_core::SchemeSpec::CC_SPILL_SWEEP.len();
        assert_eq!(canonical.cache_hits, 3 * (UNITS_PER_COMBO - cc_points));
        assert_eq!(canonical.executed, 3 * cc_points);

        // Both runs agree on the baseline by construction; CC numbers
        // may differ (different warm-up semantics) but stay plausible.
        for (s, c) in first.results().iter().zip(&canonical.results()) {
            assert_eq!(s.baseline_ipcs, c.baseline_ipcs);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_warmup_families_never_mix_configs() {
        // Same combo at two budgets: the CC families must batch per
        // (combo, config), or one budget's results would silently be
        // simulated under the other's.
        let (dir, mut store) = tmp_store("shared-mixed-config");
        let combo = snug_workloads::all_combos()
            .into_iter()
            .find(|c| c.class == ComboClass::C1)
            .unwrap();
        let quick = BudgetPreset::Custom {
            warmup_cycles: 10_000,
            measure_cycles: 60_000,
        }
        .compare_config();
        let mut bigger = quick;
        bigger.plan = snug_experiments::RunPlan::fixed(10_000, 90_000);
        let jobs: Vec<UnitJob> = crate::spec::unit_jobs_for_mode(&combo, &quick, true)
            .into_iter()
            .chain(crate::spec::unit_jobs_for_mode(&combo, &bigger, true))
            .filter(|j| j.shared_warmup)
            .collect();

        let mut family_labels = 0;
        let outcomes = run_unit_jobs(&jobs, &mut store, 2, &mut |e| {
            if let SweepEvent::JobStarted { label } = e {
                if label.contains("shared warmup") {
                    family_labels += 1;
                }
            }
        })
        .unwrap();
        assert_eq!(family_labels, 2, "one family per (combo, config)");

        // Same point, different budget => different IPCs: proof the
        // second family really ran under its own config.
        let cc_pairs: Vec<(&UnitOutcome, &UnitOutcome)> = outcomes
            .iter()
            .zip(outcomes.iter().skip(jobs.len() / 2))
            .take(jobs.len() / 2)
            .collect();
        assert!(
            cc_pairs.iter().any(|(a, b)| a.run.ipcs != b.run.ipcs),
            "budgets produced distinguishable results"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn converged_sweep_caches_separately_and_reports_the_saving() {
        let mut spec = tiny_spec();
        let (dir, mut store) = tmp_store("converged");
        let fixed = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(
            fixed.simulated_cycles, fixed.budgeted_cycles,
            "fixed runs use their whole budget"
        );

        // A very loose epsilon so the tiny synthetic runs all converge:
        // 4 windows of 6 K cycles → stop at ~24 K of the 60 K window.
        spec.stop = StopPreset::Converged {
            window_cycles: None,
            rel_epsilon: Some(0.9),
        };
        let mut labels = Vec::new();
        let converged = run_sweep(&spec, &mut store, 2, |e| {
            if let SweepEvent::JobStarted { label } = e {
                labels.push(label);
            }
        })
        .unwrap();
        assert_eq!(
            converged.executed,
            3 * UNITS_PER_COMBO,
            "converged runs never reuse fixed entries"
        );
        assert_eq!(
            labels.iter().filter(|l| l.contains("[paced]")).count(),
            3 * (UNITS_PER_COMBO - 1),
            "every non-baseline unit runs paced: {labels:?}"
        );
        assert_eq!(
            labels.iter().filter(|l| l.ends_with("[l2p]")).count(),
            3,
            "one free baseline per combo: {labels:?}"
        );
        assert!(
            converged.simulated_cycles < converged.budgeted_cycles,
            "early exit saved cycles: {} vs {}",
            converged.simulated_cycles,
            converged.budgeted_cycles
        );
        // Baseline pacing: within each combo every unit measured the
        // same window — the one its L2P baseline converged at.
        for job in spec.combo_jobs() {
            let windows: std::collections::HashSet<Option<u64>> = job
                .units
                .iter()
                .map(|u| store.get_unit(&u.key).expect("unit stored").measured_cycles)
                .collect();
            assert_eq!(
                windows.len(),
                1,
                "{}: one window per combo",
                job.combo.label()
            );
        }

        // Re-running the converged sweep is all cache hits with the
        // identical saving (measured_cycles persisted per unit).
        let rerun = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(rerun.executed, 0);
        assert_eq!(rerun.simulated_cycles, converged.simulated_cycles);
        assert_eq!(rerun.results(), converged.results());

        // And the fixed entries are still served untouched.
        let fixed_again = run_sweep(&tiny_spec(), &mut store, 2, |_| {}).unwrap();
        assert_eq!(fixed_again.executed, 0);
        assert_eq!(fixed_again.results(), fixed.results());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_warmup_composes_with_converged_stops() {
        // The PR-4 follow-up: one warm-up snapshot per combo AND
        // baseline-paced converged measurement, composed instead of
        // rejected.
        let mut spec = tiny_spec();
        spec.shared_warmup = true;
        spec.stop = StopPreset::Converged {
            window_cycles: None,
            rel_epsilon: Some(0.9),
        };
        let (dir, mut store) = tmp_store("shared-converged");
        let mut labels = Vec::new();
        let outcome = run_sweep(&spec, &mut store, 2, |e| {
            if let SweepEvent::JobStarted { label } = e {
                labels.push(label);
            }
        })
        .unwrap();
        assert_eq!(outcome.executed, 3 * UNITS_PER_COMBO);
        assert_eq!(
            labels
                .iter()
                .filter(|l| l.contains("shared warmup, paced"))
                .count(),
            3,
            "one paced CC family per combo: {labels:?}"
        );
        assert!(
            outcome.simulated_cycles < outcome.budgeted_cycles,
            "early exit still saves cycles"
        );
        // Baseline pacing holds across the shared CC family too: one
        // window and one stop reason per combo, on every unit.
        for job in spec.combo_jobs() {
            let runs: Vec<&SchemeRun> = job
                .units
                .iter()
                .map(|u| store.get_unit(&u.key).expect("unit stored"))
                .collect();
            let windows: std::collections::HashSet<Option<u64>> =
                runs.iter().map(|r| r.measured_cycles).collect();
            assert_eq!(windows.len(), 1, "{}", job.combo.label());
            assert!(
                runs.iter().all(|r| r.stop_reason.is_some()),
                "every early-exit-capable unit records its stop reason"
            );
        }

        // Re-run: all cache hits; and the plain shared-warmup fixed
        // sweep still runs under its own keys.
        let rerun = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(rerun.executed, 0);
        let mut fixed_shared = tiny_spec();
        fixed_shared.shared_warmup = true;
        let fixed = run_sweep(&fixed_shared, &mut store, 2, |_| {}).unwrap();
        assert_eq!(
            fixed.executed,
            3 * UNITS_PER_COMBO,
            "converged and fixed shared runs never share keys"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shifted_reconverged_sweep_is_keyed_apart_and_records_reasons() {
        let mut spec = tiny_spec();
        // One demand-doubling shift mid-measurement (warm-up 10 K +
        // 60 K window → shift at 40 K), reconverged stop with a loose
        // epsilon so the tiny streams re-stabilise.
        spec.phase_shift = Some("40000:demand=200".into());
        spec.stop = StopPreset::Reconverged {
            window_cycles: None,
            rel_epsilon: Some(0.9),
        };
        let (dir, mut store) = tmp_store("shifted-reconverged");
        let stationary = run_sweep(&tiny_spec(), &mut store, 2, |_| {}).unwrap();
        let shifted = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(
            shifted.executed,
            3 * UNITS_PER_COMBO,
            "shifted runs never reuse stationary entries"
        );
        assert_ne!(
            shifted.results(),
            stationary.results(),
            "the workload shift changes the measured results"
        );
        // Every unit persists an explicit stop reason; baselines under
        // the re-convergence policy record per-phase plateau means.
        for job in spec.combo_jobs() {
            for unit in &job.units {
                let run = store.get_unit(&unit.key).expect("unit stored");
                assert!(run.stop_reason.is_some(), "{}", unit.label());
                if unit.point == SchemePoint::L2p {
                    assert_eq!(
                        run.plateaus.len(),
                        2,
                        "{}: one plateau per workload phase",
                        unit.label()
                    );
                }
            }
        }
        // Deterministic: a rerun is all cache hits and bit-identical.
        let rerun = run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        assert_eq!(rerun.executed, 0);
        assert_eq!(rerun.results(), shifted.results());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn converged_units_persist_stop_reasons() {
        let mut spec = tiny_spec();
        spec.stop = StopPreset::Converged {
            window_cycles: None,
            rel_epsilon: Some(0.9),
        };
        let (dir, mut store) = tmp_store("stop-reasons");
        run_sweep(&spec, &mut store, 2, |_| {}).unwrap();
        for job in spec.combo_jobs() {
            for unit in &job.units {
                let run = store.get_unit(&unit.key).expect("unit stored");
                let reason = run.stop_reason.expect("early-exit-capable run");
                // The loose epsilon converges everything here, and the
                // recorded reason must agree with the recorded window.
                assert_eq!(
                    reason == snug_experiments::StopReason::Converged,
                    run.measured_cycles.is_some(),
                    "{}",
                    unit.label()
                );
            }
        }
        // Fixed-plan entries stay bare: no stop reason at all.
        run_sweep(&tiny_spec(), &mut store, 2, |_| {}).unwrap();
        for job in tiny_spec().combo_jobs() {
            for unit in &job.units {
                assert_eq!(store.get_unit(&unit.key).unwrap().stop_reason, None);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scheme_config_edit_reruns_only_that_schemes_units() {
        let spec = tiny_spec();
        let (dir, mut store) = tmp_store("scheme-edit");
        run_sweep(&spec, &mut store, 0, |_| {}).unwrap();

        // Edit the SNUG configuration only and re-expand the unit jobs
        // by hand (the spec's presets cannot express this, which is the
        // point: the key schema must keep every non-SNUG unit cached).
        let mut edited = spec.compare_config();
        edited.snug.stage2_cycles += 1;
        let jobs: Vec<UnitJob> = spec
            .combos()
            .iter()
            .flat_map(|combo| crate::spec::unit_jobs_for(combo, &edited))
            .collect();
        let outcomes = run_unit_jobs(&jobs, &mut store, 0, &mut |_| {}).unwrap();

        let mut snug_units = 0;
        for (outcome, job) in outcomes.iter().zip(&jobs) {
            if job.point == SchemePoint::Snug {
                snug_units += 1;
                assert!(!outcome.from_cache, "every SNUG unit re-ran");
            } else {
                assert!(outcome.from_cache, "non-SNUG unit stayed cached");
            }
        }
        assert_eq!(snug_units, 3, "one SNUG unit per C1 combo");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
