//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names *what* to run — workload classes × the five
//! schemes × a run budget — and expands into concrete [`UnitJob`]s, one
//! per *(combo, scheme point)* simulation, each carrying the content
//! key that addresses its result in the store. The CLI builds specs
//! from flags; they also round-trip through JSON
//! (`snug sweep --spec file.json`).

use crate::codec::JsonCodec;
use crate::hash::content_key;
use crate::json::{JsonError, Value};
use serde::{Deserialize, Serialize};
use snug_experiments::{CompareConfig, RunPlan, SchemePoint};
use snug_workloads::{all_combos, Combo, ComboClass, PhaseSchedule};

/// Version prefix baked into every job key: bump when the simulators or
/// the stored schema change meaning, and old cache entries stop
/// matching instead of silently serving stale results.
///
/// v2 keys address one *(combo, scheme point)* simulation and hash only
/// the inputs that simulation depends on; see [`unit_key`].
pub const SCHEMA_VERSION: &str = "snug-harness/v2";

/// The v1 key prefix. v1 keys addressed a whole (combo, config) five-
/// scheme comparison; [`legacy_combo_key`] still computes them so sweeps
/// can migrate v1 store entries into v2 unit entries (see
/// `sweep::run_sweep`).
pub const SCHEMA_VERSION_V1: &str = "snug-harness/v1";

/// Which run budget (and matching SNUG stage lengths) a sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BudgetPreset {
    /// `CompareConfig::quick` — tests and smoke sweeps.
    Quick,
    /// `CompareConfig::mid` — the calibrated CI-fast paper evaluation.
    Mid,
    /// `CompareConfig::default_eval` — the paper-scale evaluation.
    Eval,
    /// Custom warm-up/measure cycles on top of the quick stage lengths.
    Custom {
        /// Unmeasured warm-up cycles.
        warmup_cycles: u64,
        /// Measured cycles.
        measure_cycles: u64,
    },
}

impl BudgetPreset {
    /// The full comparison configuration for this preset.
    pub fn compare_config(&self) -> CompareConfig {
        match *self {
            BudgetPreset::Quick => CompareConfig::quick(),
            BudgetPreset::Mid => CompareConfig::mid(),
            BudgetPreset::Eval => CompareConfig::default_eval(),
            BudgetPreset::Custom {
                warmup_cycles,
                measure_cycles,
            } => {
                let mut cfg = CompareConfig::quick();
                cfg.plan = RunPlan::fixed(warmup_cycles, measure_cycles);
                cfg
            }
        }
    }

    /// Short display name.
    pub fn label(&self) -> String {
        match self {
            BudgetPreset::Quick => "quick".into(),
            BudgetPreset::Mid => "mid".into(),
            BudgetPreset::Eval => "eval".into(),
            BudgetPreset::Custom {
                warmup_cycles,
                measure_cycles,
            } => {
                format!("custom({warmup_cycles}+{measure_cycles})")
            }
        }
    }
}

/// How a sweep's runs stop: at the fixed budget horizon, or early on
/// measured-throughput convergence (`snug sweep --until-converged`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StopPreset {
    /// Run the full measured window — the canonical methodology every
    /// committed store entry uses.
    Fixed,
    /// Stop once the rolling-window throughput stabilises; the budget
    /// becomes the ceiling. Converged runs are keyed separately from
    /// fixed runs (the plan fingerprint carries the policy), so the
    /// canonical store is never polluted.
    Converged {
        /// Sample-window length in cycles
        /// (`snug_experiments::default_window` of the budget when
        /// `None` — a tenth of the measured ceiling).
        window_cycles: Option<u64>,
        /// Relative spread threshold
        /// ([`snug_experiments::DEFAULT_REL_EPSILON`] when `None`).
        rel_epsilon: Option<f64>,
    },
    /// Stop once throughput has *re*-stabilised after the workload's
    /// last scheduled phase shift (`snug sweep --until-reconverged`,
    /// meant to pair with `--phase-shift`; without shifts it behaves as
    /// plain convergence). Keyed separately from both fixed and
    /// converged runs.
    Reconverged {
        /// Sample-window length in cycles (defaults as for
        /// [`StopPreset::Converged`]).
        window_cycles: Option<u64>,
        /// Relative spread threshold (defaults as for
        /// [`StopPreset::Converged`]).
        rel_epsilon: Option<f64>,
    },
}

impl StopPreset {
    /// Apply this preset to a budget's comparison configuration.
    pub fn apply(&self, cfg: CompareConfig) -> CompareConfig {
        match *self {
            StopPreset::Fixed => cfg,
            StopPreset::Converged {
                window_cycles,
                rel_epsilon,
            } => cfg.until_converged(window_cycles, rel_epsilon),
            StopPreset::Reconverged {
                window_cycles,
                rel_epsilon,
            } => cfg.until_reconverged(window_cycles, rel_epsilon),
        }
    }
}

/// A declarative sweep: combos (by class) × schemes × budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Human-readable sweep name (used in report headers).
    pub name: String,
    /// Classes to run; empty means all six (the full Table 8).
    pub classes: Vec<ComboClass>,
    /// Specific combo labels (e.g. `"ammp+parser+swim+mesa"`) to
    /// restrict to, applied on top of the class filter; empty means no
    /// restriction.
    pub combos: Vec<String>,
    /// The run budget.
    pub budget: BudgetPreset,
    /// The stop policy: fixed horizon or convergence-based early exit.
    pub stop: StopPreset,
    /// Canonical phase-change schedule spec (`--phase-shift`): the
    /// per-core streams re-parameterise mid-run at the scheduled
    /// cycles. `None` is the stationary canonical workload; a schedule
    /// re-keys every unit (the workload itself is different), so
    /// shifted runs never collide with canonical entries. Must be a
    /// valid schedule in [`PhaseSchedule::fingerprint`] form — the CLI
    /// and JSON paths validate and canonicalise on entry; code setting
    /// the field directly owns that contract
    /// ([`SweepSpec::phase_schedule`] panics on a string that does not
    /// parse).
    pub phase_shift: Option<String>,
    /// Measure the §4.1 CC spill sweep from one shared warm-up snapshot
    /// per combo instead of warming each point separately
    /// (`snug sweep --shared-warmup`). A faster *methodology variant*:
    /// results are close to, but not bit-identical with, the canonical
    /// per-point runs (each probability also shapes its own warm-up
    /// there), so shared-mode CC jobs are keyed separately and never mix
    /// with canonical entries.
    pub shared_warmup: bool,
}

impl SweepSpec {
    /// A sweep over everything at the given budget, fixed stop.
    pub fn full(budget: BudgetPreset) -> Self {
        SweepSpec {
            name: "full".into(),
            classes: Vec::new(),
            combos: Vec::new(),
            budget,
            stop: StopPreset::Fixed,
            phase_shift: None,
            shared_warmup: false,
        }
    }

    /// Display label covering budget, stop policy and workload shifts
    /// ("mid", "mid+converged", "mid+shifted+reconverged").
    pub fn budget_label(&self) -> String {
        let shifted = if self.phase_shift.is_some() {
            "+shifted"
        } else {
            ""
        };
        match self.stop {
            StopPreset::Fixed => format!("{}{shifted}", self.budget.label()),
            StopPreset::Converged { .. } => format!("{}{shifted}+converged", self.budget.label()),
            StopPreset::Reconverged { .. } => {
                format!("{}{shifted}+reconverged", self.budget.label())
            }
        }
    }

    /// The parsed phase schedule, if any.
    ///
    /// # Panics
    ///
    /// Panics if the stored spec string does not parse — specs built by
    /// the CLI are canonicalised at parse time, so this only trips on a
    /// hand-edited JSON spec, which `from_json` already rejects.
    pub fn phase_schedule(&self) -> Option<PhaseSchedule> {
        self.phase_shift
            .as_deref()
            // snug-lint: allow(panic-audit, "documented # Panics: specs are canonicalised at parse time and from_json rejects bad schedules")
            .map(|s| PhaseSchedule::parse(s).expect("spec carries a valid phase schedule"))
    }

    /// The combos this spec selects, in Table 8 order.
    pub fn combos(&self) -> Vec<Combo> {
        all_combos()
            .into_iter()
            .filter(|c| self.classes.is_empty() || self.classes.contains(&c.class))
            .filter(|c| self.combos.is_empty() || self.combos.contains(&c.label()))
            .collect()
    }

    /// The comparison configuration every job runs under: the budget's
    /// configuration with the stop preset applied to its plan.
    pub fn compare_config(&self) -> CompareConfig {
        self.stop.apply(self.budget.compare_config())
    }

    /// Expand into per-(combo, scheme point) unit jobs with content
    /// keys, grouped per combo in Table 8 order.
    pub fn combo_jobs(&self) -> Vec<ComboJob> {
        let config = self.compare_config();
        let phase = self.phase_schedule();
        self.combos()
            .into_iter()
            .map(|combo| ComboJob {
                units: unit_jobs_phased(&combo, &config, self.shared_warmup, phase.as_ref()),
                combo,
                config,
            })
            .collect()
    }

    /// Every unit job of the spec, flattened in run order.
    pub fn unit_jobs(&self) -> Vec<UnitJob> {
        self.combo_jobs()
            .into_iter()
            .flat_map(|c| c.units)
            .collect()
    }
}

impl JsonCodec for SweepSpec {
    fn to_json(&self) -> Value {
        let budget = match self.budget {
            BudgetPreset::Quick => Value::str("quick"),
            BudgetPreset::Mid => Value::str("mid"),
            BudgetPreset::Eval => Value::str("eval"),
            BudgetPreset::Custom {
                warmup_cycles,
                measure_cycles,
            } => Value::obj(vec![
                ("warmup_cycles", Value::num(warmup_cycles as f64)),
                ("measure_cycles", Value::num(measure_cycles as f64)),
            ]),
        };
        let mut fields = vec![
            ("name", Value::str(&self.name)),
            (
                "classes",
                Value::Arr(self.classes.iter().map(JsonCodec::to_json).collect()),
            ),
            (
                "combos",
                Value::Arr(self.combos.iter().map(|s| Value::str(s.as_str())).collect()),
            ),
            ("budget", budget),
            ("shared_warmup", Value::Bool(self.shared_warmup)),
        ];
        if let Some(spec) = &self.phase_shift {
            fields.push(("phase_shift", Value::str(spec)));
        }
        match self.stop {
            StopPreset::Fixed => {}
            StopPreset::Converged {
                window_cycles,
                rel_epsilon,
            } => {
                fields.push(("until_converged", stop_params(window_cycles, rel_epsilon)));
            }
            StopPreset::Reconverged {
                window_cycles,
                rel_epsilon,
            } => {
                fields.push(("until_reconverged", stop_params(window_cycles, rel_epsilon)));
            }
        }
        Value::obj(fields)
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let budget = match v.get("budget")? {
            Value::Str(s) if s == "quick" => BudgetPreset::Quick,
            Value::Str(s) if s == "mid" => BudgetPreset::Mid,
            Value::Str(s) if s == "eval" => BudgetPreset::Eval,
            custom @ Value::Obj(_) => BudgetPreset::Custom {
                warmup_cycles: custom.get("warmup_cycles")?.as_num()? as u64,
                measure_cycles: custom.get("measure_cycles")?.as_num()? as u64,
            },
            other => return Err(JsonError(format!("bad budget: {other:?}"))),
        };
        // `combos` is optional in the JSON form (older specs omit it).
        let combos = match v.get("combos") {
            Ok(list) => list
                .as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?,
            Err(_) => Vec::new(),
        };
        // `shared_warmup` is optional in the JSON form (older specs
        // omit it; canonical semantics are the default).
        let shared_warmup = match v.get("shared_warmup") {
            Ok(flag) => flag.as_bool()?,
            Err(_) => false,
        };
        // The stop presets are optional too: absent means the fixed
        // stop policy every pre-plan spec used.
        let stop = match (v.get("until_converged"), v.get("until_reconverged")) {
            (Ok(_), Ok(_)) => {
                return Err(JsonError(
                    "a spec cannot carry both until_converged and until_reconverged".into(),
                ))
            }
            (Ok(obj), Err(_)) => {
                let (window_cycles, rel_epsilon) = parse_stop_params(obj)?;
                StopPreset::Converged {
                    window_cycles,
                    rel_epsilon,
                }
            }
            (Err(_), Ok(obj)) => {
                let (window_cycles, rel_epsilon) = parse_stop_params(obj)?;
                StopPreset::Reconverged {
                    window_cycles,
                    rel_epsilon,
                }
            }
            (Err(_), Err(_)) => StopPreset::Fixed,
        };
        // `phase_shift` is optional: absent means the stationary
        // canonical workload. The stored string is validated and
        // canonicalised on load so bad hand-written specs fail here,
        // not mid-sweep.
        let phase_shift = match v.get("phase_shift") {
            Ok(spec) => Some(
                PhaseSchedule::parse(spec.as_str()?)
                    .map_err(|e| JsonError(format!("phase_shift: {e}")))?
                    .fingerprint(),
            ),
            Err(_) => None,
        };
        Ok(SweepSpec {
            name: v.get("name")?.as_str()?.to_string(),
            classes: v
                .get("classes")?
                .as_arr()?
                .iter()
                .map(ComboClass::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            combos,
            budget,
            stop,
            phase_shift,
            shared_warmup,
        })
    }
}

/// Render a stop preset's optional tuning knobs.
fn stop_params(window_cycles: Option<u64>, rel_epsilon: Option<f64>) -> Value {
    let mut stop = Vec::new();
    if let Some(w) = window_cycles {
        stop.push(("window_cycles", Value::num(w as f64)));
    }
    if let Some(e) = rel_epsilon {
        stop.push(("rel_epsilon", Value::num(e)));
    }
    Value::obj(stop)
}

/// Decode a stop preset's optional tuning knobs.
fn parse_stop_params(obj: &Value) -> Result<(Option<u64>, Option<f64>), JsonError> {
    Ok((
        match obj.get("window_cycles") {
            Ok(w) => Some(w.as_num()? as u64),
            Err(_) => None,
        },
        match obj.get("rel_epsilon") {
            Ok(e) => Some(e.as_num()?),
            Err(_) => None,
        },
    ))
}

/// One unit job: run a single scheme point on one combo — the cache
/// granularity of the store.
#[derive(Debug, Clone)]
pub struct UnitJob {
    /// Content key addressing this job's result in the store.
    pub key: String,
    /// The workload combination.
    pub combo: Combo,
    /// The scheme point to simulate.
    pub point: SchemePoint,
    /// The full comparison configuration (the key only covers the parts
    /// this point depends on).
    pub config: CompareConfig,
    /// The phase-change schedule this job's workload runs under
    /// (`None`: stationary canonical workload; baked into the key).
    pub phase: Option<PhaseSchedule>,
    /// Whether this job runs under the shared-warm-up variant (CC
    /// points only; baked into the key).
    pub shared_warmup: bool,
}

impl UnitJob {
    /// Display label: `"ammp+parser+swim+mesa [cc@50%]"`.
    pub fn label(&self) -> String {
        format!("{} [{}]", self.combo.label(), self.point.label())
    }
}

/// One combo's unit jobs (all of [`SchemePoint::all`]) plus the shared
/// configuration — what a sweep assembles back into a `ComboResult`.
#[derive(Debug, Clone)]
pub struct ComboJob {
    /// The workload combination.
    pub combo: Combo,
    /// The full comparison configuration.
    pub config: CompareConfig,
    /// The combo's unit jobs in run order.
    pub units: Vec<UnitJob>,
}

/// The unit jobs of one combo under one configuration (canonical
/// warm-up semantics, stationary workload).
pub fn unit_jobs_for(combo: &Combo, config: &CompareConfig) -> Vec<UnitJob> {
    unit_jobs_for_mode(combo, config, false)
}

/// The unit jobs of one combo; with `shared_warmup`, CC points carry
/// the shared-warm-up keys and marker.
pub fn unit_jobs_for_mode(
    combo: &Combo,
    config: &CompareConfig,
    shared_warmup: bool,
) -> Vec<UnitJob> {
    unit_jobs_phased(combo, config, shared_warmup, None)
}

/// The unit jobs of one combo, optionally under a phase-change
/// schedule (which re-keys every unit — the workload is different).
pub fn unit_jobs_phased(
    combo: &Combo,
    config: &CompareConfig,
    shared_warmup: bool,
    phase: Option<&PhaseSchedule>,
) -> Vec<UnitJob> {
    SchemePoint::all()
        .into_iter()
        .map(|point| {
            let shared = shared_warmup && matches!(point, SchemePoint::Cc { .. });
            UnitJob {
                key: unit_key_phased(combo, &point, config, shared, phase),
                combo: *combo,
                point,
                config: *config,
                phase: phase.cloned(),
                shared_warmup: shared,
            }
        })
        .collect()
}

/// The content key of one (combo, scheme point) simulation.
///
/// Hashes exactly the inputs that simulation depends on under
/// [`SCHEMA_VERSION`]: the combo, the point, the platform, the run
/// plan (via [`RunPlan::fingerprint`] — fixed plans render exactly as
/// the legacy `RunBudget` debug string, so pre-plan store entries keep
/// matching, while converged plans key separately), and — via
/// [`SchemePoint::param_fingerprint`] — the scheme's own parameters
/// only (`cfg.snug` for SNUG points, `cfg.dsr` for DSR points, nothing
/// extra for the rest). Editing one scheme's configuration therefore
/// invalidates only that scheme's cached jobs; every other point keeps
/// hitting.
pub fn unit_key(combo: &Combo, point: &SchemePoint, config: &CompareConfig) -> String {
    unit_key_mode(combo, point, config, false)
}

/// [`unit_key`] with the execution-mode marker: shared-warm-up CC runs
/// change the simulation semantics (warm-up happens once, with spilling
/// inhibited), so their results live under distinct keys.
pub fn unit_key_mode(
    combo: &Combo,
    point: &SchemePoint,
    config: &CompareConfig,
    shared_warmup: bool,
) -> String {
    unit_key_phased(combo, point, config, shared_warmup, None)
}

/// [`unit_key_mode`] with an optional phase-change schedule. A schedule
/// is part of the workload, so its canonical fingerprint joins the key
/// input; the stationary case contributes nothing, keeping every
/// pre-phase-schedule key byte-identical.
pub fn unit_key_phased(
    combo: &Combo,
    point: &SchemePoint,
    config: &CompareConfig,
    shared_warmup: bool,
    phase: Option<&PhaseSchedule>,
) -> String {
    let mode = if shared_warmup { "|shared-warmup" } else { "" };
    let phase = match phase {
        Some(p) => format!("|phase={}", p.fingerprint()),
        None => String::new(),
    };
    content_key(&format!(
        "{SCHEMA_VERSION}|{combo:?}|{point:?}|{:?}|{}|{}{mode}{phase}",
        config.system,
        config.plan.fingerprint(),
        point.param_fingerprint(config),
    ))
}

/// The content key of a recorded time series (`snug trace`): the unit
/// key's inputs plus the probe stride (and any phase schedule), under a
/// distinct record tag so trace entries never collide with unit
/// results.
pub fn trace_key(
    combo: &Combo,
    point: &SchemePoint,
    config: &CompareConfig,
    stride: u64,
    phase: Option<&PhaseSchedule>,
) -> String {
    let phase = match phase {
        Some(p) => format!("|phase={}", p.fingerprint()),
        None => String::new(),
    };
    content_key(&format!(
        "{SCHEMA_VERSION}|trace|{combo:?}|{point:?}|{:?}|{}|{}|stride={stride}{phase}",
        config.system,
        config.plan.fingerprint(),
        point.param_fingerprint(config),
    ))
}

/// The v1 content key of a whole (combo, config) five-scheme
/// comparison. New code never writes entries under these keys; sweeps
/// compute them to find v1 store entries worth migrating. The v1-era
/// `CompareConfig` debug string (with its `budget: RunBudget { … }`
/// field) is reconstructed from the plan fingerprint so genuinely old
/// stores keep migrating across the plan refactor; converged plans
/// never had v1 entries, so their synthetic keys simply never match.
pub fn legacy_combo_key(combo: &Combo, config: &CompareConfig) -> String {
    content_key(&format!(
        "{SCHEMA_VERSION_V1}|{combo:?}|CompareConfig {{ system: {:?}, budget: {}, snug: {:?}, dsr: {:?} }}",
        config.system,
        config.plan.fingerprint(),
        config.snug,
        config.dsr,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_class_list_selects_all_21_combos() {
        let spec = SweepSpec::full(BudgetPreset::Quick);
        assert_eq!(spec.combo_jobs().len(), 21);
        assert_eq!(
            spec.unit_jobs().len(),
            21 * SchemePoint::COUNT,
            "9 scheme points per combo"
        );
    }

    #[test]
    fn class_filter_selects_table8_subsets() {
        let spec = SweepSpec {
            name: "c5".into(),
            classes: vec![ComboClass::C5],
            combos: Vec::new(),
            budget: BudgetPreset::Quick,
            stop: StopPreset::Fixed,
            phase_shift: None,
            shared_warmup: false,
        };
        let jobs = spec.combo_jobs();
        assert_eq!(jobs.len(), 3, "Table 8: C5 has three combos");
        assert!(jobs.iter().all(|j| j.combo.class == ComboClass::C5));
        assert!(jobs.iter().all(|j| j.units.len() == SchemePoint::COUNT));
    }

    #[test]
    fn keys_differ_across_units_and_budgets() {
        let quick = SweepSpec::full(BudgetPreset::Quick);
        let keys: Vec<String> = quick.unit_jobs().into_iter().map(|j| j.key).collect();
        let unique: std::collections::HashSet<&String> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "unit keys are distinct");

        let eval = SweepSpec::full(BudgetPreset::Eval);
        assert_ne!(
            eval.unit_jobs()[0].key,
            keys[0],
            "budget is part of the key"
        );
    }

    #[test]
    fn keys_are_reproducible() {
        let a = SweepSpec::full(BudgetPreset::Quick).unit_jobs();
        let b = SweepSpec::full(BudgetPreset::Quick).unit_jobs();
        assert!(a.iter().zip(&b).all(|(x, y)| x.key == y.key));
    }

    #[test]
    fn scheme_edit_invalidates_only_that_schemes_keys() {
        let combo = all_combos()[0];
        let base = BudgetPreset::Quick.compare_config();
        let mut snug_edit = base;
        snug_edit.snug.counter_bits += 1;
        let mut dsr_edit = base;
        dsr_edit.dsr.psel_bits += 1;

        for point in SchemePoint::all() {
            let orig = unit_key(&combo, &point, &base);
            let after_snug = unit_key(&combo, &point, &snug_edit);
            let after_dsr = unit_key(&combo, &point, &dsr_edit);
            match point {
                SchemePoint::Snug => {
                    assert_ne!(orig, after_snug, "SNUG edit re-keys SNUG jobs");
                    assert_eq!(orig, after_dsr, "DSR edit leaves SNUG jobs cached");
                }
                SchemePoint::Dsr => {
                    assert_ne!(orig, after_dsr, "DSR edit re-keys DSR jobs");
                    assert_eq!(orig, after_snug, "SNUG edit leaves DSR jobs cached");
                }
                _ => {
                    assert_eq!(orig, after_snug, "{}", point.label());
                    assert_eq!(orig, after_dsr, "{}", point.label());
                }
            }
        }
    }

    #[test]
    fn shared_warmup_rekeys_only_cc_points() {
        let combo = all_combos()[0];
        let cfg = BudgetPreset::Quick.compare_config();
        let canonical = unit_jobs_for_mode(&combo, &cfg, false);
        let shared = unit_jobs_for_mode(&combo, &cfg, true);
        for (c, s) in canonical.iter().zip(&shared) {
            assert_eq!(c.point, s.point);
            match c.point {
                SchemePoint::Cc { .. } => {
                    assert_ne!(c.key, s.key, "CC points get shared-warm-up keys");
                    assert!(s.shared_warmup);
                }
                _ => {
                    assert_eq!(c.key, s.key, "non-CC points are unaffected");
                    assert!(!s.shared_warmup);
                }
            }
        }
    }

    #[test]
    fn trace_keys_are_distinct_from_unit_keys_and_stride_sensitive() {
        let combo = all_combos()[0];
        let cfg = BudgetPreset::Quick.compare_config();
        let sched = PhaseSchedule::parse("1800000:demand=200").unwrap();
        for point in SchemePoint::all() {
            let t = trace_key(&combo, &point, &cfg, 50_000, None);
            assert_ne!(t, unit_key(&combo, &point, &cfg));
            assert_ne!(t, trace_key(&combo, &point, &cfg, 25_000, None));
            assert_eq!(t, trace_key(&combo, &point, &cfg, 50_000, None));
            assert_ne!(
                t,
                trace_key(&combo, &point, &cfg, 50_000, Some(&sched)),
                "the phase schedule is part of the trace key"
            );
        }
    }

    #[test]
    fn legacy_keys_are_stable_and_distinct_from_unit_keys() {
        let combo = all_combos()[0];
        let cfg = BudgetPreset::Quick.compare_config();
        let legacy = legacy_combo_key(&combo, &cfg);
        assert_eq!(legacy, legacy_combo_key(&combo, &cfg));
        for point in SchemePoint::all() {
            assert_ne!(legacy, unit_key(&combo, &point, &cfg));
        }
    }

    #[test]
    fn custom_budget_feeds_the_config() {
        let spec = SweepSpec {
            name: "tiny".into(),
            classes: vec![ComboClass::C1],
            combos: Vec::new(),
            budget: BudgetPreset::Custom {
                warmup_cycles: 11,
                measure_cycles: 22,
            },
            stop: StopPreset::Fixed,
            phase_shift: None,
            shared_warmup: false,
        };
        let cfg = spec.compare_config();
        assert_eq!(cfg.plan.warmup_cycles, 11);
        assert_eq!(cfg.plan.measure_cycles(), 22);
    }

    #[test]
    fn converged_stop_rekeys_every_unit_and_label() {
        let mut spec = SweepSpec::full(BudgetPreset::Mid);
        let fixed_keys: Vec<String> = spec.unit_jobs().into_iter().map(|j| j.key).collect();
        spec.stop = StopPreset::Converged {
            window_cycles: None,
            rel_epsilon: None,
        };
        let converged_keys: Vec<String> = spec.unit_jobs().into_iter().map(|j| j.key).collect();
        assert!(
            fixed_keys.iter().zip(&converged_keys).all(|(f, c)| f != c),
            "converged runs never collide with canonical entries"
        );
        assert_eq!(spec.budget_label(), "mid+converged");

        // Tuning the policy re-keys again.
        spec.stop = StopPreset::Converged {
            window_cycles: Some(150_000),
            rel_epsilon: None,
        };
        let tuned: Vec<String> = spec.unit_jobs().into_iter().map(|j| j.key).collect();
        assert!(converged_keys.iter().zip(&tuned).all(|(a, b)| a != b));
    }

    #[test]
    fn phase_schedule_rekeys_every_unit_and_label() {
        let mut spec = SweepSpec::full(BudgetPreset::Mid);
        let canonical: Vec<String> = spec.unit_jobs().into_iter().map(|j| j.key).collect();
        spec.phase_shift = Some("1800000:demand=200".into());
        let shifted: Vec<String> = spec.unit_jobs().into_iter().map(|j| j.key).collect();
        assert!(
            canonical.iter().zip(&shifted).all(|(c, s)| c != s),
            "a shifted workload never collides with canonical entries"
        );
        assert_eq!(spec.budget_label(), "mid+shifted");
        assert!(spec.unit_jobs().iter().all(|j| j.phase.is_some()));

        // A different schedule re-keys again; the stationary spec keeps
        // its original keys.
        spec.phase_shift = Some("1800000:demand=300".into());
        let other: Vec<String> = spec.unit_jobs().into_iter().map(|j| j.key).collect();
        assert!(shifted.iter().zip(&other).all(|(a, b)| a != b));
        spec.phase_shift = None;
        let back: Vec<String> = spec.unit_jobs().into_iter().map(|j| j.key).collect();
        assert_eq!(back, canonical, "canonical keys are untouched");
    }

    #[test]
    fn reconverged_stop_rekeys_distinctly_from_converged() {
        let mut spec = SweepSpec::full(BudgetPreset::Mid);
        spec.stop = StopPreset::Converged {
            window_cycles: None,
            rel_epsilon: None,
        };
        let converged: Vec<String> = spec.unit_jobs().into_iter().map(|j| j.key).collect();
        spec.stop = StopPreset::Reconverged {
            window_cycles: None,
            rel_epsilon: None,
        };
        let reconverged: Vec<String> = spec.unit_jobs().into_iter().map(|j| j.key).collect();
        assert!(converged.iter().zip(&reconverged).all(|(a, b)| a != b));
        assert_eq!(spec.budget_label(), "mid+reconverged");
        spec.phase_shift = Some("1800000:demand=200".into());
        assert_eq!(spec.budget_label(), "mid+shifted+reconverged");
    }

    #[test]
    fn bad_phase_shift_specs_fail_json_decoding() {
        let mut spec = SweepSpec::full(BudgetPreset::Quick);
        spec.phase_shift = Some("1000:demand=200".into());
        let mut obj = spec.to_json().as_obj().unwrap().clone();
        obj.insert("phase_shift".into(), Value::str("1000:warp=9"));
        assert!(SweepSpec::from_json(&Value::Obj(obj)).is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        for spec in [
            SweepSpec::full(BudgetPreset::Quick),
            SweepSpec::full(BudgetPreset::Mid),
            SweepSpec::full(BudgetPreset::Eval),
            SweepSpec {
                name: "x".into(),
                classes: vec![ComboClass::C2, ComboClass::C6],
                combos: vec!["ammp+parser+swim+mesa".into()],
                budget: BudgetPreset::Custom {
                    warmup_cycles: 5,
                    measure_cycles: 9,
                },
                stop: StopPreset::Fixed,
                phase_shift: None,
                shared_warmup: true,
            },
            SweepSpec {
                name: "conv".into(),
                classes: Vec::new(),
                combos: Vec::new(),
                budget: BudgetPreset::Mid,
                stop: StopPreset::Converged {
                    window_cycles: None,
                    rel_epsilon: None,
                },
                phase_shift: None,
                shared_warmup: false,
            },
            SweepSpec {
                name: "conv-tuned".into(),
                classes: Vec::new(),
                combos: Vec::new(),
                budget: BudgetPreset::Mid,
                stop: StopPreset::Converged {
                    window_cycles: Some(150_000),
                    rel_epsilon: Some(0.25),
                },
                phase_shift: None,
                shared_warmup: false,
            },
            SweepSpec {
                name: "shifted-reconv".into(),
                classes: vec![ComboClass::C1],
                combos: Vec::new(),
                budget: BudgetPreset::Mid,
                stop: StopPreset::Reconverged {
                    window_cycles: Some(150_000),
                    rel_epsilon: None,
                },
                phase_shift: Some("1500000:near=10;1800000:demand=200@0,2".into()),
                shared_warmup: false,
            },
            SweepSpec {
                name: "shifted-shared-conv".into(),
                classes: Vec::new(),
                combos: Vec::new(),
                budget: BudgetPreset::Quick,
                stop: StopPreset::Converged {
                    window_cycles: None,
                    rel_epsilon: Some(0.5),
                },
                phase_shift: Some("400000:profile=mcf".into()),
                shared_warmup: true,
            },
        ] {
            let text = spec.to_json().render();
            let back = SweepSpec::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
    }
}
