//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names *what* to run — workload classes × the five
//! schemes × a run budget — and expands into concrete [`SweepJob`]s,
//! each carrying the content key that addresses its result in the
//! store. The CLI builds specs from flags; they also round-trip through
//! JSON (`snug sweep --spec file.json`).

use crate::codec::JsonCodec;
use crate::hash::content_key;
use crate::json::{JsonError, Value};
use serde::{Deserialize, Serialize};
use snug_experiments::{CompareConfig, RunBudget};
use snug_workloads::{all_combos, Combo, ComboClass};

/// Version prefix baked into every job key: bump when the simulators or
/// the stored schema change meaning, and old cache entries stop
/// matching instead of silently serving stale results.
pub const SCHEMA_VERSION: &str = "snug-harness/v1";

/// Which run budget (and matching SNUG stage lengths) a sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BudgetPreset {
    /// `CompareConfig::quick` — tests and smoke sweeps.
    Quick,
    /// `CompareConfig::default_eval` — the paper-scale evaluation.
    Eval,
    /// Custom warm-up/measure cycles on top of the quick stage lengths.
    Custom {
        /// Unmeasured warm-up cycles.
        warmup_cycles: u64,
        /// Measured cycles.
        measure_cycles: u64,
    },
}

impl BudgetPreset {
    /// The full comparison configuration for this preset.
    pub fn compare_config(&self) -> CompareConfig {
        match *self {
            BudgetPreset::Quick => CompareConfig::quick(),
            BudgetPreset::Eval => CompareConfig::default_eval(),
            BudgetPreset::Custom {
                warmup_cycles,
                measure_cycles,
            } => {
                let mut cfg = CompareConfig::quick();
                cfg.budget = RunBudget {
                    warmup_cycles,
                    measure_cycles,
                };
                cfg
            }
        }
    }

    /// Short display name.
    pub fn label(&self) -> String {
        match self {
            BudgetPreset::Quick => "quick".into(),
            BudgetPreset::Eval => "eval".into(),
            BudgetPreset::Custom {
                warmup_cycles,
                measure_cycles,
            } => {
                format!("custom({warmup_cycles}+{measure_cycles})")
            }
        }
    }
}

/// A declarative sweep: combos (by class) × schemes × budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Human-readable sweep name (used in report headers).
    pub name: String,
    /// Classes to run; empty means all six (the full Table 8).
    pub classes: Vec<ComboClass>,
    /// Specific combo labels (e.g. `"ammp+parser+swim+mesa"`) to
    /// restrict to, applied on top of the class filter; empty means no
    /// restriction.
    pub combos: Vec<String>,
    /// The run budget.
    pub budget: BudgetPreset,
}

impl SweepSpec {
    /// A sweep over everything at the given budget.
    pub fn full(budget: BudgetPreset) -> Self {
        SweepSpec {
            name: "full".into(),
            classes: Vec::new(),
            combos: Vec::new(),
            budget,
        }
    }

    /// The combos this spec selects, in Table 8 order.
    pub fn combos(&self) -> Vec<Combo> {
        all_combos()
            .into_iter()
            .filter(|c| self.classes.is_empty() || self.classes.contains(&c.class))
            .filter(|c| self.combos.is_empty() || self.combos.contains(&c.label()))
            .collect()
    }

    /// The comparison configuration every job runs under.
    pub fn compare_config(&self) -> CompareConfig {
        self.budget.compare_config()
    }

    /// Expand into concrete jobs with content keys.
    pub fn jobs(&self) -> Vec<SweepJob> {
        let config = self.compare_config();
        self.combos()
            .into_iter()
            .map(|combo| SweepJob {
                key: job_key(&combo, &config),
                combo,
                config,
            })
            .collect()
    }
}

impl JsonCodec for SweepSpec {
    fn to_json(&self) -> Value {
        let budget = match self.budget {
            BudgetPreset::Quick => Value::str("quick"),
            BudgetPreset::Eval => Value::str("eval"),
            BudgetPreset::Custom {
                warmup_cycles,
                measure_cycles,
            } => Value::obj(vec![
                ("warmup_cycles", Value::num(warmup_cycles as f64)),
                ("measure_cycles", Value::num(measure_cycles as f64)),
            ]),
        };
        Value::obj(vec![
            ("name", Value::str(&self.name)),
            (
                "classes",
                Value::Arr(self.classes.iter().map(JsonCodec::to_json).collect()),
            ),
            (
                "combos",
                Value::Arr(self.combos.iter().map(|s| Value::str(s.as_str())).collect()),
            ),
            ("budget", budget),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let budget = match v.get("budget")? {
            Value::Str(s) if s == "quick" => BudgetPreset::Quick,
            Value::Str(s) if s == "eval" => BudgetPreset::Eval,
            custom @ Value::Obj(_) => BudgetPreset::Custom {
                warmup_cycles: custom.get("warmup_cycles")?.as_num()? as u64,
                measure_cycles: custom.get("measure_cycles")?.as_num()? as u64,
            },
            other => return Err(JsonError(format!("bad budget: {other:?}"))),
        };
        // `combos` is optional in the JSON form (older specs omit it).
        let combos = match v.get("combos") {
            Ok(list) => list
                .as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?,
            Err(_) => Vec::new(),
        };
        Ok(SweepSpec {
            name: v.get("name")?.as_str()?.to_string(),
            classes: v
                .get("classes")?
                .as_arr()?
                .iter()
                .map(ComboClass::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            combos,
            budget,
        })
    }
}

/// One expanded job: run the five-scheme comparison on `combo` under
/// `config`.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Content key addressing this job's result in the store.
    pub key: String,
    /// The workload combination.
    pub combo: Combo,
    /// The full comparison configuration.
    pub config: CompareConfig,
}

/// The content key of one (combo, config) simulation.
///
/// Hashes the *complete* input description — every field of
/// `CompareConfig` (via its derived `Debug`, which renders all nested
/// scheme/platform/budget parameters) plus the combo — under
/// [`SCHEMA_VERSION`]. Any change to any input yields a fresh key, so a
/// re-run executes exactly the jobs whose inputs changed.
pub fn job_key(combo: &Combo, config: &CompareConfig) -> String {
    content_key(&format!("{SCHEMA_VERSION}|{combo:?}|{config:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_class_list_selects_all_21_combos() {
        assert_eq!(SweepSpec::full(BudgetPreset::Quick).jobs().len(), 21);
    }

    #[test]
    fn class_filter_selects_table8_subsets() {
        let spec = SweepSpec {
            name: "c5".into(),
            classes: vec![ComboClass::C5],
            combos: Vec::new(),
            budget: BudgetPreset::Quick,
        };
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 3, "Table 8: C5 has three combos");
        assert!(jobs.iter().all(|j| j.combo.class == ComboClass::C5));
    }

    #[test]
    fn keys_differ_across_combos_and_budgets() {
        let quick = SweepSpec::full(BudgetPreset::Quick);
        let keys: Vec<String> = quick.jobs().into_iter().map(|j| j.key).collect();
        let unique: std::collections::HashSet<&String> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "combo keys are distinct");

        let eval = SweepSpec::full(BudgetPreset::Eval);
        assert_ne!(eval.jobs()[0].key, keys[0], "budget is part of the key");
    }

    #[test]
    fn keys_are_reproducible() {
        let a = SweepSpec::full(BudgetPreset::Quick).jobs();
        let b = SweepSpec::full(BudgetPreset::Quick).jobs();
        assert!(a.iter().zip(&b).all(|(x, y)| x.key == y.key));
    }

    #[test]
    fn custom_budget_feeds_the_config() {
        let spec = SweepSpec {
            name: "tiny".into(),
            classes: vec![ComboClass::C1],
            combos: Vec::new(),
            budget: BudgetPreset::Custom {
                warmup_cycles: 11,
                measure_cycles: 22,
            },
        };
        let cfg = spec.compare_config();
        assert_eq!(cfg.budget.warmup_cycles, 11);
        assert_eq!(cfg.budget.measure_cycles, 22);
    }

    #[test]
    fn spec_round_trips_through_json() {
        for spec in [
            SweepSpec::full(BudgetPreset::Quick),
            SweepSpec::full(BudgetPreset::Eval),
            SweepSpec {
                name: "x".into(),
                classes: vec![ComboClass::C2, ComboClass::C6],
                combos: vec!["ammp+parser+swim+mesa".into()],
                budget: BudgetPreset::Custom {
                    warmup_cycles: 5,
                    measure_cycles: 9,
                },
            },
        ] {
            let text = spec.to_json().render();
            let back = SweepSpec::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
    }
}
