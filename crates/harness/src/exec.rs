//! A work-stealing parallel executor for deterministic simulation jobs.
//!
//! Jobs are pre-distributed round-robin across per-worker deques; each
//! worker drains its own deque from the front and, when empty, steals
//! from the back of its peers. Long jobs (an eval-budget combo) therefore
//! do not strand queued work behind them, and there is no central lock on
//! the hot path.
//!
//! Every job is a pure function of its index, and results are written
//! into their input slot, so the output order never depends on the
//! schedule — parallel sweeps stay bit-identical to sequential ones.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Progress events streamed to the caller while a sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEvent {
    /// A worker picked up job `index`.
    Started {
        /// Index of the job in the submitted order.
        index: usize,
        /// The worker running it.
        worker: usize,
    },
    /// Job `index` completed.
    Finished {
        /// Index of the job in the submitted order.
        index: usize,
        /// Number of jobs completed so far (including this one).
        done: usize,
        /// Total number of jobs.
        total: usize,
    },
}

/// Resolve `threads == 0` to the machine's parallelism.
pub fn effective_threads(threads: usize, jobs: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    };
    t.min(jobs).max(1)
}

/// Run `n_jobs` jobs across `threads` workers with work stealing.
///
/// `job(i)` computes the result of job `i`; `on_event` observes progress
/// (called under a lock — keep it light). Results return in job order.
pub fn run<T, F, E>(n_jobs: usize, threads: usize, job: F, on_event: E) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    E: FnMut(ExecEvent) + Send,
{
    if n_jobs == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n_jobs);

    // Round-robin pre-distribution.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n_jobs {
        queues[i % threads]
            .lock()
            .expect("queue poisoned")
            .push_back(i);
    }

    let results: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let progress = Mutex::new((on_event, 0usize));

    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let results = &results;
            let progress = &progress;
            let job = &job;
            scope.spawn(move || loop {
                // Own queue first (front), then steal from peers (back).
                let mut picked = queues[w].lock().expect("queue poisoned").pop_front();
                if picked.is_none() {
                    for peer in 1..threads {
                        let victim = (w + peer) % threads;
                        picked = queues[victim].lock().expect("queue poisoned").pop_back();
                        if picked.is_some() {
                            break;
                        }
                    }
                }
                let Some(idx) = picked else { return };
                {
                    let mut p = progress.lock().expect("progress poisoned");
                    (p.0)(ExecEvent::Started {
                        index: idx,
                        worker: w,
                    });
                }
                let out = job(idx);
                *results[idx].lock().expect("result poisoned") = Some(out);
                {
                    let mut p = progress.lock().expect("progress poisoned");
                    p.1 += 1;
                    let done = p.1;
                    (p.0)(ExecEvent::Finished {
                        index: idx,
                        done,
                        total: n_jobs,
                    });
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result poisoned")
                .expect("all queued jobs completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_job_order() {
        let out = run(64, 8, |i| i * i, |_| {});
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run(
            100,
            7,
            |i| counters[i].fetch_add(1, Ordering::SeqCst),
            |_| {},
        );
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn stealing_drains_imbalanced_queues() {
        // Worker 0's own queue holds the long jobs (round-robin puts
        // 0, 2, 4… there with threads=2); the short-job worker must
        // steal rather than idle. We can't observe idling directly, but
        // we can check all jobs finish and events are consistent.
        let mut finished = Vec::new();
        let out = run(
            10,
            2,
            |i| {
                if i % 2 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                i
            },
            |e| {
                if let ExecEvent::Finished { index, .. } = e {
                    finished.push(index);
                }
            },
        );
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        let mut sorted = finished.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..10).collect::<Vec<_>>(),
            "each job finished once"
        );
    }

    #[test]
    fn progress_counts_monotonically() {
        let mut seen = 0;
        run(
            20,
            4,
            |i| i,
            |e| {
                if let ExecEvent::Finished { done, total, .. } = e {
                    assert!(done > seen && done <= total);
                    seen = done;
                }
            },
        );
        assert_eq!(seen, 20);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run(0, 4, |i| i, |_| {});
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert!(effective_threads(0, 100) >= 1);
    }
}
