//! A dependency-aware parallel executor for deterministic simulation
//! jobs.
//!
//! Jobs form a DAG: [`run_graph`] takes, per job, the indices of the
//! jobs it depends on, and schedules a job the moment its last
//! dependency completes. Independent jobs run concurrently across
//! workers; a sweep's baseline-paced siblings therefore wait only for
//! *their* combo's baseline, not for the whole sweep (the pacing graph
//! `sweep::plan_exec_nodes` builds).
//!
//! Failure is contained, not fatal: a panicking job is caught
//! ([`JobOutcome::Failed`]) and its transitive dependents are marked
//! [`JobOutcome::Skipped`] — they count toward completion, so the
//! worker pool always drains instead of deadlocking on a dependency
//! that will never arrive.
//!
//! Every job is a pure function of its index, and results are written
//! into their input slot, so the output order never depends on the
//! schedule — parallel sweeps stay bit-identical to sequential ones.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Progress events streamed to the caller while a sweep runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecEvent {
    /// A worker picked up job `index`.
    Started {
        /// Index of the job in the submitted order.
        index: usize,
        /// The worker running it.
        worker: usize,
    },
    /// Job `index` completed.
    Finished {
        /// Index of the job in the submitted order.
        index: usize,
        /// The worker that ran it.
        worker: usize,
        /// Jobs completed so far, this one included (finished, failed
        /// and skipped jobs all count — the total always drains).
        done: usize,
        /// Total number of jobs.
        total: usize,
    },
    /// Job `index` panicked; the payload is in the returned
    /// [`JobOutcome::Failed`] and in `error` here.
    Failed {
        /// Index of the job in the submitted order.
        index: usize,
        /// The worker that ran it.
        worker: usize,
        /// The panic payload, rendered.
        error: String,
        /// Jobs completed so far (see [`ExecEvent::Finished::done`]).
        done: usize,
        /// Total number of jobs.
        total: usize,
    },
    /// Job `index` was skipped because a job it (transitively) depends
    /// on failed.
    Skipped {
        /// Index of the skipped job.
        index: usize,
        /// The failed ancestor that doomed it.
        failed_dep: usize,
        /// Jobs completed so far (see [`ExecEvent::Finished::done`]).
        done: usize,
        /// Total number of jobs.
        total: usize,
    },
}

/// The terminal state of one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Done(T),
    /// The job panicked; the payload, rendered.
    Failed(String),
    /// The job never ran: a dependency failed.
    Skipped {
        /// The failed ancestor that doomed it.
        failed_dep: usize,
    },
}

impl<T> JobOutcome<T> {
    /// The result, if the job completed.
    pub fn done(self) -> Option<T> {
        match self {
            JobOutcome::Done(t) => Some(t),
            _ => None,
        }
    }
}

/// Resolve `threads == 0` to the machine's parallelism.
pub fn effective_threads(threads: usize, jobs: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    };
    t.min(jobs).max(1)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Scheduler state shared by the workers, under one mutex: jobs are
/// seconds-long simulations, so the lock is never contended on the
/// scale that matters.
struct Sched {
    ready: VecDeque<usize>,
    /// Unmet-dependency count per job.
    waiting: Vec<usize>,
    running: usize,
    completed: usize,
}

/// Run `n_jobs` jobs across `threads` workers, honouring `deps`:
/// `deps[i]` lists the jobs that must complete before job `i` starts.
///
/// `job(i, w)` computes the result of job `i` on worker `w` (the worker
/// index is stable for the call's duration — per-worker resources like
/// shard files key off it); `on_event` observes progress (called under
/// a lock — keep it light). Outcomes return in job order. Panics are
/// caught per job: the job reports [`JobOutcome::Failed`] and its
/// transitive dependents report [`JobOutcome::Skipped`] without running.
///
/// Panics if `deps` references an out-of-range job or contains a cycle
/// (both are caller bugs, detected before any job runs).
pub fn run_graph<T, F, E>(
    n_jobs: usize,
    deps: &[Vec<usize>],
    threads: usize,
    job: F,
    on_event: E,
) -> Vec<JobOutcome<T>>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    E: FnMut(ExecEvent) + Send,
{
    assert_eq!(deps.len(), n_jobs, "one dependency list per job");
    if n_jobs == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n_jobs);

    // Invert the dependency lists and reject cycles up front (Kahn's
    // algorithm): with a DAG guaranteed, a worker finding the ready
    // queue empty while nothing runs is unreachable.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_jobs];
    let mut waiting = vec![0usize; n_jobs];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            assert!(d < n_jobs, "job {i} depends on out-of-range job {d}");
            assert_ne!(d, i, "job {i} depends on itself");
            dependents[d].push(i);
            waiting[i] += 1;
        }
    }
    {
        let mut counts = waiting.clone();
        let mut frontier: Vec<usize> = (0..n_jobs).filter(|&i| counts[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = frontier.pop() {
            seen += 1;
            for &d in &dependents[i] {
                counts[d] -= 1;
                if counts[d] == 0 {
                    frontier.push(d);
                }
            }
        }
        assert_eq!(seen, n_jobs, "dependency graph contains a cycle");
    }

    let ready: VecDeque<usize> = (0..n_jobs).filter(|&i| waiting[i] == 0).collect();
    let sched = Mutex::new(Sched {
        ready,
        waiting,
        running: 0,
        completed: 0,
    });
    let wake = Condvar::new();
    let outcomes: Vec<Mutex<Option<JobOutcome<T>>>> =
        (0..n_jobs).map(|_| Mutex::new(None)).collect();
    // Lock poisoning: job panics are caught below via catch_unwind, so
    // a poisoned lock can only mean the progress callback panicked on
    // another worker. Recover the guard and keep draining the pool —
    // cascading one callback panic across every worker would abandon
    // results that are already computed.
    let progress = Mutex::new(on_event);
    let emit = |event: ExecEvent| {
        let mut f = progress.lock().unwrap_or_else(PoisonError::into_inner);
        (*f)(event)
    };

    std::thread::scope(|scope| {
        for w in 0..threads {
            let sched = &sched;
            let wake = &wake;
            let outcomes = &outcomes;
            let dependents = &dependents;
            let job = &job;
            let emit = &emit;
            scope.spawn(move || loop {
                // Claim the next runnable job, or exit once everything
                // has drained.
                let idx = {
                    let mut s = sched.lock().unwrap_or_else(PoisonError::into_inner);
                    loop {
                        if s.completed == n_jobs {
                            wake.notify_all();
                            return;
                        }
                        if let Some(idx) = s.ready.pop_front() {
                            s.running += 1;
                            break idx;
                        }
                        s = wake.wait(s).unwrap_or_else(PoisonError::into_inner);
                    }
                };
                emit(ExecEvent::Started {
                    index: idx,
                    worker: w,
                });
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(idx, w)));
                // Record the outcome and unlock (or doom) the
                // dependents. Events are emitted while still holding the
                // scheduler lock so `done` counts arrive monotonically.
                let mut s = sched.lock().unwrap_or_else(PoisonError::into_inner);
                s.running -= 1;
                s.completed += 1;
                match result {
                    Ok(out) => {
                        *outcomes[idx].lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(JobOutcome::Done(out));
                        emit(ExecEvent::Finished {
                            index: idx,
                            worker: w,
                            done: s.completed,
                            total: n_jobs,
                        });
                        for &dep in &dependents[idx] {
                            // A dependent can already be terminal —
                            // skipped through another, failed ancestor.
                            if outcomes[dep]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .is_some()
                            {
                                continue;
                            }
                            s.waiting[dep] -= 1;
                            if s.waiting[dep] == 0 {
                                s.ready.push_back(dep);
                            }
                        }
                    }
                    Err(payload) => {
                        let error = panic_message(payload);
                        *outcomes[idx].lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(JobOutcome::Failed(error.clone()));
                        emit(ExecEvent::Failed {
                            index: idx,
                            worker: w,
                            error,
                            done: s.completed,
                            total: n_jobs,
                        });
                        // Doom every transitive dependent: they count as
                        // completed so the pool drains instead of
                        // waiting on a result that will never arrive.
                        let mut stack: Vec<usize> = dependents[idx].clone();
                        while let Some(d) = stack.pop() {
                            let mut slot =
                                outcomes[d].lock().unwrap_or_else(PoisonError::into_inner);
                            if slot.is_some() {
                                continue;
                            }
                            *slot = Some(JobOutcome::Skipped { failed_dep: idx });
                            drop(slot);
                            s.completed += 1;
                            emit(ExecEvent::Skipped {
                                index: d,
                                failed_dep: idx,
                                done: s.completed,
                                total: n_jobs,
                            });
                            stack.extend(dependents[d].iter().copied());
                        }
                    }
                }
                wake.notify_all();
            });
        }
    });

    outcomes
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // snug-lint: allow(panic-audit, "pool drains every job to a terminal outcome before scope exit; an empty slot is a scheduler bug worth crashing on")
                .expect("every submitted job reached a terminal state")
        })
        .collect()
}

/// Run `n_jobs` independent jobs across `threads` workers
/// ([`run_graph`] with no dependencies).
///
/// `job(i)` computes the result of job `i`; `on_event` observes
/// progress. Results return in job order. A panicking job re-panics
/// here, preserving the historical fail-fast contract.
pub fn run<T, F, E>(n_jobs: usize, threads: usize, job: F, on_event: E) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    E: FnMut(ExecEvent) + Send,
{
    let deps = vec![Vec::new(); n_jobs];
    run_graph(n_jobs, &deps, threads, |i, _w| job(i), on_event)
        .into_iter()
        .map(|outcome| match outcome {
            JobOutcome::Done(t) => t,
            // snug-lint: allow(panic-audit, "run() documents fail-fast: a panicking job re-panics on the caller thread")
            JobOutcome::Failed(msg) => panic!("executor job panicked: {msg}"),
            // snug-lint: allow(panic-audit, "deps are empty, so no job can be skipped")
            JobOutcome::Skipped { .. } => unreachable!("independent jobs are never skipped"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_job_order() {
        let out = run(64, 8, |i| i * i, |_| {});
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run(
            100,
            7,
            |i| counters[i].fetch_add(1, Ordering::SeqCst),
            |_| {},
        );
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn long_jobs_do_not_strand_queued_work() {
        let mut finished = Vec::new();
        let out = run(
            10,
            2,
            |i| {
                if i % 2 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                i
            },
            |e| {
                if let ExecEvent::Finished { index, .. } = e {
                    finished.push(index);
                }
            },
        );
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        let mut sorted = finished.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..10).collect::<Vec<_>>(),
            "each job finished once"
        );
    }

    #[test]
    fn progress_counts_monotonically() {
        let mut seen = 0;
        run(
            20,
            4,
            |i| i,
            |e| {
                if let ExecEvent::Finished { done, total, .. } = e {
                    assert!(done > seen && done <= total);
                    seen = done;
                }
            },
        );
        assert_eq!(seen, 20);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run(0, 4, |i| i, |_| {});
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert!(effective_threads(0, 100) >= 1);
    }

    #[test]
    fn dependencies_gate_execution_order() {
        // 0 and 1 are free; 2 waits on both; 3 waits on 2. Record the
        // order jobs *start* in — a dependent must start strictly after
        // its dependencies finish, on any worker count.
        for threads in [1, 2, 4] {
            let deps = vec![vec![], vec![], vec![0, 1], vec![2]];
            let started = Mutex::new(Vec::new());
            let finished = Mutex::new(Vec::new());
            let outcomes = run_graph(
                4,
                &deps,
                threads,
                |i, _w| {
                    started.lock().unwrap().push(i);
                    i * 10
                },
                |e| {
                    if let ExecEvent::Finished { index, .. } = e {
                        finished.lock().unwrap().push(index);
                    }
                },
            );
            assert_eq!(
                outcomes,
                vec![
                    JobOutcome::Done(0),
                    JobOutcome::Done(10),
                    JobOutcome::Done(20),
                    JobOutcome::Done(30)
                ]
            );
            let finished = finished.into_inner().unwrap();
            let started = started.into_inner().unwrap();
            let fin_pos = |i: usize| finished.iter().position(|&x| x == i).unwrap();
            let start_pos = |i: usize| started.iter().position(|&x| x == i).unwrap();
            assert!(fin_pos(0) < start_pos(2) || fin_pos(1) < start_pos(2) || threads == 1);
            assert!(fin_pos(2) < fin_pos(3), "3 ran after its dependency");
        }
    }

    #[test]
    fn failed_jobs_skip_their_transitive_dependents_without_deadlock() {
        // 1 panics; 2 depends on 1, 3 depends on 2 (transitively
        // doomed), 0 and 4 are free and must still run. The pool drains
        // and every job reaches a terminal state.
        let deps = vec![vec![], vec![], vec![1], vec![2], vec![]];
        let mut events = Vec::new();
        let outcomes = run_graph(
            5,
            &deps,
            4,
            |i, _w| {
                if i == 1 {
                    panic!("baseline exploded");
                }
                i
            },
            |e| events.push(e),
        );
        assert_eq!(outcomes[0], JobOutcome::Done(0));
        assert_eq!(outcomes[4], JobOutcome::Done(4));
        assert_eq!(outcomes[1], JobOutcome::Failed("baseline exploded".into()));
        assert_eq!(outcomes[2], JobOutcome::Skipped { failed_dep: 1 });
        assert_eq!(outcomes[3], JobOutcome::Skipped { failed_dep: 1 });
        let max_done = events
            .iter()
            .map(|e| match e {
                ExecEvent::Finished { done, .. }
                | ExecEvent::Failed { done, .. }
                | ExecEvent::Skipped { done, .. } => *done,
                ExecEvent::Started { .. } => 0,
            })
            .max();
        assert_eq!(max_done, Some(5), "the count drains to the total");
        assert!(events.iter().any(|e| matches!(
            e,
            ExecEvent::Skipped {
                index: 3,
                failed_dep: 1,
                ..
            }
        )));
    }

    #[test]
    fn diamond_dependents_with_one_failed_parent_are_skipped_once() {
        // 2 depends on both 0 (ok) and 1 (fails): it must be skipped
        // exactly once and never run, regardless of completion order.
        for _ in 0..20 {
            let ran = AtomicUsize::new(0);
            let deps = vec![vec![], vec![], vec![0, 1]];
            let outcomes = run_graph(
                3,
                &deps,
                2,
                |i, _w| {
                    if i == 1 {
                        panic!("no");
                    }
                    if i == 2 {
                        ran.fetch_add(1, Ordering::SeqCst);
                    }
                    i
                },
                |_| {},
            );
            assert_eq!(outcomes[2], JobOutcome::Skipped { failed_dep: 1 });
            assert_eq!(ran.load(Ordering::SeqCst), 0, "skipped job never ran");
        }
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn dependency_cycles_are_rejected_up_front() {
        let deps = vec![vec![1], vec![0]];
        run_graph(2, &deps, 2, |i, _w| i, |_| {});
    }

    #[test]
    fn worker_index_is_in_range() {
        let threads = 3;
        let deps = vec![Vec::new(); 12];
        let outcomes = run_graph(12, &deps, threads, |_i, w| w, |_| {});
        assert!(outcomes
            .into_iter()
            .all(|o| matches!(o, JobOutcome::Done(w) if w < threads)));
    }
}
