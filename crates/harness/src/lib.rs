//! # snug-harness — experiment orchestration for the SNUG reproduction
//!
//! The seed repository reproduced every figure with one-off binaries
//! whose results died on stdout. This crate turns those experiments into
//! a reusable pipeline:
//!
//! * [`spec`] — declarative [`spec::SweepSpec`]s (classes × schemes ×
//!   budget) that expand into content-keyed jobs;
//! * [`exec`] — a work-stealing parallel executor for deterministic
//!   simulation jobs (subsumes `snug_experiments::runner` for sweeps);
//! * [`store`] — the content-addressed JSONL result cache under
//!   `results/`: re-running a sweep only executes jobs whose inputs
//!   changed, and cached results decode bit-identically;
//! * [`sweep`] — orchestration tying the three together with streamed
//!   progress;
//! * [`report`] — Figures 9–11 / Table 8 renderings (Markdown + CSV)
//!   from stored results;
//! * [`json`] / [`codec`] / [`hash`] — the self-contained persistence
//!   substrate (no external JSON or hashing dependency).
//!
//! The `snug` binary (this crate's `src/bin/snug.rs`) exposes it all as
//! `snug characterize | compare | sweep | report`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod exec;
pub mod hash;
pub mod json;
pub mod report;
pub mod spec;
pub mod store;
pub mod sweep;

pub use codec::JsonCodec;
pub use exec::ExecEvent;
pub use report::{render_markdown, report_tables, write_report};
pub use spec::{job_key, BudgetPreset, SweepJob, SweepSpec, SCHEMA_VERSION};
pub use store::{ResultStore, StoreError};
pub use sweep::{cached_results, run_sweep, JobOutcome, SweepEvent, SweepOutcome};
