//! # snug-harness — experiment orchestration for the SNUG reproduction
//!
//! The seed repository reproduced every figure with one-off binaries
//! whose results died on stdout. This crate turns those experiments into
//! a reusable pipeline:
//!
//! * [`spec`] — declarative [`spec::SweepSpec`]s (classes × schemes ×
//!   budget) that expand into content-keyed jobs;
//! * [`exec`] — a work-stealing parallel executor for deterministic
//!   simulation jobs (subsumes `snug_experiments::runner` for sweeps);
//! * [`store`] — the content-addressed JSONL result cache under
//!   `results/`: re-running a sweep only executes jobs whose inputs
//!   changed, and cached results decode bit-identically;
//! * [`sweep`] — orchestration tying the three together with streamed
//!   progress and v1→v2 store migration;
//! * [`report`] — Figures 9–11 / Table 8 renderings (Markdown + CSV)
//!   from stored results;
//! * [`experiments_md`] — the committed, regenerable `EXPERIMENTS.md`
//!   (full paper evaluation + provenance) and its staleness check;
//! * [`json`] / [`codec`] / [`hash`] — the self-contained persistence
//!   substrate (no external JSON or hashing dependency).
//!
//! Jobs are cached per *(combo, scheme point)*: the 21 Table 8
//! combinations × the 9 points (L2P, L2S, the five-probability CC
//! sweep, DSR, SNUG) expand to 189 individually content-addressed
//! simulations, so a scheme-parameter edit re-runs only that scheme's
//! jobs and every CC spill point caches independently.
//!
//! The `snug` binary (this crate's `src/bin/snug.rs`) exposes it all as
//! `snug characterize | compare | sweep | report`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codec;
pub mod exec;
pub mod experiments_md;
pub mod hash;
pub mod json;
pub mod report;
pub mod spec;
pub mod store;
pub mod sweep;

pub use codec::JsonCodec;
pub use exec::{run_graph, ExecEvent, JobOutcome};
pub use experiments_md::{
    check_experiments_md, eval_converged_spec, render_experiments_eval_md, render_experiments_md,
    CheckOutcome, EVAL_CONVERGED_REL_EPSILON, EVAL_CONVERGED_WINDOW, EXPERIMENTS_EVAL_FILE,
};
pub use report::{
    render_markdown, report_tables, stop_summary_table, write_report, CEILING_FOOTNOTE,
};
pub use spec::{
    legacy_combo_key, trace_key, unit_jobs_for, unit_jobs_for_mode, unit_jobs_phased, unit_key,
    unit_key_mode, unit_key_phased, BudgetPreset, ComboJob, StopPreset, SweepSpec, UnitJob,
    SCHEMA_VERSION, SCHEMA_VERSION_V1,
};
pub use store::{MergeStats, ResultStore, StoreError, StoredResult, SHARDS_DIR, SPANS_FILE};
pub use sweep::{
    cached_results, fmt_eng, run_sweep, run_unit_jobs, telemetry_footer, ComboOutcome, SweepError,
    SweepEvent, SweepOutcome, UnitOutcome, UnitSpan,
};
