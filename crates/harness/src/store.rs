//! The content-addressed result store.
//!
//! Results persist as JSONL under a directory (default `results/`): one
//! line per completed unit job, keyed by the job's content hash
//! ([`crate::spec::unit_key`]). Loading tolerates a missing file (empty
//! store) and rejects corrupt lines loudly rather than serving bad data.
//! Appends go straight to disk, so an interrupted sweep keeps everything
//! it finished.
//!
//! ## Files
//!
//! * [`STORE_FILE`] (`store.jsonl`) — the deterministic truth: unit,
//!   series and legacy combo entries. Byte-identical for `--jobs 1` and
//!   `--jobs N` sweeps, because sweeps merge results into it in job
//!   order at sweep end.
//! * [`SPANS_FILE`] (`spans.jsonl`) — wall-clock execution telemetry
//!   ([`UnitSpan`]), kept out of `store.jsonl` precisely because wall
//!   time is *not* deterministic. Span entries found in a legacy
//!   `store.jsonl` still decode; [`ResultStore::compact`] migrates them
//!   to the sidecar.
//! * [`SHARDS_DIR`]`/worker-N.jsonl` — per-worker append-only shards a
//!   running sweep writes for crash durability; merged into the main
//!   store and deleted at sweep end. Leftover shards (a killed sweep)
//!   are recovered through [`ResultStore::recover_shards`] under the
//!   usual merge semantics.
//!
//! ## Key-schema versions
//!
//! * **v2** (current, [`crate::spec::SCHEMA_VERSION`]) — one line per
//!   *(combo, scheme point)* simulation, value a
//!   [`snug_experiments::SchemeRun`] under the `"unit"` field.
//! * **v1** (legacy) — one line per whole (combo, config) five-scheme
//!   comparison, value a [`ComboResult`] under the `"result"` field.
//!   v1 lines are still decoded so sweeps can migrate them (see
//!   `sweep::run_sweep`); new code never writes them.

use crate::codec::JsonCodec;
use crate::json::{parse, JsonError, Value};
use crate::sweep::UnitSpan;
use snug_experiments::{ComboResult, SchemeRun, TraceSeries};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File name of the JSONL store inside the results directory.
pub const STORE_FILE: &str = "store.jsonl";

/// File name of the execution-telemetry sidecar inside the results
/// directory. Spans live here so `store.jsonl` stays byte-deterministic
/// across worker counts and re-runs.
pub const SPANS_FILE: &str = "spans.jsonl";

/// Directory (inside the results directory) holding the per-worker
/// shard files of an in-flight sweep.
pub const SHARDS_DIR: &str = "shards";

/// What a store entry holds: the unit of the current schema, a recorded
/// probe time series, or a whole combo result from a v1 store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoredResult {
    /// v2: one (combo, scheme point) simulation.
    Unit(SchemeRun),
    /// v2: a recorded per-period time series (`snug trace`).
    Series(TraceSeries),
    /// v2: wall-clock telemetry for one executed sweep piece.
    Span(UnitSpan),
    /// v1 legacy: a whole assembled five-scheme comparison.
    Combo(ComboResult),
}

/// One stored line: the key, a little human-readable context, and the
/// full result.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Content key of the producing job.
    pub key: String,
    /// The input description that was hashed into the key (debug form,
    /// for humans auditing the store).
    pub inputs: String,
    /// The cached result.
    pub result: StoredResult,
}

impl StoreEntry {
    fn to_json(&self) -> Value {
        let payload = match &self.result {
            StoredResult::Unit(run) => ("unit", run.to_json()),
            StoredResult::Series(series) => ("series", series.to_json()),
            StoredResult::Span(span) => ("span", span.to_json()),
            StoredResult::Combo(result) => ("result", result.to_json()),
        };
        Value::obj(vec![
            ("key", Value::str(&self.key)),
            ("inputs", Value::str(&self.inputs)),
            payload,
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let result = if let Ok(unit) = v.get("unit") {
            StoredResult::Unit(SchemeRun::from_json(unit)?)
        } else if let Ok(series) = v.get("series") {
            StoredResult::Series(TraceSeries::from_json(series)?)
        } else if let Ok(span) = v.get("span") {
            StoredResult::Span(UnitSpan::from_json(span)?)
        } else {
            StoredResult::Combo(ComboResult::from_json(v.get("result")?)?)
        };
        Ok(StoreEntry {
            key: v.get("key")?.as_str()?.to_string(),
            inputs: v.get("inputs")?.as_str()?.to_string(),
            result,
        })
    }

    /// The entry rendered as one JSONL line (no trailing newline) — the
    /// exact bytes `insert` appends, shared with the shard writers so a
    /// shard line and a store line for the same result are identical.
    pub(crate) fn render_line(&self) -> String {
        self.to_json().render()
    }
}

/// Load one JSONL file of store entries into `entries`, returning the
/// number of intact data lines. A partial trailing line (crash or full
/// disk during append) is dropped and truncated so the next append
/// starts on a clean line; corruption anywhere else stays fatal. A
/// missing file is an empty store.
fn load_jsonl(
    path: &Path,
    entries: &mut BTreeMap<String, StoreEntry>,
) -> Result<usize, StoreError> {
    let mut file_lines = 0usize;
    match fs::read_to_string(path) {
        Ok(text) => {
            let lines: Vec<&str> = text.lines().collect();
            let mut offset = 0u64;
            for (lineno, line) in lines.iter().enumerate() {
                let line_start = offset;
                offset += line.len() as u64 + 1;
                if line.trim().is_empty() {
                    continue;
                }
                match parse(line).and_then(|v| StoreEntry::from_json(&v)) {
                    Ok(entry) => {
                        entries.insert(entry.key.clone(), entry);
                        file_lines += 1;
                    }
                    Err(_) if lineno + 1 == lines.len() => {
                        fs::OpenOptions::new()
                            .write(true)
                            .open(path)
                            .and_then(|f| f.set_len(line_start))
                            .map_err(|e| {
                                StoreError::Io(path.display().to_string(), e.to_string())
                            })?;
                        break;
                    }
                    Err(e) => return Err(StoreError::corrupt(path, lineno, e)),
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(StoreError::Io(path.display().to_string(), e.to_string())),
    }
    Ok(file_lines)
}

/// A per-worker append-only shard file under `results/shards/`. Workers
/// write each completed unit entry here as it finishes (the crash-
/// durability path); the sweep merges the results into the main store
/// in deterministic job order at sweep end and deletes the shards. The
/// file is created lazily, so idle workers leave nothing behind.
#[derive(Debug)]
pub(crate) struct ShardWriter {
    path: PathBuf,
    file: Option<fs::File>,
}

impl ShardWriter {
    /// A writer for the shard at `path` (nothing touches the
    /// filesystem until the first append).
    pub(crate) fn new(path: PathBuf) -> Self {
        ShardWriter { path, file: None }
    }

    /// Whether any entry has been appended (i.e. the file exists).
    pub(crate) fn written(&self) -> bool {
        self.file.is_some()
    }

    /// The shard file's path.
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Append one entry as a JSONL line and flush it to disk.
    pub(crate) fn append(&mut self, entry: &StoreEntry) -> Result<(), StoreError> {
        let io_err =
            |p: &Path, e: std::io::Error| StoreError::Io(p.display().to_string(), e.to_string());
        let file = match self.file.as_mut() {
            Some(file) => file,
            None => {
                if let Some(parent) = self.path.parent() {
                    fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
                }
                let file = fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                    .map_err(|e| io_err(&self.path, e))?;
                self.file.insert(file)
            }
        };
        writeln!(file, "{}", entry.render_line()).map_err(|e| io_err(&self.path, e))
    }
}

/// The persistent, content-addressed result cache.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    entries: BTreeMap<String, StoreEntry>,
    /// Data lines currently in the JSONL file (blank lines excluded).
    /// Exceeds `entries.len()` when duplicate keys have accumulated —
    /// what [`ResultStore::compact`] reclaims.
    file_lines: usize,
}

impl ResultStore {
    /// Open (or create) the store under `dir`: the main `store.jsonl`
    /// plus the `spans.jsonl` telemetry sidecar.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        let mut entries = BTreeMap::new();
        let mut file_lines = 0usize;
        for file in [STORE_FILE, SPANS_FILE] {
            file_lines += load_jsonl(&dir.join(file), &mut entries)?;
        }
        Ok(ResultStore {
            dir,
            entries,
            file_lines,
        })
    }

    /// The directory this store persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store has no cached results.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a cached result by content key.
    pub fn get(&self, key: &str) -> Option<&StoredResult> {
        self.entries.get(key).map(|e| &e.result)
    }

    /// Look up a v2 unit result by content key.
    pub fn get_unit(&self, key: &str) -> Option<&SchemeRun> {
        match self.get(key) {
            Some(StoredResult::Unit(run)) => Some(run),
            _ => None,
        }
    }

    /// Look up a v1 legacy combo result by content key.
    pub fn get_legacy_combo(&self, key: &str) -> Option<&ComboResult> {
        match self.get(key) {
            Some(StoredResult::Combo(result)) => Some(result),
            _ => None,
        }
    }

    /// Look up a recorded time series by content key.
    pub fn get_series(&self, key: &str) -> Option<&TraceSeries> {
        match self.get(key) {
            Some(StoredResult::Series(series)) => Some(series),
            _ => None,
        }
    }

    /// Look up an execution span by content key.
    pub fn get_span(&self, key: &str) -> Option<&UnitSpan> {
        match self.get(key) {
            Some(StoredResult::Span(span)) => Some(span),
            _ => None,
        }
    }

    /// Every stored execution span, in key order.
    pub fn spans(&self) -> Vec<&UnitSpan> {
        self.entries
            .values()
            .filter_map(|e| match &e.result {
                StoredResult::Span(span) => Some(span),
                _ => None,
            })
            .collect()
    }

    /// Data lines currently in the JSONL file. Exceeds
    /// [`ResultStore::len`] when superseded duplicates have accumulated
    /// (schema bumps, re-runs) — [`ResultStore::compact`] reclaims them.
    pub fn file_lines(&self) -> usize {
        self.file_lines
    }

    /// Rewrite the JSONL files keeping only the newest entry per key
    /// (`snug store gc`). The in-memory map already holds exactly those
    /// — on load, later lines supersede earlier ones — so compaction
    /// writes it back in key order through a temporary file and an
    /// atomic rename. Span entries are written to the `spans.jsonl`
    /// sidecar (migrating any that a legacy `store.jsonl` still holds
    /// inline). Idempotent: a second pass drops nothing. Returns
    /// `(kept, dropped)` line counts.
    pub fn compact(&mut self) -> Result<(usize, usize), StoreError> {
        let kept = self.entries.len();
        let dropped = self.file_lines.saturating_sub(kept);
        let store_path = self.dir.join(STORE_FILE);
        let spans_path = self.dir.join(SPANS_FILE);
        if self.entries.is_empty() && !store_path.exists() && !spans_path.exists() {
            return Ok((0, 0));
        }
        let io_err =
            |p: &Path, e: std::io::Error| StoreError::Io(p.display().to_string(), e.to_string());
        fs::create_dir_all(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        let mut store_text = String::new();
        let mut spans_text = String::new();
        for entry in self.entries.values() {
            let text = match entry.result {
                StoredResult::Span(_) => &mut spans_text,
                _ => &mut store_text,
            };
            text.push_str(&entry.render_line());
            text.push('\n');
        }
        let tmp = self.dir.join(format!("{STORE_FILE}.tmp"));
        fs::write(&tmp, &store_text).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &store_path).map_err(|e| io_err(&store_path, e))?;
        if spans_text.is_empty() {
            if spans_path.exists() {
                fs::remove_file(&spans_path).map_err(|e| io_err(&spans_path, e))?;
            }
        } else {
            let tmp = self.dir.join(format!("{SPANS_FILE}.tmp"));
            fs::write(&tmp, &spans_text).map_err(|e| io_err(&tmp, e))?;
            fs::rename(&tmp, &spans_path).map_err(|e| io_err(&spans_path, e))?;
        }
        self.file_lines = kept;
        Ok((kept, dropped))
    }

    /// Number of v2 unit entries.
    pub fn unit_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.result, StoredResult::Unit(_)))
            .count()
    }

    /// Number of v1 legacy entries still in the store.
    pub fn legacy_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.result, StoredResult::Combo(_)))
            .count()
    }

    /// Number of recorded time-series entries.
    pub fn series_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.result, StoredResult::Series(_)))
            .count()
    }

    /// Number of execution-span entries.
    pub fn span_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.result, StoredResult::Span(_)))
            .count()
    }

    /// Insert a fresh unit result and append it to the JSONL file.
    pub fn insert_unit(
        &mut self,
        key: String,
        inputs: String,
        run: SchemeRun,
    ) -> Result<(), StoreError> {
        self.insert(key, inputs, StoredResult::Unit(run))
    }

    /// Insert a fresh result and append it to the backing JSONL file —
    /// `spans.jsonl` for telemetry spans, `store.jsonl` for everything
    /// else.
    pub fn insert(
        &mut self,
        key: String,
        inputs: String,
        result: StoredResult,
    ) -> Result<(), StoreError> {
        let file = match result {
            StoredResult::Span(_) => SPANS_FILE,
            _ => STORE_FILE,
        };
        let entry = StoreEntry {
            key: key.clone(),
            inputs,
            result,
        };
        let line = entry.render_line();
        fs::create_dir_all(&self.dir)
            .map_err(|e| StoreError::Io(self.dir.display().to_string(), e.to_string()))?;
        let path = self.dir.join(file);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::Io(path.display().to_string(), e.to_string()))?;
        writeln!(file, "{line}")
            .map_err(|e| StoreError::Io(path.display().to_string(), e.to_string()))?;
        self.entries.insert(key, entry);
        self.file_lines += 1;
        Ok(())
    }

    /// Insert an execution span.
    pub fn insert_span(
        &mut self,
        key: String,
        inputs: String,
        span: UnitSpan,
    ) -> Result<(), StoreError> {
        self.insert(key, inputs, StoredResult::Span(span))
    }

    /// Insert a recorded time series.
    pub fn insert_series(
        &mut self,
        key: String,
        inputs: String,
        series: TraceSeries,
    ) -> Result<(), StoreError> {
        self.insert(key, inputs, StoredResult::Series(series))
    }

    /// Merge a sharded store file (another store's `store.jsonl`, e.g.
    /// from a multi-machine sweep) into this store, reusing gc's
    /// newest-entry-per-key rule: shard entries supersede existing
    /// entries under the same key — exactly as if the shard's lines had
    /// been appended and the store compacted. Entries identical to what
    /// the store already holds are skipped, so re-merging the same
    /// shard is a no-op and `merge ∘ gc` is idempotent. A partial
    /// trailing line in the shard (interrupted run) is ignored;
    /// corruption anywhere else is fatal. Run
    /// [`ResultStore::compact`] afterwards to drop the superseded
    /// duplicates from disk.
    pub fn merge_file(&mut self, path: &Path) -> Result<MergeStats, StoreError> {
        let text = fs::read_to_string(path)
            .map_err(|e| StoreError::Io(path.display().to_string(), e.to_string()))?;
        let lines: Vec<&str> = text.lines().collect();
        let mut stats = MergeStats::default();
        for (lineno, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry = match parse(line).and_then(|v| StoreEntry::from_json(&v)) {
                Ok(entry) => entry,
                // A partial trailing line is the expected artifact of an
                // interrupted shard; the shard is read-only, so it is
                // skipped rather than truncated.
                Err(_) if lineno + 1 == lines.len() => break,
                Err(e) => return Err(StoreError::corrupt(path, lineno, e)),
            };
            stats.read += 1;
            match self.entries.get(&entry.key) {
                Some(existing) if *existing == entry => stats.unchanged += 1,
                Some(_) => {
                    stats.superseded += 1;
                    self.insert(entry.key.clone(), entry.inputs, entry.result)?;
                }
                None => {
                    stats.added += 1;
                    self.insert(entry.key.clone(), entry.inputs, entry.result)?;
                }
            }
        }
        Ok(stats)
    }

    /// Recover leftover per-worker shards from a killed sweep: merge
    /// every `shards/worker-*.jsonl` file (in name order) under the
    /// usual [`ResultStore::merge_file`] semantics, then delete the
    /// shards. A partial trailing shard line (the unit mid-append when
    /// the sweep died) is skipped; its unit simply re-runs. Returns the
    /// total merge stats, all zero when there is nothing to recover.
    pub fn recover_shards(&mut self) -> Result<MergeStats, StoreError> {
        let shards_dir = self.dir.join(SHARDS_DIR);
        let io_err =
            |p: &Path, e: std::io::Error| StoreError::Io(p.display().to_string(), e.to_string());
        let read_dir = match fs::read_dir(&shards_dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(MergeStats::default()),
            Err(e) => return Err(io_err(&shards_dir, e)),
        };
        let mut shard_paths: Vec<PathBuf> = Vec::new();
        for dirent in read_dir {
            let path = dirent.map_err(|e| io_err(&shards_dir, e))?.path();
            if path.extension().is_some_and(|ext| ext == "jsonl") {
                shard_paths.push(path);
            }
        }
        shard_paths.sort();
        let mut total = MergeStats::default();
        for path in &shard_paths {
            let stats = self.merge_file(path)?;
            total.read += stats.read;
            total.added += stats.added;
            total.superseded += stats.superseded;
            total.unchanged += stats.unchanged;
            fs::remove_file(path).map_err(|e| io_err(path, e))?;
        }
        // Best-effort: the directory may legitimately hold other files.
        let _ = fs::remove_dir(&shards_dir);
        Ok(total)
    }
}

/// Per-shard outcome of [`ResultStore::merge_file`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Intact entries read from the shard.
    pub read: usize,
    /// Entries new to the store.
    pub added: usize,
    /// Entries that superseded an existing (different) value.
    pub superseded: usize,
    /// Entries identical to what the store already held (skipped).
    pub unchanged: usize,
}

/// Errors from opening or appending to the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O failure (path, message).
    Io(String, String),
    /// A line that does not parse or decode (path, 1-based line,
    /// message).
    Corrupt(String, usize, String),
}

impl StoreError {
    fn corrupt(path: &Path, lineno: usize, e: JsonError) -> Self {
        StoreError::Corrupt(path.display().to_string(), lineno + 1, e.0)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(path, msg) => write!(f, "result store I/O error at {path}: {msg}"),
            StoreError::Corrupt(path, line, msg) => {
                write!(f, "corrupt result store {path}:{line}: {msg}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use snug_experiments::SchemeResult;
    use snug_metrics::MetricSet;
    use snug_workloads::ComboClass;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("snug-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fake(label: &str, tp: f64) -> StoredResult {
        StoredResult::Unit(SchemeRun {
            scheme: label.into(),
            ipcs: vec![1.0, 0.5, tp],
            measured_cycles: None,
            stop_reason: None,
            plateaus: Vec::new(),
        })
    }

    fn fake_legacy(label: &str, tp: f64) -> ComboResult {
        ComboResult {
            label: label.into(),
            class: ComboClass::C3,
            baseline_ipcs: vec![1.0, 0.5],
            schemes: vec![SchemeResult {
                scheme: "SNUG".into(),
                metrics: MetricSet {
                    throughput: tp,
                    aws: tp,
                    fair: tp,
                },
                ipcs: vec![1.0, 0.6],
            }],
            cc_sweep: vec![(0.0, 1.0)],
        }
    }

    #[test]
    fn unit_and_legacy_entries_coexist_and_are_typed() {
        let dir = tmp_dir("typed");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert_unit(
                "u1".into(),
                "unit-inputs".into(),
                SchemeRun {
                    scheme: "cc@50%".into(),
                    ipcs: vec![0.5, 0.25],
                    measured_cycles: None,
                    stop_reason: None,
                    plateaus: Vec::new(),
                },
            )
            .unwrap();
        store
            .insert(
                "c1".into(),
                "combo-inputs".into(),
                StoredResult::Combo(fake_legacy("a+b", 1.1)),
            )
            .unwrap();

        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.unit_count(), 1);
        assert_eq!(back.legacy_count(), 1);
        assert_eq!(back.get_unit("u1").unwrap().scheme, "cc@50%");
        assert!(back.get_unit("c1").is_none(), "typed lookup rejects kind");
        assert_eq!(back.get_legacy_combo("c1").unwrap().label, "a+b");
        assert!(back.get_legacy_combo("u1").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_store_is_empty_and_dir_not_created_until_insert() {
        let dir = tmp_dir("fresh");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert!(!dir.exists(), "open alone must not touch the filesystem");
    }

    #[test]
    fn inserts_persist_across_reopen() {
        let dir = tmp_dir("persist");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k1".into(), "inputs-1".into(), fake("a+b", 1.25))
            .unwrap();
        store
            .insert("k2".into(), "inputs-2".into(), fake("c+d", 0.75))
            .unwrap();
        drop(store);

        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("k1").unwrap(), &fake("a+b", 1.25));
        assert_eq!(back.get("k2").unwrap(), &fake("c+d", 0.75));
        assert!(back.get("k3").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_interior_lines_are_rejected_with_location() {
        let dir = tmp_dir("corrupt");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k".into(), "i".into(), fake("x+y", 1.0))
            .unwrap();
        let path = dir.join(STORE_FILE);
        let mut text = fs::read_to_string(&path).unwrap();
        let good_line = text.clone();
        text.insert_str(0, "{\"key\": \"k2\", nope\n");
        text.push_str(&good_line); // corrupt line is now interior
        fs::write(&path, text).unwrap();
        match ResultStore::open(&dir) {
            Err(StoreError::Corrupt(_, line, _)) => assert_eq!(line, 1),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_trailing_line_is_dropped_and_truncated() {
        let dir = tmp_dir("partial-tail");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k1".into(), "i".into(), fake("x+y", 1.0))
            .unwrap();
        let path = dir.join(STORE_FILE);
        let clean_len = fs::metadata(&path).unwrap().len();

        // Simulate a crash mid-append: a partial, newline-less record.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"key\":\"k2\",\"inp");
        fs::write(&path, &text).unwrap();

        // Open tolerates it, keeps the intact entry, truncates the tail.
        let mut recovered = ResultStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered.get("k1").is_some());
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            clean_len,
            "tail truncated"
        );

        // Appends after recovery land on a clean line.
        recovered
            .insert("k3".into(), "i".into(), fake("a+b", 1.5))
            .unwrap();
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn series_entries_round_trip_and_are_typed() {
        let dir = tmp_dir("series");
        let mut store = ResultStore::open(&dir).unwrap();
        let series = snug_experiments::TraceSeries {
            scheme: "snug".into(),
            stride: 50_000,
            warmup_cycles: 150_000,
            samples: vec![sim_cmp::PeriodSample {
                cycle: 50_000,
                during_warmup: true,
                instructions: vec![10, 20],
                cycles: vec![50_000, 50_000],
                l2: sim_cache::CacheStats {
                    hits: 7,
                    misses: 3,
                    ..Default::default()
                },
                events: vec![sim_cmp::SchemeEvent {
                    cycle: 10_000,
                    kind: sim_cmp::SchemeEventKind::GroupedBegin,
                    takers: vec![1, 2],
                }],
                shifts: vec![sim_mem::StreamShift {
                    at_cycle: 30_000,
                    cores: vec![0, 1],
                    directive: sim_mem::ShiftDirective::DemandScale { percent: 200 },
                }],
                counters: None,
            }],
        };
        store
            .insert_series("t1".into(), "trace-inputs".into(), series.clone())
            .unwrap();
        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.get_series("t1").unwrap(), &series);
        assert_eq!(back.series_count(), 1);
        assert!(back.get_unit("t1").is_none(), "typed lookup rejects kind");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn span_entries_round_trip_and_are_typed() {
        let dir = tmp_dir("span");
        let mut store = ResultStore::open(&dir).unwrap();
        let span = UnitSpan {
            label: "ammp+ammp+ammp+ammp | snug".into(),
            queue_nanos: 1_234,
            wall_nanos: 987_654_321,
            sim_cycles: 1_350_000,
            instructions: 1_458_748,
            worker: 3,
            shard: "worker-3.jsonl".into(),
        };
        store
            .insert_span("s1".into(), "span | inputs".into(), span.clone())
            .unwrap();
        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.get_span("s1").unwrap(), &span);
        assert_eq!(back.span_count(), 1);
        assert_eq!(back.spans(), vec![&span]);
        assert!(back.get_unit("s1").is_none(), "typed lookup rejects kind");
        assert!(back.get_span("missing").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spans_land_in_the_sidecar_not_the_deterministic_store() {
        let dir = tmp_dir("span-sidecar");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("u1".into(), "i".into(), fake("x+y", 1.0))
            .unwrap();
        let store_bytes = fs::read(dir.join(STORE_FILE)).unwrap();
        store
            .insert_span("s1".into(), "span".into(), UnitSpan::default())
            .unwrap();
        assert_eq!(
            fs::read(dir.join(STORE_FILE)).unwrap(),
            store_bytes,
            "span inserts must not touch store.jsonl"
        );
        assert!(dir.join(SPANS_FILE).exists());
        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.span_count(), 1);
        assert_eq!(back.unit_count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_migrates_legacy_inline_spans_to_the_sidecar() {
        let dir = tmp_dir("span-migrate");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("u1".into(), "i".into(), fake("x+y", 1.0))
            .unwrap();
        // Fake a legacy store with the span inline in store.jsonl.
        let span_entry = StoreEntry {
            key: "s1".into(),
            inputs: "span".into(),
            result: StoredResult::Span(UnitSpan::default()),
        };
        let path = dir.join(STORE_FILE);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str(&span_entry.render_line());
        text.push('\n');
        fs::write(&path, text).unwrap();

        let mut back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.span_count(), 1, "legacy inline span still decodes");
        back.compact().unwrap();
        let store_text = fs::read_to_string(&path).unwrap();
        assert!(
            !store_text.contains("\"span\""),
            "compact moves spans out of store.jsonl"
        );
        let spans_text = fs::read_to_string(dir.join(SPANS_FILE)).unwrap();
        assert!(spans_text.contains("\"span\""));
        assert_eq!(ResultStore::open(&dir).unwrap().span_count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_shards_merges_and_deletes_skipping_partial_tails() {
        let dir = tmp_dir("recover");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k1".into(), "i".into(), fake("x+y", 1.0))
            .unwrap();

        // Shard 0: one duplicate of k1 plus a fresh k2.
        let mut shard0 = ShardWriter::new(dir.join(SHARDS_DIR).join("worker-0.jsonl"));
        shard0
            .append(&StoreEntry {
                key: "k1".into(),
                inputs: "i".into(),
                result: fake("x+y", 1.0),
            })
            .unwrap();
        shard0
            .append(&StoreEntry {
                key: "k2".into(),
                inputs: "i".into(),
                result: fake("a+b", 2.0),
            })
            .unwrap();
        assert!(shard0.written());
        // Shard 1: a fresh k3 followed by a crash-truncated partial line.
        let mut shard1 = ShardWriter::new(dir.join(SHARDS_DIR).join("worker-1.jsonl"));
        shard1
            .append(&StoreEntry {
                key: "k3".into(),
                inputs: "i".into(),
                result: fake("c+d", 3.0),
            })
            .unwrap();
        let shard1_path = shard1.path().to_path_buf();
        drop(shard1);
        let mut text = fs::read_to_string(&shard1_path).unwrap();
        text.push_str("{\"key\":\"k4\",\"inp");
        fs::write(&shard1_path, text).unwrap();

        let stats = store.recover_shards().unwrap();
        assert_eq!(stats.read, 3, "partial k4 line skipped");
        assert_eq!(stats.added, 2);
        assert_eq!(stats.unchanged, 1);
        assert!(!dir.join(SHARDS_DIR).exists(), "shards consumed");
        assert_eq!(store.len(), 3);
        assert!(store.get("k4").is_none());

        // Nothing left: a second recovery is a no-op.
        assert_eq!(store.recover_shards().unwrap(), MergeStats::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_superseded_duplicates_and_is_idempotent() {
        let dir = tmp_dir("compact");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k1".into(), "old".into(), fake("x+y", 1.0))
            .unwrap();
        store
            .insert("k2".into(), "i".into(), fake("a+b", 2.0))
            .unwrap();
        // Supersede k1 (as a schema bump or re-run would).
        store
            .insert("k1".into(), "new".into(), fake("x+y", 3.0))
            .unwrap();
        assert_eq!(store.file_lines(), 3);
        assert_eq!(store.len(), 2);

        let (kept, dropped) = store.compact().unwrap();
        assert_eq!((kept, dropped), (2, 1));
        assert_eq!(store.file_lines(), 2);

        // The newest value per key survived, on disk too.
        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.file_lines(), 2);
        assert_eq!(back.get("k1").unwrap(), &fake("x+y", 3.0));
        assert_eq!(back.get("k2").unwrap(), &fake("a+b", 2.0));

        // Idempotent: nothing more to drop, bytes unchanged.
        let bytes = fs::read(dir.join(STORE_FILE)).unwrap();
        let mut again = ResultStore::open(&dir).unwrap();
        assert_eq!(again.compact().unwrap(), (2, 0));
        assert_eq!(fs::read(dir.join(STORE_FILE)).unwrap(), bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_on_missing_store_is_a_noop() {
        let dir = tmp_dir("compact-empty");
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.compact().unwrap(), (0, 0));
        assert!(!dir.exists(), "no file materialised");
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let dir = tmp_dir("blank");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k".into(), "i".into(), fake("x+y", 1.0))
            .unwrap();
        let path = dir.join(STORE_FILE);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push('\n');
        fs::write(&path, text).unwrap();
        assert_eq!(ResultStore::open(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
