//! The content-addressed result store.
//!
//! Results persist as JSONL under a directory (default `results/`): one
//! line per completed unit job, keyed by the job's content hash
//! ([`crate::spec::unit_key`]). Loading tolerates a missing file (empty
//! store) and rejects corrupt lines loudly rather than serving bad data.
//! Appends go straight to disk, so an interrupted sweep keeps everything
//! it finished.
//!
//! ## Key-schema versions
//!
//! * **v2** (current, [`crate::spec::SCHEMA_VERSION`]) — one line per
//!   *(combo, scheme point)* simulation, value a
//!   [`snug_experiments::SchemeRun`] under the `"unit"` field.
//! * **v1** (legacy) — one line per whole (combo, config) five-scheme
//!   comparison, value a [`ComboResult`] under the `"result"` field.
//!   v1 lines are still decoded so sweeps can migrate them (see
//!   `sweep::run_sweep`); new code never writes them.

use crate::codec::JsonCodec;
use crate::json::{parse, JsonError, Value};
use crate::sweep::UnitSpan;
use snug_experiments::{ComboResult, SchemeRun, TraceSeries};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File name of the JSONL store inside the results directory.
pub const STORE_FILE: &str = "store.jsonl";

/// What a store entry holds: the unit of the current schema, a recorded
/// probe time series, or a whole combo result from a v1 store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoredResult {
    /// v2: one (combo, scheme point) simulation.
    Unit(SchemeRun),
    /// v2: a recorded per-period time series (`snug trace`).
    Series(TraceSeries),
    /// v2: wall-clock telemetry for one executed sweep piece.
    Span(UnitSpan),
    /// v1 legacy: a whole assembled five-scheme comparison.
    Combo(ComboResult),
}

/// One stored line: the key, a little human-readable context, and the
/// full result.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Content key of the producing job.
    pub key: String,
    /// The input description that was hashed into the key (debug form,
    /// for humans auditing the store).
    pub inputs: String,
    /// The cached result.
    pub result: StoredResult,
}

impl StoreEntry {
    fn to_json(&self) -> Value {
        let payload = match &self.result {
            StoredResult::Unit(run) => ("unit", run.to_json()),
            StoredResult::Series(series) => ("series", series.to_json()),
            StoredResult::Span(span) => ("span", span.to_json()),
            StoredResult::Combo(result) => ("result", result.to_json()),
        };
        Value::obj(vec![
            ("key", Value::str(&self.key)),
            ("inputs", Value::str(&self.inputs)),
            payload,
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let result = if let Ok(unit) = v.get("unit") {
            StoredResult::Unit(SchemeRun::from_json(unit)?)
        } else if let Ok(series) = v.get("series") {
            StoredResult::Series(TraceSeries::from_json(series)?)
        } else if let Ok(span) = v.get("span") {
            StoredResult::Span(UnitSpan::from_json(span)?)
        } else {
            StoredResult::Combo(ComboResult::from_json(v.get("result")?)?)
        };
        Ok(StoreEntry {
            key: v.get("key")?.as_str()?.to_string(),
            inputs: v.get("inputs")?.as_str()?.to_string(),
            result,
        })
    }
}

/// The persistent, content-addressed result cache.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    entries: BTreeMap<String, StoreEntry>,
    /// Data lines currently in the JSONL file (blank lines excluded).
    /// Exceeds `entries.len()` when duplicate keys have accumulated —
    /// what [`ResultStore::compact`] reclaims.
    file_lines: usize,
}

impl ResultStore {
    /// Open (or create) the store under `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        let path = dir.join(STORE_FILE);
        let mut entries = BTreeMap::new();
        let mut file_lines = 0usize;
        match fs::read_to_string(&path) {
            Ok(text) => {
                let lines: Vec<&str> = text.lines().collect();
                let mut offset = 0u64;
                for (lineno, line) in lines.iter().enumerate() {
                    let line_start = offset;
                    offset += line.len() as u64 + 1;
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse(line).and_then(|v| StoreEntry::from_json(&v)) {
                        Ok(entry) => {
                            entries.insert(entry.key.clone(), entry);
                            file_lines += 1;
                        }
                        Err(_) if lineno + 1 == lines.len() => {
                            // A partial trailing line is the expected
                            // artifact of a crash or full disk during
                            // append: drop it and truncate the file so
                            // the next append starts on a clean line.
                            // Corruption anywhere else stays fatal.
                            fs::OpenOptions::new()
                                .write(true)
                                .open(&path)
                                .and_then(|f| f.set_len(line_start))
                                .map_err(|e| {
                                    StoreError::Io(path.display().to_string(), e.to_string())
                                })?;
                            break;
                        }
                        Err(e) => return Err(StoreError::corrupt(&path, lineno, e)),
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::Io(path.display().to_string(), e.to_string())),
        }
        Ok(ResultStore {
            dir,
            entries,
            file_lines,
        })
    }

    /// The directory this store persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store has no cached results.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a cached result by content key.
    pub fn get(&self, key: &str) -> Option<&StoredResult> {
        self.entries.get(key).map(|e| &e.result)
    }

    /// Look up a v2 unit result by content key.
    pub fn get_unit(&self, key: &str) -> Option<&SchemeRun> {
        match self.get(key) {
            Some(StoredResult::Unit(run)) => Some(run),
            _ => None,
        }
    }

    /// Look up a v1 legacy combo result by content key.
    pub fn get_legacy_combo(&self, key: &str) -> Option<&ComboResult> {
        match self.get(key) {
            Some(StoredResult::Combo(result)) => Some(result),
            _ => None,
        }
    }

    /// Look up a recorded time series by content key.
    pub fn get_series(&self, key: &str) -> Option<&TraceSeries> {
        match self.get(key) {
            Some(StoredResult::Series(series)) => Some(series),
            _ => None,
        }
    }

    /// Look up an execution span by content key.
    pub fn get_span(&self, key: &str) -> Option<&UnitSpan> {
        match self.get(key) {
            Some(StoredResult::Span(span)) => Some(span),
            _ => None,
        }
    }

    /// Every stored execution span, in key order.
    pub fn spans(&self) -> Vec<&UnitSpan> {
        self.entries
            .values()
            .filter_map(|e| match &e.result {
                StoredResult::Span(span) => Some(span),
                _ => None,
            })
            .collect()
    }

    /// Data lines currently in the JSONL file. Exceeds
    /// [`ResultStore::len`] when superseded duplicates have accumulated
    /// (schema bumps, re-runs) — [`ResultStore::compact`] reclaims them.
    pub fn file_lines(&self) -> usize {
        self.file_lines
    }

    /// Rewrite the JSONL file keeping only the newest entry per key
    /// (`snug store gc`). The in-memory map already holds exactly those
    /// — on load, later lines supersede earlier ones — so compaction
    /// writes it back in key order through a temporary file and an
    /// atomic rename. Idempotent: a second pass drops nothing. Returns
    /// `(kept, dropped)` line counts.
    pub fn compact(&mut self) -> Result<(usize, usize), StoreError> {
        let kept = self.entries.len();
        let dropped = self.file_lines.saturating_sub(kept);
        let path = self.dir.join(STORE_FILE);
        if self.entries.is_empty() && !path.exists() {
            return Ok((0, 0));
        }
        let io_err =
            |p: &Path, e: std::io::Error| StoreError::Io(p.display().to_string(), e.to_string());
        fs::create_dir_all(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        let tmp = self.dir.join(format!("{STORE_FILE}.tmp"));
        let mut text = String::new();
        for entry in self.entries.values() {
            text.push_str(&entry.to_json().render());
            text.push('\n');
        }
        fs::write(&tmp, &text).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        self.file_lines = kept;
        Ok((kept, dropped))
    }

    /// Number of v2 unit entries.
    pub fn unit_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.result, StoredResult::Unit(_)))
            .count()
    }

    /// Number of v1 legacy entries still in the store.
    pub fn legacy_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.result, StoredResult::Combo(_)))
            .count()
    }

    /// Number of recorded time-series entries.
    pub fn series_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.result, StoredResult::Series(_)))
            .count()
    }

    /// Number of execution-span entries.
    pub fn span_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.result, StoredResult::Span(_)))
            .count()
    }

    /// Insert a fresh unit result and append it to the JSONL file.
    pub fn insert_unit(
        &mut self,
        key: String,
        inputs: String,
        run: SchemeRun,
    ) -> Result<(), StoreError> {
        self.insert(key, inputs, StoredResult::Unit(run))
    }

    /// Insert a fresh result and append it to the JSONL file.
    pub fn insert(
        &mut self,
        key: String,
        inputs: String,
        result: StoredResult,
    ) -> Result<(), StoreError> {
        let entry = StoreEntry {
            key: key.clone(),
            inputs,
            result,
        };
        let line = entry.to_json().render();
        fs::create_dir_all(&self.dir)
            .map_err(|e| StoreError::Io(self.dir.display().to_string(), e.to_string()))?;
        let path = self.dir.join(STORE_FILE);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::Io(path.display().to_string(), e.to_string()))?;
        writeln!(file, "{line}")
            .map_err(|e| StoreError::Io(path.display().to_string(), e.to_string()))?;
        self.entries.insert(key, entry);
        self.file_lines += 1;
        Ok(())
    }

    /// Insert an execution span.
    pub fn insert_span(
        &mut self,
        key: String,
        inputs: String,
        span: UnitSpan,
    ) -> Result<(), StoreError> {
        self.insert(key, inputs, StoredResult::Span(span))
    }

    /// Insert a recorded time series.
    pub fn insert_series(
        &mut self,
        key: String,
        inputs: String,
        series: TraceSeries,
    ) -> Result<(), StoreError> {
        self.insert(key, inputs, StoredResult::Series(series))
    }

    /// Merge a sharded store file (another store's `store.jsonl`, e.g.
    /// from a multi-machine sweep) into this store, reusing gc's
    /// newest-entry-per-key rule: shard entries supersede existing
    /// entries under the same key — exactly as if the shard's lines had
    /// been appended and the store compacted. Entries identical to what
    /// the store already holds are skipped, so re-merging the same
    /// shard is a no-op and `merge ∘ gc` is idempotent. A partial
    /// trailing line in the shard (interrupted run) is ignored;
    /// corruption anywhere else is fatal. Run
    /// [`ResultStore::compact`] afterwards to drop the superseded
    /// duplicates from disk.
    pub fn merge_file(&mut self, path: &Path) -> Result<MergeStats, StoreError> {
        let text = fs::read_to_string(path)
            .map_err(|e| StoreError::Io(path.display().to_string(), e.to_string()))?;
        let lines: Vec<&str> = text.lines().collect();
        let mut stats = MergeStats::default();
        for (lineno, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry = match parse(line).and_then(|v| StoreEntry::from_json(&v)) {
                Ok(entry) => entry,
                // A partial trailing line is the expected artifact of an
                // interrupted shard; the shard is read-only, so it is
                // skipped rather than truncated.
                Err(_) if lineno + 1 == lines.len() => break,
                Err(e) => return Err(StoreError::corrupt(path, lineno, e)),
            };
            stats.read += 1;
            match self.entries.get(&entry.key) {
                Some(existing) if *existing == entry => stats.unchanged += 1,
                Some(_) => {
                    stats.superseded += 1;
                    self.insert(entry.key.clone(), entry.inputs, entry.result)?;
                }
                None => {
                    stats.added += 1;
                    self.insert(entry.key.clone(), entry.inputs, entry.result)?;
                }
            }
        }
        Ok(stats)
    }
}

/// Per-shard outcome of [`ResultStore::merge_file`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Intact entries read from the shard.
    pub read: usize,
    /// Entries new to the store.
    pub added: usize,
    /// Entries that superseded an existing (different) value.
    pub superseded: usize,
    /// Entries identical to what the store already held (skipped).
    pub unchanged: usize,
}

/// Errors from opening or appending to the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O failure (path, message).
    Io(String, String),
    /// A line that does not parse or decode (path, 1-based line,
    /// message).
    Corrupt(String, usize, String),
}

impl StoreError {
    fn corrupt(path: &Path, lineno: usize, e: JsonError) -> Self {
        StoreError::Corrupt(path.display().to_string(), lineno + 1, e.0)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(path, msg) => write!(f, "result store I/O error at {path}: {msg}"),
            StoreError::Corrupt(path, line, msg) => {
                write!(f, "corrupt result store {path}:{line}: {msg}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use snug_experiments::SchemeResult;
    use snug_metrics::MetricSet;
    use snug_workloads::ComboClass;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("snug-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fake(label: &str, tp: f64) -> StoredResult {
        StoredResult::Unit(SchemeRun {
            scheme: label.into(),
            ipcs: vec![1.0, 0.5, tp],
            measured_cycles: None,
            stop_reason: None,
            plateaus: Vec::new(),
        })
    }

    fn fake_legacy(label: &str, tp: f64) -> ComboResult {
        ComboResult {
            label: label.into(),
            class: ComboClass::C3,
            baseline_ipcs: vec![1.0, 0.5],
            schemes: vec![SchemeResult {
                scheme: "SNUG".into(),
                metrics: MetricSet {
                    throughput: tp,
                    aws: tp,
                    fair: tp,
                },
                ipcs: vec![1.0, 0.6],
            }],
            cc_sweep: vec![(0.0, 1.0)],
        }
    }

    #[test]
    fn unit_and_legacy_entries_coexist_and_are_typed() {
        let dir = tmp_dir("typed");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert_unit(
                "u1".into(),
                "unit-inputs".into(),
                SchemeRun {
                    scheme: "cc@50%".into(),
                    ipcs: vec![0.5, 0.25],
                    measured_cycles: None,
                    stop_reason: None,
                    plateaus: Vec::new(),
                },
            )
            .unwrap();
        store
            .insert(
                "c1".into(),
                "combo-inputs".into(),
                StoredResult::Combo(fake_legacy("a+b", 1.1)),
            )
            .unwrap();

        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.unit_count(), 1);
        assert_eq!(back.legacy_count(), 1);
        assert_eq!(back.get_unit("u1").unwrap().scheme, "cc@50%");
        assert!(back.get_unit("c1").is_none(), "typed lookup rejects kind");
        assert_eq!(back.get_legacy_combo("c1").unwrap().label, "a+b");
        assert!(back.get_legacy_combo("u1").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_store_is_empty_and_dir_not_created_until_insert() {
        let dir = tmp_dir("fresh");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert!(!dir.exists(), "open alone must not touch the filesystem");
    }

    #[test]
    fn inserts_persist_across_reopen() {
        let dir = tmp_dir("persist");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k1".into(), "inputs-1".into(), fake("a+b", 1.25))
            .unwrap();
        store
            .insert("k2".into(), "inputs-2".into(), fake("c+d", 0.75))
            .unwrap();
        drop(store);

        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("k1").unwrap(), &fake("a+b", 1.25));
        assert_eq!(back.get("k2").unwrap(), &fake("c+d", 0.75));
        assert!(back.get("k3").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_interior_lines_are_rejected_with_location() {
        let dir = tmp_dir("corrupt");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k".into(), "i".into(), fake("x+y", 1.0))
            .unwrap();
        let path = dir.join(STORE_FILE);
        let mut text = fs::read_to_string(&path).unwrap();
        let good_line = text.clone();
        text.insert_str(0, "{\"key\": \"k2\", nope\n");
        text.push_str(&good_line); // corrupt line is now interior
        fs::write(&path, text).unwrap();
        match ResultStore::open(&dir) {
            Err(StoreError::Corrupt(_, line, _)) => assert_eq!(line, 1),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_trailing_line_is_dropped_and_truncated() {
        let dir = tmp_dir("partial-tail");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k1".into(), "i".into(), fake("x+y", 1.0))
            .unwrap();
        let path = dir.join(STORE_FILE);
        let clean_len = fs::metadata(&path).unwrap().len();

        // Simulate a crash mid-append: a partial, newline-less record.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"key\":\"k2\",\"inp");
        fs::write(&path, &text).unwrap();

        // Open tolerates it, keeps the intact entry, truncates the tail.
        let mut recovered = ResultStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered.get("k1").is_some());
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            clean_len,
            "tail truncated"
        );

        // Appends after recovery land on a clean line.
        recovered
            .insert("k3".into(), "i".into(), fake("a+b", 1.5))
            .unwrap();
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn series_entries_round_trip_and_are_typed() {
        let dir = tmp_dir("series");
        let mut store = ResultStore::open(&dir).unwrap();
        let series = snug_experiments::TraceSeries {
            scheme: "snug".into(),
            stride: 50_000,
            warmup_cycles: 150_000,
            samples: vec![sim_cmp::PeriodSample {
                cycle: 50_000,
                during_warmup: true,
                instructions: vec![10, 20],
                cycles: vec![50_000, 50_000],
                l2: sim_cache::CacheStats {
                    hits: 7,
                    misses: 3,
                    ..Default::default()
                },
                events: vec![sim_cmp::SchemeEvent {
                    cycle: 10_000,
                    kind: sim_cmp::SchemeEventKind::GroupedBegin,
                    takers: vec![1, 2],
                }],
                shifts: vec![sim_mem::StreamShift {
                    at_cycle: 30_000,
                    cores: vec![0, 1],
                    directive: sim_mem::ShiftDirective::DemandScale { percent: 200 },
                }],
                counters: None,
            }],
        };
        store
            .insert_series("t1".into(), "trace-inputs".into(), series.clone())
            .unwrap();
        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.get_series("t1").unwrap(), &series);
        assert_eq!(back.series_count(), 1);
        assert!(back.get_unit("t1").is_none(), "typed lookup rejects kind");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn span_entries_round_trip_and_are_typed() {
        let dir = tmp_dir("span");
        let mut store = ResultStore::open(&dir).unwrap();
        let span = UnitSpan {
            label: "ammp+ammp+ammp+ammp | snug".into(),
            queue_nanos: 1_234,
            wall_nanos: 987_654_321,
            sim_cycles: 1_350_000,
            instructions: 1_458_748,
        };
        store
            .insert_span("s1".into(), "span | inputs".into(), span.clone())
            .unwrap();
        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.get_span("s1").unwrap(), &span);
        assert_eq!(back.span_count(), 1);
        assert_eq!(back.spans(), vec![&span]);
        assert!(back.get_unit("s1").is_none(), "typed lookup rejects kind");
        assert!(back.get_span("missing").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_superseded_duplicates_and_is_idempotent() {
        let dir = tmp_dir("compact");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k1".into(), "old".into(), fake("x+y", 1.0))
            .unwrap();
        store
            .insert("k2".into(), "i".into(), fake("a+b", 2.0))
            .unwrap();
        // Supersede k1 (as a schema bump or re-run would).
        store
            .insert("k1".into(), "new".into(), fake("x+y", 3.0))
            .unwrap();
        assert_eq!(store.file_lines(), 3);
        assert_eq!(store.len(), 2);

        let (kept, dropped) = store.compact().unwrap();
        assert_eq!((kept, dropped), (2, 1));
        assert_eq!(store.file_lines(), 2);

        // The newest value per key survived, on disk too.
        let back = ResultStore::open(&dir).unwrap();
        assert_eq!(back.file_lines(), 2);
        assert_eq!(back.get("k1").unwrap(), &fake("x+y", 3.0));
        assert_eq!(back.get("k2").unwrap(), &fake("a+b", 2.0));

        // Idempotent: nothing more to drop, bytes unchanged.
        let bytes = fs::read(dir.join(STORE_FILE)).unwrap();
        let mut again = ResultStore::open(&dir).unwrap();
        assert_eq!(again.compact().unwrap(), (2, 0));
        assert_eq!(fs::read(dir.join(STORE_FILE)).unwrap(), bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_on_missing_store_is_a_noop() {
        let dir = tmp_dir("compact-empty");
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.compact().unwrap(), (0, 0));
        assert!(!dir.exists(), "no file materialised");
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let dir = tmp_dir("blank");
        let mut store = ResultStore::open(&dir).unwrap();
        store
            .insert("k".into(), "i".into(), fake("x+y", 1.0))
            .unwrap();
        let path = dir.join(STORE_FILE);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push('\n');
        fs::write(&path, text).unwrap();
        assert_eq!(ResultStore::open(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
