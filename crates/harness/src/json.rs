//! A minimal JSON value model, parser and writer.
//!
//! The build environment has no `serde_json`, so the result store
//! carries its own codec. Two properties matter here and are tested:
//!
//! * **float fidelity** — `f64`s are written with Rust's shortest
//!   round-trip formatting and parsed back bit-identically, so a cached
//!   [`snug_experiments::ComboResult`] compares `==` to a fresh run;
//! * **determinism** — writing is a pure function of the value, so the
//!   same result always produces the same JSONL line.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects keep key order in a `BTreeMap`, which makes the
/// rendered form canonical (sorted keys) — important for hashing.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Shorthand for a finite number; panics on NaN/∞ (never produced by
    /// the simulators).
    pub fn num(x: f64) -> Value {
        assert!(x.is_finite(), "JSON numbers must be finite, got {x}");
        Value::Num(x)
    }

    /// The value as a number, when it is one.
    pub fn as_num(&self) -> Result<f64, JsonError> {
        match self {
            Value::Num(x) => Ok(*x),
            v => Err(JsonError::shape("number", v)),
        }
    }

    /// The value as a boolean, when it is one.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            v => Err(JsonError::shape("bool", v)),
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            v => Err(JsonError::shape("string", v)),
        }
    }

    /// The value as an array, when it is one.
    pub fn as_arr(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Arr(a) => Ok(a),
            v => Err(JsonError::shape("array", v)),
        }
    }

    /// The value as an object, when it is one.
    pub fn as_obj(&self) -> Result<&BTreeMap<String, Value>, JsonError> {
        match self {
            Value::Obj(o) => Ok(o),
            v => Err(JsonError::shape("object", v)),
        }
    }

    /// Fetch a required object field.
    pub fn get(&self, key: &str) -> Result<&Value, JsonError> {
        self.as_obj()?
            .get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_num(*x, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(x: f64, out: &mut String) {
    assert!(x.is_finite(), "JSON numbers must be finite");
    // Rust's float formatting is shortest-round-trip: parsing the output
    // recovers the exact bits. Integers render without a fraction; keep
    // them as-is (JSON permits both).
    let _ = write!(out, "{x:?}");
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or shape error, with a short human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl JsonError {
    fn shape(wanted: &str, got: &Value) -> JsonError {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        };
        JsonError(format!("expected {wanted}, got {kind}"))
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document. Trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(JsonError(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(JsonError(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => {
                    return Err(JsonError(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            // Surrogates never appear in our own output.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(JsonError("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| JsonError("invalid UTF-8".into()))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| JsonError("unterminated string".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid number bytes".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| JsonError(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null",
            "true",
            "false",
            "1.5",
            "-3.25",
            "\"hi\\nthere\"",
            "[]",
            "{}",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, -0.0, 1e-308, 123456789.1234568] {
            let v = Value::num(x);
            let back = parse(&v.render()).unwrap().as_num().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn objects_render_sorted_and_reparse() {
        let v = Value::obj(vec![
            ("zeta", Value::num(1.0)),
            ("alpha", Value::str("x")),
            ("mid", Value::Arr(vec![Value::Bool(true), Value::Null])),
        ]);
        let text = v.render();
        assert!(
            text.find("alpha").unwrap() < text.find("zeta").unwrap(),
            "sorted keys"
        );
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes_survive() {
        let nasty = "quote\" slash\\ newline\n tab\t unicode\u{1}end";
        let v = Value::str(nasty);
        assert_eq!(parse(&v.render()).unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("1 2").is_err());
        assert!(Value::obj(vec![]).get("missing").is_err());
        assert!(Value::Null.as_num().is_err());
    }
}
