//! `snug` — the experiment-orchestration CLI.
//!
//! ```text
//! snug sweep        [--class C5]... [--quick|--mid|--eval|--warmup N --measure N]
//!                   [--threads N] [--results DIR] [--name NAME]
//! snug report       [same selection flags] [--results DIR] [--out DIR]
//!                   [--experiments-md [--check]]
//! snug compare      --combo LABEL | --class C [budget flags] [--results DIR]
//! snug characterize [--bench ammp,...] [--intervals N] [--accesses N] [--out DIR]
//! ```
//!
//! `sweep` runs the five-scheme comparison for the selected combos at
//! per-(combo, scheme, config-point) job granularity, serving unchanged
//! jobs from the content-addressed store under `--results` (default
//! `results/`). `report` renders Figures 9–11 and the per-combo table
//! from the store without running anything; `report --experiments-md`
//! renders the committed `EXPERIMENTS.md` and `--check` fails if the
//! committed file is stale.

use snug_core::SchemeSpec;
use snug_experiments::{default_stride, session_for, trace_point_phased, SchemePoint};
use snug_harness::{
    cached_results, check_experiments_md, eval_converged_spec, fmt_eng, render_experiments_eval_md,
    render_experiments_md, render_markdown, run_sweep, stop_summary_table, telemetry_footer,
    trace_key, BudgetPreset, CheckOutcome, JsonCodec, ResultStore, StopPreset, SweepEvent,
    SweepSpec, UnitSpan, CEILING_FOOTNOTE, EVAL_CONVERGED_REL_EPSILON, EVAL_CONVERGED_WINDOW,
};
use snug_metrics::TableFormat;
use snug_workloads::{all_combos, Benchmark, ComboClass, PhaseSchedule};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match command {
        "sweep" => cmd_sweep(rest),
        "report" => cmd_report(rest),
        "compare" => cmd_compare(rest),
        "characterize" => cmd_characterize(rest),
        "trace" => cmd_trace(rest),
        "profile" => cmd_profile(rest),
        "store" => cmd_store(rest),
        "lint" => cmd_lint(rest),
        "bench" => cmd_bench(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("snug: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
snug — SNUG experiment orchestration

USAGE:
  snug sweep        [--class C1..C6]... [budget flags] [--phase-shift SPEC]...
                    [--jobs N] [--results DIR] [--name NAME] [--spec FILE]
                    [--shared-warmup] [--verbose]
  snug report       [--class ...] [budget flags] [--phase-shift SPEC]...
                    [--results DIR] [--out DIR] [--format md|csv] [--name NAME]
                    [--experiments-md | --experiments-eval-md [--check] [--md-path FILE]]
  snug compare      --combo LABEL | --class C [budget flags] [--phase-shift SPEC]...
                    [--jobs N] [--results DIR]
  snug trace        COMBO SCHEME [--stride N] [--phase-shift SPEC]...
                    [--quick|--mid|--eval|--warmup N --measure N]
                    [--results DIR] [--format md|csv]
  snug profile      COMBO SCHEME [--quick|--mid|--eval|--warmup N --measure N]
                    [--format md|csv]
  snug store gc     [--results DIR]
  snug store merge  SHARD.jsonl... [--results DIR]
  snug lint         [--format human|md|json] [--list-rules]
  snug bench        [kernel|sweep|micro]... [--emit|--check]
  snug characterize [--bench NAME[,NAME]...] [--intervals N] [--accesses N] [--out DIR]

Budget flags (shared by sweep/compare/report; trace takes the fixed
subset): --quick | --mid | --eval | --warmup N --measure N pick the run
budget, and --until-converged [--rel-eps E] [--window N] swaps the fixed
window for convergence-based early exit: each combo's L2P baseline stops
at the first window boundary where its last four window throughputs
agree to within E (default 0.02), and every other scheme measures over
that same window — never past the budget ceiling. Converged runs are
keyed separately from the canonical fixed-budget entries, and every
early-exit-capable run persists an explicit stop_reason
(converged/ceiling), so runs that never stabilised inside the budget are
never mistaken for plateau measurements. Subcommands reject flags they
would otherwise silently ignore.

Phase-change scenarios: --phase-shift SPEC re-parameterises the per-core
synthetic streams mid-run at scheduled cycles. SPEC is
CYCLE:DIRECTIVE[@CORE,...] with directives demand=P (scale per-set
capacity demand to P%), near=P (set the near-reuse fraction), streaming,
and profile=NAME (adopt another benchmark's model); semicolons or
repeated flags compose a schedule. Pair with --until-reconverged
[--rel-eps E] [--window N] to stop only once throughput has
re-stabilised after the last shift, recording per-phase plateau means —
this is the scenario axis that exercises SNUG's stage-based G/T
re-latching against static configurations. Shifted runs are keyed
separately from the canonical stationary entries.

Sweeps are cached at per-(combo, scheme, config-point) granularity: each
unit job is keyed by a content hash of exactly the inputs it depends on
and stored as JSONL under --results (default: results/). Re-running a
sweep executes only jobs whose inputs changed — a scheme-parameter edit
re-runs only that scheme's jobs. `snug sweep --shared-warmup` measures
the CC spill sweep from one shared warm-up snapshot per combo (faster; a
methodology variant cached under its own keys); combined with
--until-converged the family measures the baseline-paced window from
that one snapshot. `snug report` renders Figures 9-11 and the per-combo
table from the store (plus the per-combo stop summary on early-exit
specs); `snug report --experiments-md` renders the committed
EXPERIMENTS.md (budget defaults to --mid there) and --check fails if the
committed file is stale; `snug report --experiments-eval-md` renders the
committed EXPERIMENTS_EVAL.md — the eval-budget converged sweep with the
Fig. 9 SNUG-vs-CC(Best) verdict — over its pinned spec (no budget flags
apply).

Parallel execution: `snug sweep --jobs N` (`--threads` is an alias;
0 = all cores) runs unit jobs on a worker pool. Each worker appends
completed units to its own crash-safe shard under results/shards/, and
shards merge into results/store.jsonl in deterministic plan order at
sweep end — the store bytes are identical for every N, and a sweep
killed mid-flight recovers its completed units on the next run.
Baseline pacing under --until-converged is a dependency edge, not a
barrier: a combo's L2P unit gates only that combo's paced siblings, and
everything else runs freely. If a baseline fails, its dependents are
skipped and the sweep reports which pieces were doomed by which
baseline.

`snug trace` records a per-period time series of one (combo, scheme)
simulation — per-core IPC, the L2 fill/spill mix, SNUG stage/G-T
transitions and any phase-shift boundaries on a probe stride — caching
it in the store and rendering it as a table. SCHEME accepts figure
labels (SNUG, CC(50%)) and store labels (snug, cc@50%). `snug store gc`
rewrites the store keeping only the newest entry per key; `snug store
merge` folds sharded stores from multi-machine sweeps into one with the
same newest-entry-per-key rule.

`snug profile` runs one (combo, scheme) simulation in-process and
renders its observability counters: per-level hit/miss rates, dispatch
and traffic counts, the L1 LRU-stack walk-depth histogram and the top
stall/queue cost centers, plus wall-clock throughput and the measured
probe overhead (a bare run is timed against an identical probed run).
Nothing is cached — profiling is about the run you just asked for.
`snug sweep --verbose` prints each executed piece's wall time and
throughput on its completion line; every sweep ends with a telemetry
footer (total simulation wall time, sim-cycles/s, ops/s) aggregated
from the spans persisted in the store.";

/// The budget/stop flag family — one parser and one defaulting rule
/// shared by `sweep`, `compare`, `report` and `trace`, and rejected
/// wholesale by subcommands that would otherwise silently ignore it.
#[derive(Default)]
struct BudgetFlags {
    /// `None` means "not given": each command picks its default
    /// (`--quick` for sweeps, `--mid` for `trace` and
    /// `--experiments-md`).
    preset: Option<BudgetPreset>,
    warmup: Option<u64>,
    measure: Option<u64>,
    until_converged: bool,
    until_reconverged: bool,
    rel_eps: Option<f64>,
    window: Option<u64>,
}

impl BudgetFlags {
    /// Try to consume `arg` as one of the family's flags; returns
    /// whether it was consumed.
    fn parse_flag(
        &mut self,
        arg: &str,
        value: &mut dyn FnMut(&str) -> Result<String, String>,
    ) -> Result<bool, String> {
        match arg {
            "--quick" => self.preset = Some(BudgetPreset::Quick),
            "--mid" => self.preset = Some(BudgetPreset::Mid),
            "--eval" => self.preset = Some(BudgetPreset::Eval),
            "--warmup" => self.warmup = Some(parse_num(&value("--warmup")?)?),
            "--measure" => self.measure = Some(parse_num(&value("--measure")?)?),
            "--until-converged" => self.until_converged = true,
            "--until-reconverged" => self.until_reconverged = true,
            "--rel-eps" => self.rel_eps = Some(parse_float(&value("--rel-eps")?)?),
            "--window" => self.window = Some(parse_num(&value("--window")?)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Whether any flag of the family was given.
    fn any_given(&self) -> bool {
        self.preset.is_some()
            || self.warmup.is_some()
            || self.measure.is_some()
            || self.any_convergence_given()
    }

    /// Whether any of the convergence flags was given.
    fn any_convergence_given(&self) -> bool {
        self.until_converged
            || self.until_reconverged
            || self.rel_eps.is_some()
            || self.window.is_some()
    }

    /// The budget preset, falling back to the subcommand's default. An
    /// explicit `--warmup N --measure N` pair overrides a named preset.
    fn budget(&self, default: BudgetPreset) -> Result<BudgetPreset, String> {
        match (self.warmup, self.measure) {
            (None, None) => Ok(self.preset.unwrap_or(default)),
            (Some(w), Some(m)) => Ok(BudgetPreset::Custom {
                warmup_cycles: w,
                measure_cycles: m,
            }),
            _ => Err("--warmup and --measure must be given together".into()),
        }
    }

    /// The stop preset the convergence flags describe.
    fn stop(&self) -> Result<StopPreset, String> {
        if self.until_converged && self.until_reconverged {
            return Err("--until-converged and --until-reconverged are mutually exclusive".into());
        }
        if !self.until_converged && !self.until_reconverged {
            if self.rel_eps.is_some() || self.window.is_some() {
                return Err(
                    "--rel-eps/--window require --until-converged or --until-reconverged".into(),
                );
            }
            return Ok(StopPreset::Fixed);
        }
        if self.window == Some(0) {
            return Err("--window must be positive".into());
        }
        if self.until_reconverged {
            Ok(StopPreset::Reconverged {
                window_cycles: self.window,
                rel_epsilon: self.rel_eps,
            })
        } else {
            Ok(StopPreset::Converged {
                window_cycles: self.window,
                rel_epsilon: self.rel_eps,
            })
        }
    }

    /// Reject the whole family on a subcommand that ignores it
    /// (mirroring `reject_experiments_md_flags`).
    fn reject(&self, command: &str) -> Result<(), String> {
        if self.any_given() {
            return Err(format!(
                "budget flags (--quick/--mid/--eval/--warmup/--measure/--until-converged/\
                 --until-reconverged/--rel-eps/--window) do not apply to `snug {command}`"
            ));
        }
        Ok(())
    }

    /// Reject only the convergence flags (for `trace`, which takes the
    /// fixed budget subset, and `--experiments-md`, which documents the
    /// canonical fixed-budget runs).
    fn reject_convergence(&self, command: &str) -> Result<(), String> {
        if self.any_convergence_given() {
            return Err(format!(
                "--until-converged/--until-reconverged/--rel-eps/--window do not apply to \
                 `snug {command}`"
            ));
        }
        Ok(())
    }
}

/// Flag parsing shared by the subcommands.
struct Flags {
    classes: Vec<ComboClass>,
    spec_file: Option<PathBuf>,
    budget: BudgetFlags,
    threads: usize,
    results_dir: PathBuf,
    out_dir: Option<PathBuf>,
    name: Option<String>,
    combo: Option<String>,
    format: Option<TableFormat>,
    benches: Vec<Benchmark>,
    intervals: usize,
    accesses: usize,
    experiments_md: bool,
    experiments_eval_md: bool,
    check: bool,
    /// `None` means "not given": each document command falls back to
    /// its own committed default path.
    md_path: Option<PathBuf>,
    shared_warmup: bool,
    stride: Option<u64>,
    phase_shift: Vec<String>,
    verbose: bool,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut f = Flags {
            classes: Vec::new(),
            spec_file: None,
            budget: BudgetFlags::default(),
            threads: 0,
            results_dir: PathBuf::from("results"),
            out_dir: None,
            name: None,
            combo: None,
            format: None,
            benches: Vec::new(),
            intervals: 20,
            accesses: 50_000,
            experiments_md: false,
            experiments_eval_md: false,
            check: false,
            md_path: None,
            shared_warmup: false,
            stride: None,
            phase_shift: Vec::new(),
            verbose: false,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .map(|s| s.to_string())
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            if f.budget.parse_flag(arg.as_str(), &mut value)? {
                continue;
            }
            match arg.as_str() {
                "--experiments-md" => f.experiments_md = true,
                "--experiments-eval-md" => f.experiments_eval_md = true,
                "--check" => f.check = true,
                "--md-path" => f.md_path = Some(PathBuf::from(value("--md-path")?)),
                "--class" => {
                    for part in value("--class")?.split(',') {
                        f.classes.push(part.trim().parse()?);
                    }
                }
                // `--jobs` is the canonical name since the parallel
                // executor landed; `--threads` stays as an alias.
                "--jobs" => f.threads = parse_num(&value("--jobs")?)? as usize,
                "--threads" => f.threads = parse_num(&value("--threads")?)? as usize,
                "--results" => f.results_dir = PathBuf::from(value("--results")?),
                "--out" => f.out_dir = Some(PathBuf::from(value("--out")?)),
                "--name" => f.name = Some(value("--name")?),
                "--spec" => f.spec_file = Some(PathBuf::from(value("--spec")?)),
                "--combo" => f.combo = Some(value("--combo")?),
                "--format" => {
                    let name = value("--format")?;
                    f.format = Some(
                        TableFormat::from_name(&name)
                            .ok_or_else(|| format!("unknown format `{name}` (md or csv)"))?,
                    );
                }
                "--bench" => {
                    for part in value("--bench")?.split(',') {
                        let part = part.trim();
                        f.benches.push(
                            Benchmark::from_name(part)
                                .ok_or_else(|| format!("unknown benchmark `{part}`"))?,
                        );
                    }
                }
                "--intervals" => f.intervals = parse_num(&value("--intervals")?)? as usize,
                "--accesses" => f.accesses = parse_num(&value("--accesses")?)? as usize,
                "--shared-warmup" => f.shared_warmup = true,
                "--verbose" => f.verbose = true,
                "--stride" => f.stride = Some(parse_num(&value("--stride")?)?),
                "--phase-shift" => f.phase_shift.push(value("--phase-shift")?),
                other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
            }
        }
        Ok(f)
    }

    fn spec(&self) -> Result<SweepSpec, String> {
        self.spec_with_default(BudgetPreset::Quick)
    }

    /// Reject the `--experiments-md` flag family on subcommands that
    /// would silently ignore it (a typo'd `sweep --check` must not look
    /// like the staleness gate ran).
    fn reject_experiments_md_flags(&self, command: &str) -> Result<(), String> {
        if self.experiments_md || self.experiments_eval_md || self.check || self.md_path.is_some() {
            return Err(format!(
                "--experiments-md/--experiments-eval-md/--check/--md-path only apply to \
                 `snug report`, not `snug {command}`"
            ));
        }
        Ok(())
    }

    /// Reject `--verbose` outside `snug sweep` (same pattern).
    fn reject_verbose(&self, command: &str) -> Result<(), String> {
        if self.verbose {
            return Err(format!(
                "--verbose only applies to `snug sweep`, not `snug {command}`"
            ));
        }
        Ok(())
    }

    /// Reject `--stride` outside `snug trace` (same pattern).
    fn reject_stride(&self, command: &str) -> Result<(), String> {
        if self.stride.is_some() {
            return Err(format!(
                "--stride only applies to `snug trace`, not `snug {command}`"
            ));
        }
        Ok(())
    }

    /// Reject `--phase-shift` on subcommands whose workload is not
    /// simulated (same pattern).
    fn reject_phase_shift(&self, command: &str) -> Result<(), String> {
        if !self.phase_shift.is_empty() {
            return Err(format!("--phase-shift does not apply to `snug {command}`"));
        }
        Ok(())
    }

    /// The canonical phase schedule of the `--phase-shift` flags
    /// (repeats compose into one schedule), or `None`.
    fn phase_schedule(&self) -> Result<Option<PhaseSchedule>, String> {
        if self.phase_shift.is_empty() {
            return Ok(None);
        }
        PhaseSchedule::parse(&self.phase_shift.join(";"))
            .map(Some)
            .map_err(|e| format!("--phase-shift: {e}"))
    }

    fn spec_with_default(&self, default_budget: BudgetPreset) -> Result<SweepSpec, String> {
        if let Some(path) = &self.spec_file {
            if !self.classes.is_empty() || self.name.is_some() || self.shared_warmup {
                return Err("--spec cannot be combined with --class/--name/--shared-warmup".into());
            }
            if !self.phase_shift.is_empty() {
                return Err(
                    "--spec carries the phase schedule; --phase-shift cannot be combined \
                     with it"
                        .into(),
                );
            }
            if self.budget.any_given() {
                return Err(
                    "--spec carries the budget and stop policy; budget flags cannot be \
                     combined with it"
                        .into(),
                );
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let value =
                snug_harness::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            return SweepSpec::from_json(&value).map_err(|e| format!("{}: {e}", path.display()));
        }
        let name = self.name.clone().unwrap_or_else(|| {
            if self.classes.is_empty() {
                "full".to_string()
            } else {
                self.classes
                    .iter()
                    .map(|c| c.name())
                    .collect::<Vec<_>>()
                    .join("+")
            }
        });
        let stop = self.budget.stop()?;
        Ok(SweepSpec {
            name,
            classes: self.classes.clone(),
            combos: Vec::new(),
            budget: self.budget.budget(default_budget)?,
            stop,
            phase_shift: self.phase_schedule()?.map(|p| p.fingerprint()),
            shared_warmup: self.shared_warmup,
        })
    }
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.replace('_', "")
        .parse::<u64>()
        .map_err(|_| format!("`{s}` is not a number"))
}

fn parse_float(s: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("`{s}` is not a non-negative number"))
}

/// Reject a phase schedule the run can never execute as described: a
/// shift at or past the budget's horizon would re-key the run as
/// "shifted" while leaving the workload stationary, and a core filter
/// outside the platform targets nothing. (Analogous to the
/// unknown-benchmark check in `PhaseSchedule::parse` — only this layer
/// knows the budget and the platform.)
fn check_phase_schedule(
    schedule: &PhaseSchedule,
    cfg: &snug_experiments::CompareConfig,
) -> Result<(), String> {
    let horizon = cfg.plan.horizon();
    let cores = cfg.system.num_cores;
    for shift in schedule.shifts() {
        if shift.at_cycle >= horizon {
            return Err(format!(
                "--phase-shift `{shift}` never fires: this budget's horizon is {horizon} cycles"
            ));
        }
        if let Some(&bad) = shift.cores.iter().find(|&&c| c >= cores) {
            return Err(format!(
                "--phase-shift `{shift}` targets core {bad}, but the platform has {cores} cores"
            ));
        }
    }
    Ok(())
}

/// [`check_phase_schedule`] for a built sweep spec (covers both the
/// flag and `--spec` paths).
fn check_spec_phase_schedule(spec: &SweepSpec) -> Result<(), String> {
    match spec.phase_schedule() {
        Some(schedule) => check_phase_schedule(&schedule, &spec.compare_config()),
        None => Ok(()),
    }
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_experiments_md_flags("sweep")?;
    flags.reject_stride("sweep")?;
    let spec = flags.spec()?;
    check_spec_phase_schedule(&spec)?;
    let mut store = ResultStore::open(&flags.results_dir).map_err(|e| e.to_string())?;
    if flags.verbose {
        // Cache hits never reach the executor, so they get their lines
        // here: every unit already in the store before this sweep.
        for job in spec.combo_jobs() {
            for unit in &job.units {
                if store.get_unit(&unit.key).is_some() {
                    println!("  hit  {} (from store)", unit.label());
                }
            }
        }
    }
    let verbose = flags.verbose;
    let mut spans: Vec<UnitSpan> = Vec::new();
    let outcome = run_sweep(&spec, &mut store, flags.threads, |event| match event {
        SweepEvent::Planned {
            total,
            hits,
            migrated,
        } => {
            let migrated_note = if migrated > 0 {
                format!(" ({migrated} migrated from v1)")
            } else {
                String::new()
            };
            println!(
                "sweep `{}` ({}): {total} unit jobs, {hits} cache hits{migrated_note}, {} to run",
                spec.name,
                spec.budget_label(),
                total - hits
            );
        }
        SweepEvent::JobStarted { label } => println!("  run  {label}"),
        SweepEvent::JobFinished {
            label,
            done,
            to_run,
            span,
        } => {
            if verbose {
                // No running [done/total] counter here: with --jobs N
                // the completion order races, and the verbose lines
                // must be deterministic in content (only their order
                // may vary between runs). Worker provenance replaces
                // the counter.
                println!(
                    "  done {label} ({:.2} s wall, {}cyc/s, {}ops/s, worker {})",
                    span.wall_nanos as f64 / 1e9,
                    fmt_eng(span.cycles_per_sec()),
                    fmt_eng(span.ops_per_sec()),
                    span.worker,
                );
            } else {
                println!("  done {label} [{done}/{to_run}]");
            }
            spans.push(span);
        }
        SweepEvent::JobFailed { label, error } => {
            eprintln!("  FAIL {label}: {error}");
        }
        SweepEvent::JobSkipped { label, failed_dep } => {
            eprintln!("  skip {label} (baseline {failed_dep} failed)");
        }
    })
    .map_err(|e| e.to_string())?;
    println!(
        "sweep complete: {} executed, {} from cache → {}",
        outcome.executed,
        outcome.cache_hits,
        flags
            .results_dir
            .join(snug_harness::store::STORE_FILE)
            .display()
    );
    println!("{}", telemetry_footer(&spans));
    if outcome.simulated_cycles < outcome.budgeted_cycles {
        let saved =
            100.0 * (1.0 - outcome.simulated_cycles as f64 / outcome.budgeted_cycles as f64);
        println!(
            "early exit: simulated {} of {} budgeted cycles ({saved:.1}% saved)",
            outcome.simulated_cycles, outcome.budgeted_cycles
        );
    }
    // Early-exit sweeps get an explicit stop-reason roll-up: a combo
    // whose baseline hit the ceiling never stabilised, so its numbers
    // are mid-ramp and must not read as plateau measurements. Counted
    // from the typed stop reasons, not the rendered table.
    if spec.compare_config().plan.can_stop_early() {
        let reasons: Vec<snug_experiments::StopReason> = spec
            .combo_jobs()
            .iter()
            .filter_map(|job| {
                let baseline = job
                    .units
                    .iter()
                    .find(|u| u.point == snug_experiments::SchemePoint::L2p)?;
                let run = store.get_unit(&baseline.key)?;
                Some(snug_experiments::pace_of(run, &job.config).stop_reason)
            })
            .collect();
        let ceilings = reasons
            .iter()
            .filter(|r| **r == snug_experiments::StopReason::Ceiling)
            .count();
        if ceilings > 0 {
            println!(
                "stop reasons: {ceilings}/{} combos hit the ceiling without stabilising \
                 (mid-ramp numbers; `snug report` with the same flags shows per-combo detail)",
                reasons.len()
            );
        } else {
            println!(
                "stop reasons: all {} combos converged before the ceiling",
                reasons.len()
            );
        }
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_stride("report")?;
    flags.reject_verbose("report")?;
    if flags.experiments_md && flags.experiments_eval_md {
        return Err("--experiments-md and --experiments-eval-md are mutually exclusive".into());
    }
    if flags.experiments_md {
        return cmd_experiments_md(&flags);
    }
    if flags.experiments_eval_md {
        return cmd_experiments_eval_md(&flags);
    }
    if flags.check {
        return Err("--check only applies to --experiments-md/--experiments-eval-md".into());
    }
    if flags.md_path.is_some() {
        return Err("--md-path only applies to --experiments-md/--experiments-eval-md".into());
    }
    let spec = flags.spec()?;
    check_spec_phase_schedule(&spec)?;
    let store = ResultStore::open(&flags.results_dir).map_err(|e| e.to_string())?;
    let results = cached_results(&spec, &store).ok_or_else(|| {
        format!(
            "store at `{}` is missing results for this spec — run `snug sweep` with the same flags first",
            flags.results_dir.display()
        )
    })?;
    let stop_summary = stop_summary_table(&spec, &store);
    match flags.format.unwrap_or(TableFormat::Markdown) {
        TableFormat::Markdown => {
            print!("{}", render_markdown(&spec, &results));
            if let Some(table) = &stop_summary {
                println!("{}", table.to_markdown());
                println!("{CEILING_FOOTNOTE}");
            }
        }
        TableFormat::Csv => {
            for table in snug_harness::report_tables(&results) {
                println!("# {}", table.title);
                print!("{}", table.render(TableFormat::Csv));
            }
            if let Some(table) = &stop_summary {
                println!("# {}", table.title);
                print!("{}", table.render(TableFormat::Csv));
            }
        }
    }
    if let Some(out) = &flags.out_dir {
        let written = snug_harness::write_report(out, &spec, &results, stop_summary.as_ref())
            .map_err(|e| format!("writing report: {e}"))?;
        for path in written {
            eprintln!("wrote {}", path.display());
        }
    }
    Ok(())
}

/// `snug report --experiments-md [--check] [--md-path FILE]`: render
/// the full evaluation (budget defaults to `--mid`, always all 21
/// combos) from the store into the committed EXPERIMENTS.md, or verify
/// it.
fn cmd_experiments_md(flags: &Flags) -> Result<(), String> {
    // The document is *defined* as the full 21-combo evaluation: a
    // narrowed or redirected variant would overwrite the committed file
    // with a partial document and break the staleness gate.
    if !flags.classes.is_empty() || flags.name.is_some() || flags.spec_file.is_some() {
        return Err(
            "--experiments-md renders the full evaluation; it cannot be combined \
                    with --class/--name/--spec"
                .into(),
        );
    }
    if flags.shared_warmup {
        return Err(
            "--experiments-md documents the canonical per-point runs; --shared-warmup \
             results live under their own keys and are not part of it"
                .into(),
        );
    }
    // Converged and shifted runs are likewise keyed separately — the
    // committed document is defined over the canonical fixed-budget,
    // stationary-workload entries.
    flags.budget.reject_convergence("report --experiments-md")?;
    flags.reject_phase_shift("report --experiments-md")?;
    if flags.out_dir.is_some() || flags.format.is_some() {
        return Err(
            "--experiments-md writes Markdown to --md-path; --out/--format do not apply".into(),
        );
    }
    let spec = flags.spec_with_default(BudgetPreset::Mid)?;
    let store = ResultStore::open(&flags.results_dir).map_err(|e| e.to_string())?;
    let results = cached_results(&spec, &store).ok_or_else(|| {
        format!(
            "store at `{}` is missing results for the {} budget — run `snug sweep --{}` first",
            flags.results_dir.display(),
            spec.budget.label(),
            spec.budget.label(),
        )
    })?;
    drop(store);
    let rendered = render_experiments_md(&spec, &results);
    let md_path = flags
        .md_path
        .clone()
        .unwrap_or_else(|| PathBuf::from(snug_harness::experiments_md::EXPERIMENTS_FILE));
    write_or_check_doc(
        &md_path,
        &rendered,
        flags.check,
        "snug report --experiments-md",
    )?;
    if !flags.check {
        println!(
            "wrote {} ({} combos, budget {})",
            md_path.display(),
            results.len(),
            spec.budget.label()
        );
    }
    Ok(())
}

/// `snug report --experiments-eval-md [--check] [--md-path FILE]`:
/// render the committed eval-scale document — the converged eval sweep
/// with the Fig. 9 SNUG-vs-CC(Best) verdict — or verify it. The spec is
/// pinned ([`eval_converged_spec`]); no selection or budget flags apply.
fn cmd_experiments_eval_md(flags: &Flags) -> Result<(), String> {
    if !flags.classes.is_empty() || flags.name.is_some() || flags.spec_file.is_some() {
        return Err(
            "--experiments-eval-md renders the full eval evaluation; it cannot be combined \
             with --class/--name/--spec"
                .into(),
        );
    }
    if flags.shared_warmup {
        return Err(
            "--experiments-eval-md documents the canonical per-point runs; --shared-warmup \
             results live under their own keys and are not part of it"
                .into(),
        );
    }
    // The document is defined over one pinned spec — eval budget,
    // calibrated convergence window/epsilon — so the whole budget flag
    // family is rejected rather than silently overridden.
    if flags.budget.any_given() {
        return Err(format!(
            "--experiments-eval-md pins the eval converged spec (--eval --until-converged \
             --window {EVAL_CONVERGED_WINDOW} --rel-eps {EVAL_CONVERGED_REL_EPSILON}); \
             budget flags cannot be combined with it"
        ));
    }
    flags.reject_phase_shift("report --experiments-eval-md")?;
    if flags.out_dir.is_some() || flags.format.is_some() {
        return Err(
            "--experiments-eval-md writes Markdown to --md-path; --out/--format do not apply"
                .into(),
        );
    }
    let spec = eval_converged_spec();
    let store = ResultStore::open(&flags.results_dir).map_err(|e| e.to_string())?;
    let results = cached_results(&spec, &store).ok_or_else(|| {
        format!(
            "store at `{}` is missing the converged eval results — run `snug sweep --eval \
             --until-converged --window {EVAL_CONVERGED_WINDOW} --rel-eps \
             {EVAL_CONVERGED_REL_EPSILON}` first",
            flags.results_dir.display(),
        )
    })?;
    let stop_summary = stop_summary_table(&spec, &store);
    drop(store);
    let rendered = render_experiments_eval_md(&spec, &results, stop_summary.as_ref());
    let md_path = flags
        .md_path
        .clone()
        .unwrap_or_else(|| PathBuf::from(snug_harness::EXPERIMENTS_EVAL_FILE));
    write_or_check_doc(
        &md_path,
        &rendered,
        flags.check,
        "snug report --experiments-eval-md",
    )?;
    if !flags.check {
        println!(
            "wrote {} ({} combos, budget {})",
            md_path.display(),
            results.len(),
            spec.budget_label()
        );
    }
    Ok(())
}

/// Shared `--check`/write tail of the two committed-document commands.
fn write_or_check_doc(
    md_path: &std::path::Path,
    rendered: &str,
    check: bool,
    regen_cmd: &str,
) -> Result<(), String> {
    if check {
        // Only a genuinely absent file counts as Missing; any other
        // read failure (permissions, invalid UTF-8) is its own error.
        let committed = match std::fs::read_to_string(md_path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("reading {}: {e}", md_path.display())),
        };
        return match check_experiments_md(rendered, committed.as_deref()) {
            CheckOutcome::Fresh => {
                println!("{} is up to date", md_path.display());
                Ok(())
            }
            CheckOutcome::Missing => Err(format!(
                "{} is missing — run `{regen_cmd}` and commit it",
                md_path.display()
            )),
            CheckOutcome::Stale(line) => Err(format!(
                "{} is stale (first difference at line {line}) — regenerate with \
                 `{regen_cmd}` and commit the result",
                md_path.display()
            )),
        };
    }
    std::fs::write(md_path, rendered).map_err(|e| format!("writing {}: {e}", md_path.display()))
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_experiments_md_flags("compare")?;
    flags.reject_stride("compare")?;
    flags.reject_verbose("compare")?;
    let mut spec = flags.spec()?;
    if let Some(label) = &flags.combo {
        let all = all_combos();
        let combo = all.iter().find(|c| c.label() == *label).ok_or_else(|| {
            format!("unknown combo `{label}` (see Table 8 labels, e.g. `ammp+parser+swim+mesa`)")
        })?;
        // A single-combo sweep: restrict the job list to exactly this
        // combo (the store is keyed per combo, so nothing else runs).
        spec.classes = vec![combo.class];
        spec.combos = vec![label.clone()];
        spec.name = label.clone();
    } else if flags.classes.is_empty() {
        return Err("compare needs --combo LABEL or --class C".into());
    }
    check_spec_phase_schedule(&spec)?;

    let mut store = ResultStore::open(&flags.results_dir).map_err(|e| e.to_string())?;
    let outcome = run_sweep(&spec, &mut store, flags.threads, |_| {}).map_err(|e| e.to_string())?;
    let results: Vec<_> = outcome
        .combos
        .iter()
        .map(|c| c.result.clone())
        .filter(|r| flags.combo.as_ref().map(|l| r.label == *l).unwrap_or(true))
        .collect();

    for r in &results {
        println!("\n{} (class {})", r.label, r.class.name());
        println!(
            "  {:<10} {:>10} {:>10} {:>10}",
            "scheme", "tp", "aws", "fair"
        );
        for s in &r.schemes {
            println!(
                "  {:<10} {:>10.3} {:>10.3} {:>10.3}",
                s.scheme, s.metrics.throughput, s.metrics.aws, s.metrics.fair
            );
        }
        let sweep = r
            .cc_sweep
            .iter()
            .map(|(p, tp)| format!("{:.0}%→{tp:.3}", p * 100.0))
            .collect::<Vec<_>>()
            .join("  ");
        println!("  CC sweep: {sweep}");
    }
    println!(
        "\n({} executed, {} from cache)",
        outcome.executed, outcome.cache_hits
    );
    Ok(())
}

/// `snug trace COMBO SCHEME`: record (or serve from the store) the
/// per-period time series of one simulation and render it.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [combo_label, scheme_name] = positional.as_slice() else {
        return Err("trace needs two arguments: COMBO SCHEME (e.g. \
                    `snug trace ammp+ammp+ammp+ammp snug`)"
            .into());
    };
    let flags = Flags::parse(&args[positional.len()..])?;
    flags.reject_experiments_md_flags("trace")?;
    flags.reject_verbose("trace")?;
    // Traces record the full fixed window (the point is seeing the
    // whole time series), so the convergence flags are rejected rather
    // than silently ignored.
    flags.budget.reject_convergence("trace")?;
    if flags.shared_warmup {
        return Err("--shared-warmup does not apply to `snug trace`".into());
    }

    let all = all_combos();
    let combo = all
        .iter()
        .find(|c| c.label() == **combo_label)
        .ok_or_else(|| {
            format!(
                "unknown combo `{combo_label}` (see Table 8 labels, e.g. \
                 `ammp+parser+swim+mesa`)"
            )
        })?;
    let spec: SchemeSpec = scheme_name.parse()?;
    let point = match spec {
        SchemeSpec::L2p => SchemePoint::L2p,
        SchemeSpec::L2s => SchemePoint::L2s,
        SchemeSpec::Cc { spill_probability } => SchemePoint::Cc { spill_probability },
        SchemeSpec::Dsr(_) => SchemePoint::Dsr,
        SchemeSpec::Snug(_) => SchemePoint::Snug,
    };

    let budget = flags.budget.budget(BudgetPreset::Mid)?;
    let cfg = budget.compare_config();
    let stride = flags.stride.unwrap_or_else(|| default_stride(&cfg));
    if stride == 0 {
        return Err("--stride must be positive".into());
    }
    let phase = flags.phase_schedule()?;
    if let Some(schedule) = &phase {
        check_phase_schedule(schedule, &cfg)?;
    }

    let mut store = ResultStore::open(&flags.results_dir).map_err(|e| e.to_string())?;
    let key = trace_key(combo, &point, &cfg, stride, phase.as_ref());
    let (series, from_cache) = match store.get_series(&key) {
        Some(series) => (series.clone(), true),
        None => {
            let series = trace_point_phased(combo, &point, &cfg, stride, phase.as_ref());
            let phase_inputs = phase
                .as_ref()
                .map(|p| format!(" | phase={}", p.fingerprint()))
                .unwrap_or_default();
            let inputs = format!(
                "trace | {:?} | {} | {:?} | stride={stride}{phase_inputs}",
                combo,
                point.label(),
                cfg
            );
            store
                .insert_series(key, inputs, series.clone())
                .map_err(|e| e.to_string())?;
            (series, false)
        }
    };

    let table = series.table(&combo.label());
    match flags.format.unwrap_or(TableFormat::Markdown) {
        TableFormat::Markdown => print!("{}", table.to_markdown()),
        TableFormat::Csv => print!("{}", table.render(TableFormat::Csv)),
    }
    eprintln!(
        "\ntrace {} [{}] budget {} stride {stride}: {} samples, {} scheme events, \
         mean throughput {:.3}{}",
        combo.label(),
        series.scheme,
        budget.label(),
        series.samples.len(),
        series.event_count(),
        series.mean_throughput(),
        if from_cache { " (from cache)" } else { "" },
    );
    if phase.is_some() {
        let means = series
            .phase_throughputs()
            .iter()
            .map(|t| format!("{t:.3}"))
            .collect::<Vec<_>>()
            .join(" → ");
        eprintln!(
            "phase plateaus (mean throughput per workload phase): {means} \
             ({} phase boundaries recorded)",
            series.shift_count(),
        );
    }
    Ok(())
}

/// `snug profile COMBO SCHEME`: run one simulation in-process and
/// render its observability counters as tables, with wall-clock
/// throughput and the measured probe overhead in the footer.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [combo_label, scheme_name] = positional.as_slice() else {
        return Err("profile needs two arguments: COMBO SCHEME (e.g. \
                    `snug profile ammp+ammp+ammp+ammp snug`)"
            .into());
    };
    let flags = Flags::parse(&args[positional.len()..])?;
    flags.reject_experiments_md_flags("profile")?;
    flags.budget.reject_convergence("profile")?;
    flags.reject_stride("profile")?;
    flags.reject_phase_shift("profile")?;
    flags.reject_verbose("profile")?;
    if flags.shared_warmup {
        return Err("--shared-warmup does not apply to `snug profile`".into());
    }

    let all = all_combos();
    let combo = all
        .iter()
        .find(|c| c.label() == **combo_label)
        .ok_or_else(|| {
            format!(
                "unknown combo `{combo_label}` (see Table 8 labels, e.g. \
                 `ammp+parser+swim+mesa`)"
            )
        })?;
    let spec: SchemeSpec = scheme_name.parse()?;
    let budget = flags.budget.budget(BudgetPreset::Quick)?;
    let cfg = budget.compare_config();

    // The obs counters themselves cannot be toggled at runtime (they
    // are a compile-time feature), so the measurable overhead is the
    // probe machinery on top of an identically-compiled bare run.
    // Bare and probed runs interleave for three repetitions and each
    // takes its best time, so one-off warm-up costs (page faults, lazy
    // allocation) do not masquerade as probe overhead.
    let stride = default_stride(&cfg);
    let mut bare_nanos = u64::MAX;
    let mut probed_nanos = u64::MAX;
    let mut harvested = None;
    for _ in 0..3 {
        let bare_started = Instant::now();
        let mut bare = session_for(combo, &spec, &cfg);
        bare.run_to_completion();
        bare_nanos = bare_nanos.min(bare_started.elapsed().as_nanos().max(1) as u64);

        let probed_started = Instant::now();
        let mut session = session_for(combo, &spec, &cfg);
        session.enable_recording(stride);
        let result = session.run_to_completion();
        probed_nanos = probed_nanos.min(probed_started.elapsed().as_nanos().max(1) as u64);
        let counters = session.counters();
        harvested = Some((result, counters));
    }
    let (result, counters) = harvested.expect("three repetitions ran");

    let window = cfg.plan.measure_cycles();
    let format = flags.format.unwrap_or(TableFormat::Markdown);
    for table in [
        counters.hit_miss_table(),
        counters.dispatch_table(window),
        counters.walk_depth_table(),
        counters.cost_center_table(window),
    ] {
        match format {
            TableFormat::Markdown => print!("{}", table.to_markdown()),
            TableFormat::Csv => {
                println!("# {}", table.title);
                print!("{}", table.render(TableFormat::Csv));
            }
        }
    }

    let secs = probed_nanos as f64 / 1e9;
    let sim_cycles = cfg.plan.warmup_cycles + window;
    let overhead = 100.0 * (probed_nanos as f64 - bare_nanos as f64) / bare_nanos as f64;
    eprintln!(
        "\nprofile {} [{}] budget {}: throughput {:.3}, {} retired ops in {:.2} s wall \
         ({}cycles/s, {}ops/s)",
        combo.label(),
        result.scheme,
        budget.label(),
        result.throughput(),
        counters.retired_ops,
        secs,
        fmt_eng(sim_cycles as f64 / secs),
        fmt_eng(counters.retired_ops as f64 / secs),
    );
    eprintln!(
        "probe overhead: {overhead:+.1}% wall vs an unprobed run \
         ({:.2} s bare, {:.2} s probed, stride {stride})",
        bare_nanos as f64 / 1e9,
        secs,
    );
    eprintln!("counter summary: {}", counters.summary());
    Ok(())
}

/// `snug store gc | merge`: compact the JSONL store to the newest entry
/// per key, or fold sharded stores into it under the same rule.
fn cmd_store(args: &[String]) -> Result<(), String> {
    let (sub, rest) = match args.split_first() {
        Some((s, rest)) => (s.as_str(), rest),
        None => return Err("store needs a subcommand: `snug store gc|merge`".into()),
    };
    match sub {
        "gc" => {
            let flags = Flags::parse(rest)?;
            flags.reject_experiments_md_flags("store gc")?;
            flags.budget.reject("store gc")?;
            flags.reject_stride("store gc")?;
            flags.reject_phase_shift("store gc")?;
            flags.reject_verbose("store gc")?;
            let mut store = ResultStore::open(&flags.results_dir).map_err(|e| e.to_string())?;
            let before = store.file_lines();
            let (kept, dropped) = store.compact().map_err(|e| e.to_string())?;
            println!(
                "store gc: {before} lines -> {kept} ({dropped} superseded dropped) in {}",
                flags
                    .results_dir
                    .join(snug_harness::store::STORE_FILE)
                    .display()
            );
            Ok(())
        }
        "merge" => {
            let shards: Vec<&String> = rest.iter().take_while(|a| !a.starts_with("--")).collect();
            if shards.is_empty() {
                return Err(
                    "store merge needs at least one shard file: `snug store merge \
                     SHARD.jsonl... [--results DIR]`"
                        .into(),
                );
            }
            let flags = Flags::parse(&rest[shards.len()..])?;
            flags.reject_experiments_md_flags("store merge")?;
            flags.budget.reject("store merge")?;
            flags.reject_stride("store merge")?;
            flags.reject_phase_shift("store merge")?;
            flags.reject_verbose("store merge")?;
            let mut store = ResultStore::open(&flags.results_dir).map_err(|e| e.to_string())?;
            for shard in &shards {
                let stats = store
                    .merge_file(std::path::Path::new(shard.as_str()))
                    .map_err(|e| e.to_string())?;
                println!(
                    "merged {shard}: {} entries read, {} added, {} superseded, {} unchanged",
                    stats.read, stats.added, stats.superseded, stats.unchanged
                );
            }
            // Merging appends shard entries; one compaction pass leaves
            // the newest entry per key (merge ∘ gc is idempotent).
            let (kept, dropped) = store.compact().map_err(|e| e.to_string())?;
            println!(
                "store merge: {kept} entries ({dropped} superseded dropped) in {}",
                flags
                    .results_dir
                    .join(snug_harness::store::STORE_FILE)
                    .display()
            );
            Ok(())
        }
        other => Err(format!(
            "unknown store subcommand `{other}` (expected `gc` or `merge`)"
        )),
    }
}

fn cmd_characterize(args: &[String]) -> Result<(), String> {
    use snug_experiments::{characterize, CharacterizeConfig};
    let flags = Flags::parse(args)?;
    flags.reject_experiments_md_flags("characterize")?;
    // Characterisation has its own interval/access sizing; the sweep
    // budget family would be silently ignored, so reject it.
    flags.budget.reject("characterize")?;
    flags.reject_stride("characterize")?;
    flags.reject_phase_shift("characterize")?;
    flags.reject_verbose("characterize")?;
    let benches = if flags.benches.is_empty() {
        vec![Benchmark::Ammp, Benchmark::Vortex, Benchmark::Applu]
    } else {
        flags.benches.clone()
    };
    let cfg = CharacterizeConfig::scaled(flags.intervals, flags.accesses);
    println!(
        "characterisation: {} intervals x {} L2 accesses",
        flags.intervals, flags.accesses
    );
    println!(
        "{:<8} {:>12} {:>16} {:>8}",
        "bench", "1-4 blocks", ">16 blocks", "spread"
    );
    for b in &benches {
        let c = characterize(*b, &cfg);
        println!(
            "{:<8} {:>11.1}% {:>15.1}% {:>8.2}",
            c.benchmark,
            c.mean_low_demand() * 100.0,
            c.mean_above_baseline(16) * 100.0,
            c.mean_spread()
        );
        if let Some(out) = &flags.out_dir {
            std::fs::create_dir_all(out).map_err(|e| e.to_string())?;
            let path = out.join(format!("characterize_{}.csv", c.benchmark));
            std::fs::write(&path, c.to_csv()).map_err(|e| e.to_string())?;
            eprintln!("wrote {}", path.display());
        }
    }
    Ok(())
}

/// `snug bench`: one front door for the committed benchmark
/// trajectories, mirroring `snug lint`. Resolves the workspace root,
/// then drives `cargo bench -p snug-bench` for the requested suites —
/// `kernel` (kernel_throughput → BENCH_kernel.json), `sweep`
/// (sweep_scaling → BENCH_sweep.json) and `micro` (micro_kernels, the
/// hot-path primitive microbenches, measure-only). With no suite both
/// trajectory benches run; `--emit` re-baselines the committed files
/// and `--check` applies the CI gate.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let mut suites: Vec<&str> = Vec::new();
    let mut mode: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            suite @ ("kernel" | "sweep" | "micro") => {
                if !suites.contains(&suite) {
                    suites.push(suite);
                }
            }
            flag @ ("--emit" | "--check") => {
                if mode.is_some_and(|prev| prev != flag) {
                    return Err("pass at most one of --emit / --check".into());
                }
                mode = Some(flag);
            }
            other => return Err(format!("unknown bench suite or flag `{other}`")),
        }
    }
    if suites.is_empty() {
        suites = vec!["kernel", "sweep"];
    }
    if mode.is_some() && suites.contains(&"micro") {
        return Err(
            "the micro suite has no committed baseline; run it without --emit/--check".into(),
        );
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = snug_lint::find_workspace_root(&cwd)
        .ok_or("no [workspace] Cargo.toml found above the current directory")?;
    for suite in suites {
        let target = match suite {
            "kernel" => "kernel_throughput",
            "sweep" => "sweep_scaling",
            _ => "micro_kernels",
        };
        let mut cmd = std::process::Command::new("cargo");
        cmd.current_dir(&root)
            .args(["bench", "-q", "-p", "snug-bench", "--bench", target]);
        if let Some(m) = mode {
            cmd.args(["--", m]);
        }
        let status = cmd
            .status()
            .map_err(|e| format!("spawning cargo bench for `{target}`: {e}"))?;
        if !status.success() {
            return Err(format!("`cargo bench --bench {target}` failed"));
        }
    }
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    let mut format = String::from("human");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                format = iter
                    .next()
                    .ok_or("--format needs human|md|json")?
                    .to_string();
            }
            "--list-rules" => {
                print!("{}", snug_lint::report::rule_list());
                return Ok(());
            }
            other => return Err(format!("unknown lint flag `{other}`")),
        }
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = snug_lint::find_workspace_root(&cwd)
        .ok_or("no [workspace] Cargo.toml found above the current directory")?;
    let findings = snug_lint::lint_workspace(&root)?;
    let rendered = match format.as_str() {
        "human" => snug_lint::report::human(&findings),
        "md" => snug_lint::report::markdown(&findings),
        "json" => snug_lint::report::json(&findings),
        other => return Err(format!("unknown lint format `{other}`")),
    };
    print!("{rendered}");
    if findings.is_empty() {
        Ok(())
    } else {
        Err(format!("{} lint finding(s)", findings.len()))
    }
}
