//! Report generation: the paper's Tables 7–8 / Figures 9–11 comparisons
//! rendered from stored sweep results as Markdown and CSV.

use crate::spec::{ComboJob, SweepSpec};
use crate::store::ResultStore;
use snug_experiments::{
    figure_table, pace_of, summarize, ComboResult, Figure, SchemePoint, StopReason, FIGURE_SCHEMES,
};
use snug_metrics::{f3, Table};
use std::path::{Path, PathBuf};

/// All figures in paper order.
pub const FIGURES: [Figure; 3] = [Figure::Throughput, Figure::Aws, Figure::FairSpeedup];

/// The per-class figure tables (Figs. 9–11) plus the per-combo detail
/// table (Table 8 expanded), in render order.
pub fn report_tables(results: &[ComboResult]) -> Vec<Table> {
    let mut tables: Vec<Table> = FIGURES
        .iter()
        .map(|&fig| figure_table(&summarize(results, fig), fig))
        .collect();
    tables.push(per_combo_table(results));
    tables
}

/// One row per combo: its class and every scheme's normalised
/// throughput (the per-combo data behind Fig. 9's class bars).
pub fn per_combo_table(results: &[ComboResult]) -> Table {
    let mut headers = vec!["Combination".to_string(), "Class".to_string()];
    headers.extend(FIGURE_SCHEMES.iter().map(|s| format!("{s} tp")));
    let mut t = Table::new("Table 8: per-combination normalised throughput", headers);
    for r in results {
        let mut row = vec![r.label.clone(), r.class.name().to_string()];
        for scheme in FIGURE_SCHEMES {
            // snug-lint: allow(panic-audit, "FIGURE_SCHEMES is the exact scheme set every stored ComboResult carries")
            let m = r.metrics_of(scheme).expect("scheme present in result");
            row.push(f3(m.throughput));
        }
        t.push_row(row);
    }
    t
}

/// The footnote accompanying [`stop_summary_table`]'s ceiling marker.
pub const CEILING_FOOTNOTE: &str = "† hit the budget ceiling without stabilising — \
     these are mid-ramp numbers, not plateau measurements.";

/// Per-combo stop summary of an early-exit sweep (`--until-converged` /
/// `--until-reconverged`): every scheme of a combo measures the window
/// its L2P baseline settled on, so one row per combo shows that window,
/// the explicit stop reason, and — under a re-convergence policy — the
/// baseline's per-phase plateau means. A combo whose baseline hit the
/// ceiling without stabilising is marked `ceiling †` (see
/// [`CEILING_FOOTNOTE`]): before stop reasons were persisted such runs
/// were indistinguishable from clean full-window measurements.
///
/// Phase-shift specs additionally get one post-shift plateau column
/// per figure scheme, read from the per-scheme plateau records the
/// sweep persists alongside each unit — phase-stationary specs (all
/// the committed EXPERIMENTS tables) render byte-identically to
/// before.
///
/// Returns `None` for fixed-stop specs (nothing to summarise) or when
/// the store is missing the spec's baselines.
pub fn stop_summary_table(spec: &SweepSpec, store: &ResultStore) -> Option<Table> {
    if !spec.compare_config().plan.can_stop_early() {
        return None;
    }
    let shifted = spec.phase_shift.is_some();
    let mut headers = vec![
        "Combination".to_string(),
        "Class".to_string(),
        "Window (cycles)".to_string(),
        "Stop".to_string(),
        "Baseline plateaus".to_string(),
    ];
    if shifted {
        headers.extend(FIGURE_SCHEMES.iter().map(|s| format!("{s} post")));
    }
    let mut t = Table::new("Stop summary (per-combo window, baseline-paced)", headers);
    for job in spec.combo_jobs() {
        let baseline = job.units.iter().find(|u| u.point == SchemePoint::L2p)?;
        let run = store.get_unit(&baseline.key)?;
        let pace = pace_of(run, &job.config);
        let stop = match pace.stop_reason {
            StopReason::Converged => "converged".to_string(),
            StopReason::Ceiling => "ceiling †".to_string(),
        };
        let plateaus = if run.plateaus.is_empty() {
            "-".to_string()
        } else {
            run.plateaus
                .iter()
                .map(|p| f3(*p))
                .collect::<Vec<_>>()
                .join(" → ")
        };
        let mut row = vec![
            job.combo.label(),
            job.combo.class.name().to_string(),
            pace.measured_window.to_string(),
            stop,
            plateaus,
        ];
        if shifted {
            for scheme in FIGURE_SCHEMES {
                row.push(post_shift_plateau(store, &job, scheme));
            }
        }
        t.push_row(row);
    }
    Some(t)
}

/// The post-shift plateau of `scheme`'s unit for one combo, rendered
/// for the stop summary: the last per-phase mean, provided the run
/// recorded at least two phases — the baseline's rolling-window
/// plateau under the re-convergence policy, or the whole-phase
/// measured means paced siblings record over the window that
/// baseline certified (see `SchemeRun::plateaus`). `CC(Best)`
/// reports the highest post-shift mean across the §4.1 spill sweep.
/// `-` when the unit is missing from the store or predates per-phase
/// recording (cached pre-upgrade entries).
fn post_shift_plateau(store: &ResultStore, job: &ComboJob, scheme: &str) -> String {
    let best = job
        .units
        .iter()
        .filter(|u| {
            matches!(
                (scheme, u.point),
                ("L2S", SchemePoint::L2s)
                    | ("DSR", SchemePoint::Dsr)
                    | ("SNUG", SchemePoint::Snug)
                    | ("CC(Best)", SchemePoint::Cc { .. })
            )
        })
        .filter_map(|u| {
            let run = store.get_unit(&u.key)?;
            if run.plateaus.len() >= 2 {
                run.plateaus.last().copied()
            } else {
                None
            }
        })
        .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.max(v))));
    best.map(f3).unwrap_or_else(|| "-".to_string())
}

/// Render the full report as one Markdown document.
pub fn render_markdown(spec: &SweepSpec, results: &[ComboResult]) -> String {
    let mut out = format!(
        "# SNUG sweep report — {}\n\nBudget: {} · combos: {} · schemes: {}\n\n",
        spec.name,
        spec.budget_label(),
        results.len(),
        FIGURE_SCHEMES.join(", "),
    );
    for t in report_tables(results) {
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    out
}

/// Write the report files under `dir`: `report.md` plus one CSV per
/// table. Early-exit specs append their [`stop_summary_table`] to the
/// Markdown (with the ceiling footnote) and emit `stop_summary.csv` —
/// the persisted artifacts must carry the mid-ramp marking, not just
/// stdout. Returns the written paths.
pub fn write_report(
    dir: &Path,
    spec: &SweepSpec,
    results: &[ComboResult],
    stop_summary: Option<&Table>,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();

    let md = dir.join("report.md");
    let mut md_text = render_markdown(spec, results);
    if let Some(table) = stop_summary {
        md_text.push_str(&table.to_markdown());
        md_text.push_str(CEILING_FOOTNOTE);
        md_text.push('\n');
    }
    std::fs::write(&md, md_text)?;
    written.push(md);

    let slugs = [
        "fig9_throughput",
        "fig10_aws",
        "fig11_fair_speedup",
        "table8_per_combo",
    ];
    for (table, slug) in report_tables(results).iter().zip(slugs) {
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, table.to_csv())?;
        written.push(path);
    }
    if let Some(table) = stop_summary {
        let path = dir.join("stop_summary.csv");
        std::fs::write(&path, table.to_csv())?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BudgetPreset;
    use snug_experiments::SchemeResult;
    use snug_metrics::MetricSet;
    use snug_workloads::ComboClass;

    fn fake(label: &str, class: ComboClass, tp: f64) -> ComboResult {
        let mk = |name: &str, t: f64| SchemeResult {
            scheme: name.into(),
            metrics: MetricSet {
                throughput: t,
                aws: t,
                fair: t,
            },
            ipcs: vec![1.0; 4],
        };
        ComboResult {
            label: label.into(),
            class,
            baseline_ipcs: vec![1.0; 4],
            schemes: vec![
                mk("L2S", 0.98),
                mk("CC(Best)", 1.01),
                mk("DSR", 1.04),
                mk("SNUG", tp),
            ],
            cc_sweep: vec![(0.0, 1.0)],
        }
    }

    fn spec() -> SweepSpec {
        SweepSpec {
            name: "demo".into(),
            classes: vec![],
            combos: vec![],
            budget: BudgetPreset::Quick,
            stop: crate::spec::StopPreset::Fixed,
            phase_shift: None,
            shared_warmup: false,
        }
    }

    #[test]
    fn stop_summary_post_shift_columns_gate_on_the_phase_schedule() {
        use crate::spec::StopPreset;
        use snug_experiments::SchemeRun;

        let dir = std::env::temp_dir().join("snug-report-postshift-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ResultStore::open(&dir).unwrap();

        let shifted = SweepSpec {
            name: "shifted".into(),
            classes: vec![],
            combos: vec!["ammp+ammp+ammp+ammp".into()],
            budget: BudgetPreset::Quick,
            stop: StopPreset::Reconverged {
                window_cycles: Some(150_000),
                rel_epsilon: None,
            },
            phase_shift: Some("400000:profile=mcf".into()),
            shared_warmup: false,
        };
        let jobs = shifted.combo_jobs();
        let run = |plateaus: Vec<f64>| SchemeRun {
            scheme: "test".into(),
            ipcs: vec![1.0; 4],
            measured_cycles: Some(1_000_000),
            stop_reason: Some(StopReason::Converged),
            plateaus,
        };
        for u in &jobs[0].units {
            let plateaus = match u.point {
                SchemePoint::L2p => vec![0.9, 1.0],
                // Re-converged past the shift: its post plateau shows.
                SchemePoint::Snug => vec![0.8, 1.25],
                // Never re-converged (single pre-shift plateau): `-`.
                SchemePoint::L2s => vec![0.7],
                // CC sweep and DSR left out of the store entirely: `-`.
                _ => continue,
            };
            store
                .insert_unit(u.key.clone(), String::new(), run(plateaus))
                .unwrap();
        }

        let md = stop_summary_table(&shifted, &store)
            .expect("early-exit spec summarises")
            .to_markdown();
        for h in ["L2S post", "CC(Best) post", "DSR post", "SNUG post"] {
            assert!(md.contains(h), "missing header {h}:\n{md}");
        }
        assert!(
            md.contains("- | - | - | 1.25"),
            "post cells should read -, -, -, then SNUG's final plateau:\n{md}"
        );

        // The stationary variant of the same spec renders the legacy
        // five columns only — the committed EXPERIMENTS tables cannot
        // move.
        let stationary = SweepSpec {
            stop: StopPreset::Converged {
                window_cycles: Some(150_000),
                rel_epsilon: None,
            },
            phase_shift: None,
            ..shifted
        };
        let jobs = stationary.combo_jobs();
        let base = jobs[0]
            .units
            .iter()
            .find(|u| u.point == SchemePoint::L2p)
            .unwrap();
        store
            .insert_unit(base.key.clone(), String::new(), run(Vec::new()))
            .unwrap();
        let md = stop_summary_table(&stationary, &store)
            .expect("converged spec summarises")
            .to_markdown();
        assert!(
            !md.contains("post") && md.contains("Baseline plateaus"),
            "stationary specs keep the legacy columns:\n{md}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_has_three_figures_and_the_detail_table() {
        let results = vec![
            fake("a+b+c+d", ComboClass::C1, 1.2),
            fake("e+f+g+h", ComboClass::C5, 1.1),
        ];
        let tables = report_tables(&results);
        assert_eq!(tables.len(), 4);
        assert!(tables[0].title.contains("Figure 9"));
        assert!(tables[3].title.contains("per-combination"));
        assert_eq!(tables[3].len(), 2, "one row per combo");
    }

    #[test]
    fn markdown_contains_throughput_numbers() {
        let results = vec![fake("a+b+c+d", ComboClass::C2, 1.337)];
        let md = render_markdown(&spec(), &results);
        assert!(md.contains("1.337"), "SNUG throughput rendered");
        assert!(md.contains("a+b+c+d"));
        assert!(md.contains("Budget: quick"));
    }

    #[test]
    fn write_report_emits_md_and_csvs() {
        let dir = std::env::temp_dir().join(format!("snug-report-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let results = vec![fake("a+b+c+d", ComboClass::C4, 1.05)];
        let written = write_report(&dir, &spec(), &results, None).unwrap();
        assert_eq!(written.len(), 5, "report.md + 4 CSVs");
        for path in &written {
            assert!(path.exists(), "{path:?}");
        }
        let csv = std::fs::read_to_string(dir.join("fig9_throughput.csv")).unwrap();
        assert!(csv.starts_with("Class,"), "CSV header: {csv}");
        assert!(
            !std::fs::read_to_string(dir.join("report.md"))
                .unwrap()
                .contains("Stop summary"),
            "fixed-stop reports carry no stop summary"
        );

        // An early-exit report persists the stop summary in both the
        // Markdown (with the ceiling footnote) and its own CSV.
        let mut summary = Table::new(
            "Stop summary (per-combo window, baseline-paced)",
            vec![
                "Combination",
                "Class",
                "Window (cycles)",
                "Stop",
                "Baseline plateaus",
            ],
        );
        summary.push_row(vec!["a+b+c+d", "C4", "3000000", "ceiling †", "-"]);
        let written = write_report(&dir, &spec(), &results, Some(&summary)).unwrap();
        assert_eq!(written.len(), 6, "report.md + 4 CSVs + stop_summary.csv");
        let md = std::fs::read_to_string(dir.join("report.md")).unwrap();
        assert!(md.contains("Stop summary"));
        assert!(md.contains(CEILING_FOOTNOTE));
        assert!(dir.join("stop_summary.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
