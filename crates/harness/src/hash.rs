//! Stable content hashing for job keys.
//!
//! The result store is content-addressed: a job's key is a hash of
//! everything that determines its output — the workload combo, the full
//! `CompareConfig` (scheme parameters, platform, budget) and a schema
//! version. The simulators are deterministic, so equal keys imply equal
//! results. FNV-1a (64-bit) is stable across runs and platforms, unlike
//! `std::hash`'s randomised `DefaultHasher`.

/// FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// A 32-hex-digit content key: two independent FNV-1a passes (forward
/// and salted) to push collision odds far below any realistic sweep
/// size.
pub fn content_key(input: &str) -> String {
    let a = fnv1a64(input.as_bytes());
    let salted: Vec<u8> = input.bytes().rev().collect();
    let b = fnv1a64(&salted);
    format!("{a:016x}{b:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        let k1 = content_key("combo=ammp|budget=quick");
        assert_eq!(k1, content_key("combo=ammp|budget=quick"), "stable");
        assert_eq!(k1.len(), 32);
        assert!(k1.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(k1, content_key("combo=ammp|budget=eval"));
        assert_ne!(k1, content_key("combo=mcf|budget=quick"));
    }

    #[test]
    fn reversal_salt_separates_anagrams() {
        // A plain single-pass FNV maps permuted inputs to different
        // values already, but the doubled key must too.
        assert_ne!(content_key("ab"), content_key("ba"));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }
}
