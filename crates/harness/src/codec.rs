//! JSON codecs for the experiment result types.
//!
//! Hand-written (the environment has no `serde_json`): each codec maps a
//! result type to/from [`crate::json::Value`]. Floats round-trip
//! bit-exactly (see `json`), so a decoded [`ComboResult`] is `==` to the
//! one that was stored — the property the result cache's acceptance test
//! pins down.

use crate::json::{JsonError, Value};
use snug_experiments::{ComboResult, SchemeResult, SchemeRun};
use snug_metrics::MetricSet;
use snug_workloads::ComboClass;

/// Types storable in the result store.
pub trait JsonCodec: Sized {
    /// Encode to a JSON value.
    fn to_json(&self) -> Value;
    /// Decode from a JSON value.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

fn f64_vec(v: &Value) -> Result<Vec<f64>, JsonError> {
    v.as_arr()?.iter().map(Value::as_num).collect()
}

fn f64_arr(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::num(x)).collect())
}

impl JsonCodec for MetricSet {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("throughput", Value::num(self.throughput)),
            ("aws", Value::num(self.aws)),
            ("fair", Value::num(self.fair)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(MetricSet {
            throughput: v.get("throughput")?.as_num()?,
            aws: v.get("aws")?.as_num()?,
            fair: v.get("fair")?.as_num()?,
        })
    }
}

impl JsonCodec for SchemeResult {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("scheme", Value::str(&self.scheme)),
            ("metrics", self.metrics.to_json()),
            ("ipcs", f64_arr(&self.ipcs)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(SchemeResult {
            scheme: v.get("scheme")?.as_str()?.to_string(),
            metrics: MetricSet::from_json(v.get("metrics")?)?,
            ipcs: f64_vec(v.get("ipcs")?)?,
        })
    }
}

impl JsonCodec for SchemeRun {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("scheme", Value::str(&self.scheme)),
            ("ipcs", f64_arr(&self.ipcs)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(SchemeRun {
            scheme: v.get("scheme")?.as_str()?.to_string(),
            ipcs: f64_vec(v.get("ipcs")?)?,
        })
    }
}

impl JsonCodec for ComboClass {
    fn to_json(&self) -> Value {
        Value::str(self.name())
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let name = v.as_str()?;
        ComboClass::from_name(name)
            .ok_or_else(|| JsonError(format!("unknown combo class `{name}`")))
    }
}

impl JsonCodec for ComboResult {
    fn to_json(&self) -> Value {
        let sweep = Value::Arr(
            self.cc_sweep
                .iter()
                .map(|&(p, tp)| Value::Arr(vec![Value::num(p), Value::num(tp)]))
                .collect(),
        );
        Value::obj(vec![
            ("label", Value::str(&self.label)),
            ("class", self.class.to_json()),
            ("baseline_ipcs", f64_arr(&self.baseline_ipcs)),
            (
                "schemes",
                Value::Arr(self.schemes.iter().map(JsonCodec::to_json).collect()),
            ),
            ("cc_sweep", sweep),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let cc_sweep = v
            .get("cc_sweep")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr()?;
                if pair.len() != 2 {
                    return Err(JsonError("cc_sweep entries are [p, throughput]".into()));
                }
                Ok((pair[0].as_num()?, pair[1].as_num()?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ComboResult {
            label: v.get("label")?.as_str()?.to_string(),
            class: ComboClass::from_json(v.get("class")?)?,
            baseline_ipcs: f64_vec(v.get("baseline_ipcs")?)?,
            schemes: v
                .get("schemes")?
                .as_arr()?
                .iter()
                .map(SchemeResult::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            cc_sweep,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ComboResult {
        let mk = |name: &str, tp: f64| SchemeResult {
            scheme: name.into(),
            metrics: MetricSet {
                throughput: tp,
                aws: tp * 0.99,
                fair: tp * 0.97,
            },
            ipcs: vec![0.1 + tp, 1.0 / 3.0, tp, 0.7],
        };
        ComboResult {
            label: "ammp+parser+swim+mesa".into(),
            class: ComboClass::C5,
            baseline_ipcs: vec![0.25, 2.0 / 3.0, 0.5, 1.1],
            schemes: vec![
                mk("L2S", 0.97),
                mk("CC(Best)", 1.02),
                mk("DSR", 1.05),
                mk("SNUG", 1.13),
            ],
            cc_sweep: vec![(0.0, 1.0), (0.25, 1.01), (1.0, 0.98)],
        }
    }

    #[test]
    fn combo_result_round_trips_bit_identically() {
        let r = sample();
        let text = r.to_json().render();
        let back = ComboResult::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        // And the rendered form is stable (determinism for hashing).
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn scheme_run_round_trips_bit_identically() {
        let run = SchemeRun {
            scheme: "cc@25%".into(),
            ipcs: vec![0.1 + 0.2, 1.0 / 3.0, 0.7],
        };
        let text = run.to_json().render();
        let back = SchemeRun::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, run);
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn class_codec_covers_all_classes() {
        for class in ComboClass::ALL {
            assert_eq!(ComboClass::from_json(&class.to_json()).unwrap(), class);
        }
        assert!(ComboClass::from_json(&Value::str("C9")).is_err());
    }

    #[test]
    fn malformed_results_are_rejected() {
        let good = sample().to_json();
        let mut missing = good.as_obj().unwrap().clone();
        missing.remove("schemes");
        assert!(ComboResult::from_json(&Value::Obj(missing)).is_err());
    }
}
