//! JSON codecs for the experiment result types.
//!
//! Hand-written (the environment has no `serde_json`): each codec maps a
//! result type to/from [`crate::json::Value`]. Floats round-trip
//! bit-exactly (see `json`), so a decoded [`ComboResult`] is `==` to the
//! one that was stored — the property the result cache's acceptance test
//! pins down.

use crate::json::{JsonError, Value};
use sim_cache::CacheStats;
use sim_cmp::{PeriodSample, SchemeEvent, SchemeEventKind};
use snug_experiments::{ComboResult, SchemeResult, SchemeRun, TraceSeries};
use snug_metrics::{MetricSet, SimCounters, WALK_DEPTH_BUCKETS};
use snug_workloads::ComboClass;

/// Types storable in the result store.
pub trait JsonCodec: Sized {
    /// Encode to a JSON value.
    fn to_json(&self) -> Value;
    /// Decode from a JSON value.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

fn f64_vec(v: &Value) -> Result<Vec<f64>, JsonError> {
    v.as_arr()?.iter().map(Value::as_num).collect()
}

fn f64_arr(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::num(x)).collect())
}

impl JsonCodec for MetricSet {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("throughput", Value::num(self.throughput)),
            ("aws", Value::num(self.aws)),
            ("fair", Value::num(self.fair)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(MetricSet {
            throughput: v.get("throughput")?.as_num()?,
            aws: v.get("aws")?.as_num()?,
            fair: v.get("fair")?.as_num()?,
        })
    }
}

impl JsonCodec for SchemeResult {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("scheme", Value::str(&self.scheme)),
            ("metrics", self.metrics.to_json()),
            ("ipcs", f64_arr(&self.ipcs)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(SchemeResult {
            scheme: v.get("scheme")?.as_str()?.to_string(),
            metrics: MetricSet::from_json(v.get("metrics")?)?,
            ipcs: f64_vec(v.get("ipcs")?)?,
        })
    }
}

impl JsonCodec for SchemeRun {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("scheme", Value::str(&self.scheme)),
            ("ipcs", f64_arr(&self.ipcs)),
        ];
        // The optional fields are written only when set, so canonical
        // fixed-plan entries render exactly as they always did.
        if let Some(cycles) = self.measured_cycles {
            fields.push(("measured_cycles", Value::num(cycles as f64)));
        }
        if let Some(reason) = self.stop_reason {
            fields.push(("stop_reason", Value::str(reason.label())));
        }
        if !self.plateaus.is_empty() {
            fields.push(("plateaus", f64_arr(&self.plateaus)));
        }
        Value::obj(fields)
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(SchemeRun {
            scheme: v.get("scheme")?.as_str()?.to_string(),
            ipcs: f64_vec(v.get("ipcs")?)?,
            measured_cycles: match v.get("measured_cycles") {
                Ok(c) => Some(c.as_num()? as u64),
                Err(_) => None,
            },
            stop_reason: match v.get("stop_reason") {
                Ok(r) => {
                    let label = r.as_str()?;
                    Some(
                        snug_experiments::StopReason::from_label(label)
                            .ok_or_else(|| JsonError(format!("unknown stop reason `{label}`")))?,
                    )
                }
                Err(_) => None,
            },
            plateaus: match v.get("plateaus") {
                Ok(p) => f64_vec(p)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

fn u64_vec(v: &Value) -> Result<Vec<u64>, JsonError> {
    v.as_arr()?
        .iter()
        .map(|x| x.as_num().map(|n| n as u64))
        .collect()
}

fn u64_arr(xs: &[u64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::num(x as f64)).collect())
}

impl JsonCodec for CacheStats {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("hits", Value::num(self.hits as f64)),
            ("misses", Value::num(self.misses as f64)),
            ("cc_hits", Value::num(self.cc_hits as f64)),
            ("evictions", Value::num(self.evictions as f64)),
            ("writebacks", Value::num(self.writebacks as f64)),
            ("spills_out", Value::num(self.spills_out as f64)),
            ("spills_in", Value::num(self.spills_in as f64)),
            ("forwards", Value::num(self.forwards as f64)),
            (
                "retrieved_from_peer",
                Value::num(self.retrieved_from_peer as f64),
            ),
            ("shadow_hits", Value::num(self.shadow_hits as f64)),
            (
                "write_buffer_hits",
                Value::num(self.write_buffer_hits as f64),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let field = |name: &str| -> Result<u64, JsonError> { Ok(v.get(name)?.as_num()? as u64) };
        Ok(CacheStats {
            hits: field("hits")?,
            misses: field("misses")?,
            cc_hits: field("cc_hits")?,
            evictions: field("evictions")?,
            writebacks: field("writebacks")?,
            spills_out: field("spills_out")?,
            spills_in: field("spills_in")?,
            forwards: field("forwards")?,
            retrieved_from_peer: field("retrieved_from_peer")?,
            shadow_hits: field("shadow_hits")?,
            write_buffer_hits: field("write_buffer_hits")?,
        })
    }
}

impl JsonCodec for SimCounters {
    fn to_json(&self) -> Value {
        let n = |x: u64| Value::num(x as f64);
        Value::obj(vec![
            ("retired_ops", n(self.retired_ops)),
            ("l1i_hits", n(self.l1i_hits)),
            ("l1i_misses", n(self.l1i_misses)),
            ("l1d_hits", n(self.l1d_hits)),
            ("l1d_misses", n(self.l1d_misses)),
            ("l1_walk_depths", u64_arr(&self.l1_walk_depths)),
            ("l2_hits", n(self.l2_hits)),
            ("l2_misses", n(self.l2_misses)),
            ("l2_cc_hits", n(self.l2_cc_hits)),
            ("l2_evictions", n(self.l2_evictions)),
            ("l2_writebacks", n(self.l2_writebacks)),
            ("spills_out", n(self.spills_out)),
            ("spills_in", n(self.spills_in)),
            ("forwards", n(self.forwards)),
            ("retrieved_from_peer", n(self.retrieved_from_peer)),
            ("shadow_hits", n(self.shadow_hits)),
            ("write_buffer_hits", n(self.write_buffer_hits)),
            ("org_accesses", n(self.org_accesses)),
            ("org_writebacks", n(self.org_writebacks)),
            ("relatches", n(self.relatches)),
            ("identifies", n(self.identifies)),
            ("bus_address_transactions", n(self.bus_address_transactions)),
            ("bus_data_transactions", n(self.bus_data_transactions)),
            ("bus_queue_cycles", n(self.bus_queue_cycles)),
            ("dram_reads", n(self.dram_reads)),
            ("dram_writes", n(self.dram_writes)),
            ("dram_queue_cycles", n(self.dram_queue_cycles)),
            ("core_rob_stall_cycles", n(self.core_rob_stall_cycles)),
            ("core_mshr_stall_cycles", n(self.core_mshr_stall_cycles)),
            ("core_dep_stall_cycles", n(self.core_dep_stall_cycles)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let field = |name: &str| -> Result<u64, JsonError> { Ok(v.get(name)?.as_num()? as u64) };
        let depths = u64_vec(v.get("l1_walk_depths")?)?;
        if depths.len() != WALK_DEPTH_BUCKETS {
            return Err(JsonError(format!(
                "l1_walk_depths expects {WALK_DEPTH_BUCKETS} buckets, got {}",
                depths.len()
            )));
        }
        let mut l1_walk_depths = [0u64; WALK_DEPTH_BUCKETS];
        l1_walk_depths.copy_from_slice(&depths);
        Ok(SimCounters {
            retired_ops: field("retired_ops")?,
            l1i_hits: field("l1i_hits")?,
            l1i_misses: field("l1i_misses")?,
            l1d_hits: field("l1d_hits")?,
            l1d_misses: field("l1d_misses")?,
            l1_walk_depths,
            l2_hits: field("l2_hits")?,
            l2_misses: field("l2_misses")?,
            l2_cc_hits: field("l2_cc_hits")?,
            l2_evictions: field("l2_evictions")?,
            l2_writebacks: field("l2_writebacks")?,
            spills_out: field("spills_out")?,
            spills_in: field("spills_in")?,
            forwards: field("forwards")?,
            retrieved_from_peer: field("retrieved_from_peer")?,
            shadow_hits: field("shadow_hits")?,
            write_buffer_hits: field("write_buffer_hits")?,
            org_accesses: field("org_accesses")?,
            org_writebacks: field("org_writebacks")?,
            relatches: field("relatches")?,
            identifies: field("identifies")?,
            bus_address_transactions: field("bus_address_transactions")?,
            bus_data_transactions: field("bus_data_transactions")?,
            bus_queue_cycles: field("bus_queue_cycles")?,
            dram_reads: field("dram_reads")?,
            dram_writes: field("dram_writes")?,
            dram_queue_cycles: field("dram_queue_cycles")?,
            core_rob_stall_cycles: field("core_rob_stall_cycles")?,
            core_mshr_stall_cycles: field("core_mshr_stall_cycles")?,
            core_dep_stall_cycles: field("core_dep_stall_cycles")?,
        })
    }
}

impl JsonCodec for crate::sweep::UnitSpan {
    fn to_json(&self) -> Value {
        let n = |x: u64| Value::num(x as f64);
        Value::obj(vec![
            ("label", Value::str(&self.label)),
            ("queue_nanos", n(self.queue_nanos)),
            ("wall_nanos", n(self.wall_nanos)),
            ("sim_cycles", n(self.sim_cycles)),
            ("instructions", n(self.instructions)),
            ("worker", n(self.worker as u64)),
            ("shard", Value::str(&self.shard)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let field = |name: &str| -> Result<u64, JsonError> { Ok(v.get(name)?.as_num()? as u64) };
        Ok(crate::sweep::UnitSpan {
            label: v.get("label")?.as_str()?.to_string(),
            queue_nanos: field("queue_nanos")?,
            wall_nanos: field("wall_nanos")?,
            sim_cycles: field("sim_cycles")?,
            instructions: field("instructions")?,
            // Provenance fields arrived with the parallel executor;
            // spans persisted before it decode with no provenance.
            worker: field("worker").unwrap_or(0) as usize,
            shard: v
                .get("shard")
                .ok()
                .and_then(|s| s.as_str().ok())
                .unwrap_or_default()
                .to_string(),
        })
    }
}

impl JsonCodec for SchemeEvent {
    fn to_json(&self) -> Value {
        let kind = match self.kind {
            SchemeEventKind::IdentifyBegin => "identify",
            SchemeEventKind::GroupedBegin => "grouped",
        };
        Value::obj(vec![
            ("cycle", Value::num(self.cycle as f64)),
            ("kind", Value::str(kind)),
            (
                "takers",
                Value::Arr(self.takers.iter().map(|&t| Value::num(t as f64)).collect()),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let kind = match v.get("kind")?.as_str()? {
            "identify" => SchemeEventKind::IdentifyBegin,
            "grouped" => SchemeEventKind::GroupedBegin,
            other => return Err(JsonError(format!("unknown scheme event kind `{other}`"))),
        };
        Ok(SchemeEvent {
            cycle: v.get("cycle")?.as_num()? as u64,
            kind,
            takers: v
                .get("takers")?
                .as_arr()?
                .iter()
                .map(|x| x.as_num().map(|n| n as u32))
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

impl JsonCodec for PeriodSample {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("cycle", Value::num(self.cycle as f64)),
            ("during_warmup", Value::Bool(self.during_warmup)),
            ("instructions", u64_arr(&self.instructions)),
            ("cycles", u64_arr(&self.cycles)),
            ("l2", self.l2.to_json()),
            (
                "events",
                Value::Arr(self.events.iter().map(JsonCodec::to_json).collect()),
            ),
        ];
        // Written only when a shift fired in the interval, so
        // stationary traces (every pre-phase-schedule store entry)
        // render exactly as they always did. Each shift round-trips
        // through its canonical `CYCLE:DIRECTIVE[@CORES]` string.
        if !self.shifts.is_empty() {
            fields.push((
                "shifts",
                Value::Arr(
                    self.shifts
                        .iter()
                        .map(|s| Value::str(s.to_string()))
                        .collect(),
                ),
            ));
        }
        // Same only-when-present discipline: counter blocks exist only
        // on samples recorded with the `obs` feature on, and every
        // committed pre-counter series entry renders unchanged.
        if let Some(c) = &self.counters {
            fields.push(("counters", c.to_json()));
        }
        Value::obj(fields)
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let shifts = match v.get("shifts") {
            Ok(list) => list
                .as_arr()?
                .iter()
                .map(|s| {
                    s.as_str()?
                        .parse::<sim_mem::StreamShift>()
                        .map_err(JsonError)
                })
                .collect::<Result<Vec<_>, _>>()?,
            Err(_) => Vec::new(),
        };
        Ok(PeriodSample {
            cycle: v.get("cycle")?.as_num()? as u64,
            during_warmup: v.get("during_warmup")?.as_bool()?,
            instructions: u64_vec(v.get("instructions")?)?,
            cycles: u64_vec(v.get("cycles")?)?,
            l2: CacheStats::from_json(v.get("l2")?)?,
            events: v
                .get("events")?
                .as_arr()?
                .iter()
                .map(SchemeEvent::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            shifts,
            counters: match v.get("counters") {
                Ok(c) => Some(SimCounters::from_json(c)?),
                Err(_) => None,
            },
        })
    }
}

impl JsonCodec for TraceSeries {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("scheme", Value::str(&self.scheme)),
            ("stride", Value::num(self.stride as f64)),
            ("warmup_cycles", Value::num(self.warmup_cycles as f64)),
            (
                "samples",
                Value::Arr(self.samples.iter().map(JsonCodec::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(TraceSeries {
            scheme: v.get("scheme")?.as_str()?.to_string(),
            stride: v.get("stride")?.as_num()? as u64,
            warmup_cycles: v.get("warmup_cycles")?.as_num()? as u64,
            samples: v
                .get("samples")?
                .as_arr()?
                .iter()
                .map(PeriodSample::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

impl JsonCodec for ComboClass {
    fn to_json(&self) -> Value {
        Value::str(self.name())
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let name = v.as_str()?;
        ComboClass::from_name(name)
            .ok_or_else(|| JsonError(format!("unknown combo class `{name}`")))
    }
}

impl JsonCodec for ComboResult {
    fn to_json(&self) -> Value {
        let sweep = Value::Arr(
            self.cc_sweep
                .iter()
                .map(|&(p, tp)| Value::Arr(vec![Value::num(p), Value::num(tp)]))
                .collect(),
        );
        Value::obj(vec![
            ("label", Value::str(&self.label)),
            ("class", self.class.to_json()),
            ("baseline_ipcs", f64_arr(&self.baseline_ipcs)),
            (
                "schemes",
                Value::Arr(self.schemes.iter().map(JsonCodec::to_json).collect()),
            ),
            ("cc_sweep", sweep),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let cc_sweep = v
            .get("cc_sweep")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr()?;
                if pair.len() != 2 {
                    return Err(JsonError("cc_sweep entries are [p, throughput]".into()));
                }
                Ok((pair[0].as_num()?, pair[1].as_num()?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ComboResult {
            label: v.get("label")?.as_str()?.to_string(),
            class: ComboClass::from_json(v.get("class")?)?,
            baseline_ipcs: f64_vec(v.get("baseline_ipcs")?)?,
            schemes: v
                .get("schemes")?
                .as_arr()?
                .iter()
                .map(SchemeResult::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            cc_sweep,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ComboResult {
        let mk = |name: &str, tp: f64| SchemeResult {
            scheme: name.into(),
            metrics: MetricSet {
                throughput: tp,
                aws: tp * 0.99,
                fair: tp * 0.97,
            },
            ipcs: vec![0.1 + tp, 1.0 / 3.0, tp, 0.7],
        };
        ComboResult {
            label: "ammp+parser+swim+mesa".into(),
            class: ComboClass::C5,
            baseline_ipcs: vec![0.25, 2.0 / 3.0, 0.5, 1.1],
            schemes: vec![
                mk("L2S", 0.97),
                mk("CC(Best)", 1.02),
                mk("DSR", 1.05),
                mk("SNUG", 1.13),
            ],
            cc_sweep: vec![(0.0, 1.0), (0.25, 1.01), (1.0, 0.98)],
        }
    }

    #[test]
    fn combo_result_round_trips_bit_identically() {
        let r = sample();
        let text = r.to_json().render();
        let back = ComboResult::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        // And the rendered form is stable (determinism for hashing).
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn scheme_run_round_trips_bit_identically() {
        use snug_experiments::StopReason;
        let cases = [
            (None, None, Vec::new()),
            (Some(1_234_567u64), Some(StopReason::Converged), Vec::new()),
            (None, Some(StopReason::Ceiling), Vec::new()),
            (
                Some(1_500_000),
                Some(StopReason::Converged),
                vec![2.1, 1.0 / 3.0],
            ),
        ];
        for (measured_cycles, stop_reason, plateaus) in cases {
            let run = SchemeRun {
                scheme: "cc@25%".into(),
                ipcs: vec![0.1 + 0.2, 1.0 / 3.0, 0.7],
                measured_cycles,
                stop_reason,
                plateaus: plateaus.clone(),
            };
            let text = run.to_json().render();
            let back = SchemeRun::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, run);
            assert_eq!(back.to_json().render(), text);
            assert_eq!(
                text.contains("measured_cycles"),
                measured_cycles.is_some(),
                "the field only appears for early-stopped runs"
            );
            assert_eq!(
                text.contains("stop_reason"),
                stop_reason.is_some(),
                "the field only appears on early-exit-capable runs"
            );
            assert_eq!(
                text.contains("plateaus"),
                !plateaus.is_empty(),
                "the field only appears on re-convergence runs"
            );
        }
        // Canonical fixed-plan entries render exactly as before the
        // stop-reason field existed: scheme + ipcs only.
        let canonical = SchemeRun {
            scheme: "l2p".into(),
            ipcs: vec![1.0, 2.0],
            measured_cycles: None,
            stop_reason: None,
            plateaus: Vec::new(),
        };
        let legacy_form = Value::obj(vec![
            ("scheme", Value::str("l2p")),
            ("ipcs", f64_arr(&[1.0, 2.0])),
        ]);
        assert_eq!(canonical.to_json().render(), legacy_form.render());
    }

    #[test]
    fn class_codec_covers_all_classes() {
        for class in ComboClass::ALL {
            assert_eq!(ComboClass::from_json(&class.to_json()).unwrap(), class);
        }
        assert!(ComboClass::from_json(&Value::str("C9")).is_err());
    }

    #[test]
    fn sim_counters_codec_covers_every_field_bijectively() {
        let zero = SimCounters::default();
        let keys: Vec<String> = zero.to_json().as_obj().unwrap().keys().cloned().collect();
        assert_eq!(keys.len(), 30, "one JSON key per counter field");
        // Bump each key in turn: the decoder must see the change (every
        // key is read) and re-encoding must reproduce it (every field
        // is written back) — a field silently dropped on either side
        // fails its key's iteration.
        for key in &keys {
            let mut obj = zero.to_json().as_obj().unwrap().clone();
            let bumped = if key == "l1_walk_depths" {
                let mut depths = vec![Value::num(0.0); WALK_DEPTH_BUCKETS];
                depths[WALK_DEPTH_BUCKETS - 1] = Value::num(7.0);
                Value::Arr(depths)
            } else {
                Value::num(41.0)
            };
            obj.insert(key.clone(), bumped);
            let mutated = Value::Obj(obj);
            let decoded = SimCounters::from_json(&mutated).unwrap();
            assert_ne!(decoded, zero, "key `{key}` must reach a field");
            assert_eq!(decoded.to_json().render(), mutated.render(), "{key}");
        }
        let short = Value::obj(vec![("l1_walk_depths", f64_arr(&[1.0]))]);
        assert!(SimCounters::from_json(&short).is_err(), "bucket count");
    }

    #[test]
    fn unit_span_round_trips_bit_identically() {
        let span = crate::sweep::UnitSpan {
            label: "C5 | ammp+parser+swim+mesa".into(),
            queue_nanos: 12,
            wall_nanos: 3_456_789_012,
            sim_cycles: 9_450_000,
            instructions: 59_428_501,
            worker: 3,
            shard: "worker-3.jsonl".into(),
        };
        let text = span.to_json().render();
        let back = crate::sweep::UnitSpan::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, span);
        assert_eq!(back.to_json().render(), text);
        // The throughput helpers stay defined at zero wall time.
        assert_eq!(crate::sweep::UnitSpan::default().cycles_per_sec(), 0.0);
        assert_eq!(crate::sweep::UnitSpan::default().ops_per_sec(), 0.0);
    }

    #[test]
    fn malformed_results_are_rejected() {
        let good = sample().to_json();
        let mut missing = good.as_obj().unwrap().clone();
        missing.remove("schemes");
        assert!(ComboResult::from_json(&Value::Obj(missing)).is_err());
    }
}
